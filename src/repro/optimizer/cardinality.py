"""Cardinality (selectivity) estimation.

The estimator mirrors the classic System-R style estimates used by the studied
DBMSs: per-column statistics supply equality and range selectivities, AND
combines multiplicatively (attribute value independence), OR combines with the
inclusion–exclusion formula, and joins use ``1 / max(ndv(left), ndv(right))``.

CERT (Section V-A.1) relies on these estimates behaving monotonically: a query
that is strictly more restrictive must not have a *larger* estimated
cardinality.  The fault-injection layer of :mod:`repro.testing.bugs` breaks
this property deliberately to emulate real cardinality-estimation bugs.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.catalog.statistics import ColumnStatistics
from repro.sqlparser import ast_nodes as ast

#: Default selectivities, matching common textbook/DBMS magic numbers.
DEFAULT_EQUALITY = 0.005
DEFAULT_RANGE = 1.0 / 3.0
DEFAULT_LIKE = 0.1
DEFAULT_PREFIX_LIKE = 0.05
DEFAULT_UNKNOWN = 0.33
DEFAULT_IN_ITEM = 0.01
#: Quantified (IN / EXISTS) subquery predicates, decorrelated or not, keep
#: half of their input — the same magic number the residual-filter path uses,
#: so toggling decorrelation never changes downstream row estimates.
DEFAULT_SEMI_JOIN = 0.5
DEFAULT_ANTI_JOIN = 0.5

#: Callable that resolves a column reference to its statistics (or ``None``).
StatisticsResolver = Callable[[ast.ColumnRef], Optional[ColumnStatistics]]


def _literal_number(expression: ast.Expression) -> Optional[float]:
    if isinstance(expression, ast.Literal) and isinstance(expression.value, (int, float)):
        return float(expression.value)
    if isinstance(expression, ast.UnaryOp) and expression.operator == "-":
        inner = _literal_number(expression.operand)
        return None if inner is None else -inner
    return None


def _column_and_constant(
    expression: ast.BinaryOp,
) -> Optional[tuple]:
    """Return ``(column_ref, constant, operator)`` for col-op-const predicates."""
    operator = expression.operator
    if isinstance(expression.left, ast.ColumnRef):
        constant = _literal_number(expression.right)
        if constant is not None or isinstance(expression.right, ast.Literal):
            return expression.left, expression.right, operator
    if isinstance(expression.right, ast.ColumnRef):
        flipped = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}.get(operator, operator)
        constant = _literal_number(expression.left)
        if constant is not None or isinstance(expression.left, ast.Literal):
            return expression.right, expression.left, flipped
    return None


def _is_join_predicate(expression: ast.BinaryOp) -> bool:
    return (
        expression.operator == "="
        and isinstance(expression.left, ast.ColumnRef)
        and isinstance(expression.right, ast.ColumnRef)
    )


def estimate_selectivity(
    expression: Optional[ast.Expression],
    resolver: StatisticsResolver,
) -> float:
    """Estimate the fraction of rows satisfying *expression*."""
    if expression is None:
        return 1.0

    if isinstance(expression, ast.BinaryOp):
        operator = expression.operator.upper()
        if operator == "AND":
            return estimate_selectivity(expression.left, resolver) * estimate_selectivity(
                expression.right, resolver
            )
        if operator == "OR":
            left = estimate_selectivity(expression.left, resolver)
            right = estimate_selectivity(expression.right, resolver)
            return min(left + right - left * right, 1.0)
        if _is_join_predicate(expression):
            left_stats = resolver(expression.left)
            right_stats = resolver(expression.right)
            left_ndv = left_stats.distinct_values if left_stats else 0
            right_ndv = right_stats.distinct_values if right_stats else 0
            ndv = max(left_ndv, right_ndv, 1)
            return 1.0 / ndv
        column_constant = _column_and_constant(expression)
        if column_constant is not None:
            column, constant_expr, operator_text = column_constant
            statistics = resolver(column)
            constant = _literal_number(constant_expr)
            if operator_text == "=":
                if statistics is not None:
                    return statistics.equality_selectivity()
                return DEFAULT_EQUALITY
            if operator_text == "<>":
                if statistics is not None:
                    return max(1.0 - statistics.equality_selectivity(), 0.0)
                return 1.0 - DEFAULT_EQUALITY
            if operator_text in {"<", "<="} and statistics is not None and constant is not None:
                return statistics.range_selectivity(low=None, high=constant)
            if operator_text in {">", ">="} and statistics is not None and constant is not None:
                return statistics.range_selectivity(low=constant, high=None)
            return DEFAULT_RANGE
        return DEFAULT_UNKNOWN

    if isinstance(expression, ast.UnaryOp) and expression.operator.upper() == "NOT":
        return max(1.0 - estimate_selectivity(expression.operand, resolver), 0.0)

    if isinstance(expression, ast.Between):
        if isinstance(expression.expression, ast.ColumnRef):
            statistics = resolver(expression.expression)
            low = _literal_number(expression.low) if expression.low else None
            high = _literal_number(expression.high) if expression.high else None
            if statistics is not None and (low is not None or high is not None):
                selectivity = statistics.range_selectivity(low=low, high=high)
            else:
                selectivity = DEFAULT_RANGE / 2
        else:
            selectivity = DEFAULT_RANGE / 2
        return (1.0 - selectivity) if expression.negated else selectivity

    if isinstance(expression, ast.InList):
        if isinstance(expression.expression, ast.ColumnRef):
            statistics = resolver(expression.expression)
            per_item = (
                statistics.equality_selectivity() if statistics else DEFAULT_IN_ITEM
            )
        else:
            per_item = DEFAULT_IN_ITEM
        selectivity = min(per_item * max(len(expression.items), 1), 1.0)
        return (1.0 - selectivity) if expression.negated else selectivity

    if isinstance(expression, ast.InSubquery):
        return DEFAULT_ANTI_JOIN if expression.negated else DEFAULT_SEMI_JOIN

    if isinstance(expression, ast.Like):
        pattern = (
            expression.pattern.value
            if isinstance(expression.pattern, ast.Literal)
            else None
        )
        if isinstance(pattern, str) and not pattern.startswith("%"):
            selectivity = DEFAULT_PREFIX_LIKE
        else:
            selectivity = DEFAULT_LIKE
        return (1.0 - selectivity) if expression.negated else selectivity

    if isinstance(expression, ast.IsNull):
        if isinstance(expression.expression, ast.ColumnRef):
            statistics = resolver(expression.expression)
            null_fraction = statistics.null_fraction if statistics else 0.01
        else:
            null_fraction = 0.01
        return (1.0 - null_fraction) if expression.negated else max(null_fraction, 1e-6)

    if isinstance(expression, ast.Exists):
        return DEFAULT_ANTI_JOIN if expression.negated else DEFAULT_SEMI_JOIN

    if isinstance(expression, ast.Literal):
        if expression.value is None:
            return 0.0
        return 1.0 if bool(expression.value) else 0.0

    return DEFAULT_UNKNOWN


def estimate_quantified_selectivity(
    quantifier: str, negated: bool
) -> float:
    """Selectivity of a decorrelated ``IN`` / ``EXISTS`` conjunct.

    Mirrors what :func:`estimate_selectivity` returns for the corresponding
    :class:`~repro.sqlparser.ast_nodes.InSubquery` / ``Exists`` predicate, so
    the semi/anti-join plan carries the same row estimate as the per-row
    filter plan it replaces.
    """
    del quantifier  # "in" and "exists" share the textbook default today.
    return DEFAULT_ANTI_JOIN if negated else DEFAULT_SEMI_JOIN


def estimate_join_selectivity(
    condition: Optional[ast.Expression], resolver: StatisticsResolver
) -> float:
    """Estimate the selectivity of a join condition (1.0 for cross joins)."""
    if condition is None:
        return 1.0
    return estimate_selectivity(condition, resolver)


def estimate_distinct_groups(
    group_columns: int, input_rows: float, resolver_ndv: Optional[float] = None
) -> float:
    """Estimate the number of groups produced by an aggregation."""
    if group_columns == 0:
        return 1.0
    if resolver_ndv is not None and resolver_ndv > 0:
        return min(resolver_ndv, input_rows)
    # Square-root heuristic used when no NDV statistics are available.
    return max(min(input_rows, input_rows ** 0.5 * group_columns), 1.0)
