"""The cost-based query planner.

The planner turns parsed statements into :class:`~repro.optimizer.physical.PhysicalNode`
trees.  Its structure follows the classic pipeline described in Section II of
the paper: queries are parsed into logical steps, converted to physical
operations, and a physical plan is selected using a cost model.

Main features:

* predicate pushdown of single-table conjuncts onto scans, including below
  the preserved side of outer joins (never below the null-extended side),
* access-path selection (sequential scan vs index scan vs index-only scan)
  driven by per-column statistics,
* join ordering via dynamic programming over the join graph (greedy fallback
  above a size threshold), with hash / merge / nested-loop algorithm choice,
* proven intermediate-size bounds (:mod:`repro.optimizer.bounds`) threaded
  through every node's ``info["size_bound"]``: cardinality estimates are
  capped at the bound, the DP memo prunes branches whose children already
  cost more than the best complete plan, and EXPLAIN ANALYZE checks actual
  row counts against the bounds (the campaign's "Bound" oracle),
* an ``optimize_joins=False`` as-written mode — joins planned exactly in the
  written FROM order with every WHERE conjunct evaluated above them — kept
  as the oracle the optimizing planner is fuzzed against: flipping the
  toggle changes plans and coverage, never results or Table V,
* hash or sorted aggregation, DISTINCT, set operations, ORDER BY / LIMIT,
* subqueries in FROM (planned recursively) and subqueries in predicates
  (planned as attached subplans, mirroring how PostgreSQL displays them),
* DML and DDL plans for the Consumer-category operations.

Planner behaviour is configurable through :class:`PlannerOptions`; the
simulated dialects use different option sets, which yields the structurally
different — yet conceptually equivalent — plans the case study observed.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.catalog.database import Database
from repro.catalog.statistics import ColumnStatistics
from repro.errors import PlanningError
from repro.optimizer import bounds
from repro.optimizer.cardinality import (
    estimate_distinct_groups,
    estimate_join_selectivity,
    estimate_quantified_selectivity,
    estimate_selectivity,
)
from repro.optimizer.cost import CostModel
from repro.optimizer.physical import CostEstimate, OpKind, PhysicalNode, make_node
from repro.sqlparser import ast_nodes as ast
from repro.sqlparser.printer import print_expression


@dataclass
class PlannerOptions:
    """Tunable planner behaviour (per simulated DBMS)."""

    enable_hash_join: bool = True
    enable_merge_join: bool = True
    enable_nested_loop_join: bool = True
    enable_index_scan: bool = True
    enable_index_only_scan: bool = True
    #: Predicate selectivity below which an index scan is preferred.
    index_selectivity_threshold: float = 0.25
    #: Maximum number of relations planned with exhaustive dynamic programming.
    dp_threshold: int = 8
    #: Prefer hashed aggregation over sorted aggregation.
    prefer_hash_aggregate: bool = True
    #: Tables larger than this may be scanned in parallel (dialect shaping).
    parallel_threshold_rows: int = 100_000
    #: Emit a TopN node when ORDER BY and LIMIT are both present.
    enable_top_n: bool = True


@dataclass
class _Relation:
    """One base relation (or derived table) participating in a SELECT core."""

    alias: str
    table_name: Optional[str] = None
    subquery: Optional[ast.SelectStatement] = None
    predicates: List[ast.Expression] = field(default_factory=list)


@dataclass
class _JoinEdge:
    """A join predicate connecting two relations."""

    left_alias: str
    right_alias: str
    condition: ast.Expression
    join_type: str = "INNER"


@dataclass
class _SemiJoinTarget:
    """A WHERE conjunct the decorrelation rewrite turns into a semi/anti join."""

    #: ``"in"`` (probe a key set) or ``"exists"`` (an emptiness test).
    quantifier: str
    #: True for ``NOT IN`` / ``NOT EXISTS`` (a null-aware anti join).
    negated: bool
    subquery: ast.SelectStatement
    #: The outer-side probe expression (``None`` for EXISTS).
    probe: Optional[ast.Expression] = None


class Planner:
    """Plans statements for one :class:`~repro.catalog.database.Database`."""

    def __init__(
        self,
        database: Database,
        cost_model: Optional[CostModel] = None,
        options: Optional[PlannerOptions] = None,
        decorrelate: bool = True,
        optimize_joins: bool = True,
    ) -> None:
        self.database = database
        self.cost_model = cost_model or CostModel()
        self.options = options or PlannerOptions()
        #: Run the optimization phase — predicate pushdown and cost-based
        #: join reordering.  ``optimize_joins=False`` plans joins exactly in
        #: the written FROM order and keeps every WHERE conjunct in a filter
        #: above them: the as-written oracle the optimizing planner is
        #: checked against (tests/test_optimizer.py fuzzes the equivalence).
        #: Like ``decorrelate``, flipping it changes plans and coverage but
        #: never result rows (up to order for queries without ORDER BY),
        #: oracle verdicts, or Table V.
        self.optimize_joins = optimize_joins
        #: Rewrite uncorrelated ``IN`` / ``EXISTS`` WHERE conjuncts into hash
        #: semi/anti joins (O(outer + inner)) instead of evaluating the
        #: subquery once per outer row inside a filter predicate
        #: (O(outer × inner)).  Semantically invisible: ``decorrelate=False``
        #: keeps the per-row path as the correctness oracle
        #: (tests/test_decorrelate.py fuzzes the equivalence).
        self.decorrelate = decorrelate
        #: Nesting depth of predicate-subquery planning.  Inside a subquery
        #: the executor merges the outer row into every evaluation context,
        #: so a column the subquery's own scope cannot resolve may still be
        #: legal (correlation); plan-time unknown-column validation is
        #: therefore restricted to depth 0.
        self._subquery_depth = 0

    # ------------------------------------------------------------------ entry points

    def plan_statement(self, statement: ast.Statement) -> PhysicalNode:
        """Plan any supported statement."""
        if isinstance(statement, ast.Explain):
            return self.plan_statement(statement.statement)
        if isinstance(statement, ast.SelectStatement):
            return self.plan_select(statement)
        if isinstance(statement, ast.Insert):
            return self._plan_insert(statement)
        if isinstance(statement, ast.Update):
            return self._plan_update(statement)
        if isinstance(statement, ast.Delete):
            return self._plan_delete(statement)
        if isinstance(statement, ast.CreateTable):
            return make_node(OpKind.CREATE_TABLE, table=statement.name, statement=statement)
        if isinstance(statement, ast.CreateIndex):
            return make_node(
                OpKind.CREATE_INDEX,
                table=statement.table,
                index=statement.name,
                statement=statement,
            )
        if isinstance(statement, ast.DropTable):
            return make_node(OpKind.DROP_TABLE, table=statement.name, statement=statement)
        raise PlanningError(f"cannot plan statement of type {type(statement).__name__}")

    def plan_subquery(self, statement: ast.SelectStatement) -> PhysicalNode:
        """Plan a predicate subquery (one that may see an outer row).

        Identical to :meth:`plan_select` except that validations requiring
        the statement to be self-contained — unknown grouping columns — are
        suspended: a reference the subquery's own scope cannot resolve may
        legally correlate to the enclosing query at execution time.
        """
        self._subquery_depth += 1
        try:
            return self.plan_select(statement)
        finally:
            self._subquery_depth -= 1

    def plan_select(self, statement: ast.SelectStatement) -> PhysicalNode:
        """Plan a SELECT statement including set operations and ORDER/LIMIT."""
        body = statement.body
        if isinstance(body, ast.SetOperation):
            plan = self._plan_set_operation(body)
        else:
            plan = self._plan_core(body)

        if statement.order_by:
            if statement.limit is not None and self.options.enable_top_n:
                plan = self._add_sort(
                    plan, statement.order_by, top_n=True, limit=statement.limit, body=body
                )
            else:
                plan = self._add_sort(
                    plan, statement.order_by, top_n=False, limit=None, body=body
                )
        if statement.limit is not None and not (
            statement.order_by and self.options.enable_top_n
        ):
            plan = self._add_limit(plan, statement.limit, statement.offset)
        elif statement.offset is not None and statement.limit is None:
            plan = self._add_limit(plan, None, statement.offset)
        return plan

    # ------------------------------------------------------------------ set operations

    def _plan_set_operation(self, operation: ast.SetOperation) -> PhysicalNode:
        left = (
            self._plan_set_operation(operation.left)
            if isinstance(operation.left, ast.SetOperation)
            else self._plan_core(operation.left)
        )
        right = (
            self._plan_set_operation(operation.right)
            if isinstance(operation.right, ast.SetOperation)
            else self._plan_core(operation.right)
        )
        total_rows = left.estimated_rows + right.estimated_rows
        cost = CostEstimate(
            startup=left.cost.startup + right.cost.startup,
            total=left.cost.total + right.cost.total,
        )
        operator = operation.operator.upper()
        if operator == "UNION ALL":
            node = make_node(
                OpKind.APPEND,
                children=[left, right],
                estimated_rows=total_rows,
                startup_cost=cost.startup,
                total_cost=cost.total,
                set_operator="UNION ALL",
            )
            return self._propagate_bound(node)
        append = self._propagate_bound(
            make_node(
                OpKind.APPEND,
                children=[left, right],
                estimated_rows=total_rows,
                startup_cost=cost.startup,
                total_cost=cost.total,
                set_operator=operator,
            )
        )
        if operator == "UNION":
            groups = max(total_rows * 0.9, 1.0)
            aggregate_cost = self.cost_model.aggregate(total_rows, groups, hashed=True)
            return self._propagate_bound(
                make_node(
                    OpKind.HASH_AGGREGATE,
                    children=[append],
                    estimated_rows=groups,
                    startup_cost=cost.total + aggregate_cost.startup,
                    total_cost=cost.total + aggregate_cost.total,
                    group_keys=[],
                    aggregates=[],
                    strategy="hash",
                    deduplicate=True,
                    set_operator="UNION",
                )
            )
        kind = OpKind.INTERSECT if operator == "INTERSECT" else OpKind.EXCEPT
        result_rows = (
            min(left.estimated_rows, right.estimated_rows)
            if kind is OpKind.INTERSECT
            else max(left.estimated_rows - right.estimated_rows, 1.0)
        )
        return self._propagate_bound(
            make_node(
                kind,
                children=[left, right],
                estimated_rows=result_rows,
                startup_cost=cost.startup,
                total_cost=cost.total + total_rows * self.cost_model.cpu_operator_cost,
                set_operator=operator,
            )
        )

    # ------------------------------------------------------------------ SELECT core

    def _plan_core(self, core: ast.SelectCore) -> PhysicalNode:
        if core.from_clause is None:
            return self._plan_constant_select(core)

        relations, edges, outer_joins, residual, nullable = self._collect_relations(core)
        group_by = self._resolve_group_by(core, relations)
        resolver = self._statistics_resolver(relations)

        # Classify WHERE conjuncts.
        use_syntactic = outer_joins or not self.optimize_joins
        where_conjuncts = ast.split_conjuncts(core.where)
        # Join conditions that are not two-relation edges (a single-table or
        # three-way ON condition).  The syntactic join path applies them at
        # their own join node, so re-applying them above would wrongly drop
        # null-padded outer-join rows; the reordering path consults only the
        # edge list, so they must survive as a residual filter (sound there —
        # outer joins always take the syntactic path).
        complex_conjuncts: List[ast.Expression] = (
            [] if use_syntactic else list(residual)
        )
        semi_targets: List[_SemiJoinTarget] = []
        alias_names = {relation.alias for relation in relations}
        for conjunct in where_conjuncts:
            aliases = self._referenced_aliases(conjunct, alias_names)
            if self._contains_subquery(conjunct):
                target = (
                    self._decorrelation_target(conjunct) if self.decorrelate else None
                )
                if target is not None:
                    semi_targets.append(target)
                else:
                    complex_conjuncts.append(conjunct)
            elif not self.optimize_joins:
                # As-written mode: no pushdown — every plain conjunct is
                # evaluated in one filter above the syntactic join tree.
                complex_conjuncts.append(conjunct)
            elif len(aliases) == 1 and next(iter(aliases)) not in nullable:
                # Pushing below a join is safe for a single-relation conjunct
                # as long as the relation is never null-extended: filtering a
                # preserved-side row before the join removes exactly the
                # output rows the same filter would remove above it.  A
                # conjunct on a nullable (outer-join inner) side must stay
                # above, where it sees the padded NULLs.
                alias = next(iter(aliases))
                self._relation_by_alias(relations, alias).predicates.append(conjunct)
            elif (
                len(aliases) == 2
                and isinstance(conjunct, ast.BinaryOp)
                and not outer_joins
            ):
                # A two-relation WHERE conjunct is an extra (inner) join
                # edge.  With outer joins in the FROM tree the edge list is
                # not consulted — the conjunct must survive as a filter.
                left_alias, right_alias = sorted(aliases)
                edges.append(_JoinEdge(left_alias, right_alias, conjunct))
            else:
                complex_conjuncts.append(conjunct)

        # Plan access paths and join order.
        needed_columns = self._compute_needed_columns(core, relations, edges, group_by)
        if use_syntactic:
            plan = self._plan_syntactic_joins(
                core.from_clause, relations, alias_names, needed_columns
            )
        else:
            plan = self._plan_join_order(relations, edges, needed_columns)

        # Decorrelated IN / EXISTS conjuncts become hash semi/anti joins.
        for target in semi_targets:
            plan = self._add_semi_join(plan, target)

        # Residual predicates that could not be pushed down.  Selectivity is
        # estimated with the same per-conjunct statistics the pushdown path
        # uses, so the as-written filter and the pushed-down scans agree on
        # the root estimate — CERT verdicts are toggle-independent.
        if complex_conjuncts:
            plan = self._add_filter(
                plan, ast.conjoin(complex_conjuncts), resolver=resolver
            )

        # Aggregation.
        aggregates = self._collect_aggregates(core)
        if group_by or aggregates:
            plan = self._add_aggregate(plan, core, aggregates, group_by, resolver)
            if core.having is not None:
                plan = self._add_filter(plan, core.having, is_having=True)
        elif core.having is not None:
            plan = self._add_filter(plan, core.having, is_having=True)

        # Projection.
        plan = self._add_projection(plan, core)

        if core.distinct:
            plan = self._add_distinct(plan)
        return plan

    def _plan_constant_select(self, core: ast.SelectCore) -> PhysicalNode:
        items = [
            (item.expression, item.alias or print_expression(item.expression))
            for item in core.items
        ]
        node = make_node(
            OpKind.RESULT,
            estimated_rows=1.0,
            total_cost=self.cost_model.cpu_tuple_cost,
            items=items,
            where=core.where,
            size_bound=1.0,
        )
        return node

    # ------------------------------------------------------------------ FROM analysis

    def _collect_relations(
        self, core: ast.SelectCore
    ) -> Tuple[
        List[_Relation], List[_JoinEdge], bool, List[ast.Expression], Set[str]
    ]:
        relations: List[_Relation] = []
        edges: List[_JoinEdge] = []
        residual: List[ast.Expression] = []
        #: Aliases on the null-extended side of some outer join: the right
        #: subtree of a LEFT join, the left of a RIGHT join, both of a FULL
        #: join.  WHERE conjuncts on these may not be pushed below the join.
        nullable: Set[str] = set()
        has_outer = False

        def subtree_aliases(table_expression: ast.TableExpression) -> Set[str]:
            if isinstance(table_expression, ast.TableRef):
                return {table_expression.effective_name}
            if isinstance(table_expression, ast.SubqueryRef):
                return {table_expression.alias}
            if isinstance(table_expression, ast.Join):
                return subtree_aliases(table_expression.left) | subtree_aliases(
                    table_expression.right
                )
            return set()

        def visit(table_expression: ast.TableExpression) -> None:
            nonlocal has_outer
            if isinstance(table_expression, ast.TableRef):
                relations.append(
                    _Relation(alias=table_expression.effective_name, table_name=table_expression.name)
                )
                return
            if isinstance(table_expression, ast.SubqueryRef):
                relations.append(
                    _Relation(alias=table_expression.alias, subquery=table_expression.query)
                )
                return
            if isinstance(table_expression, ast.Join):
                visit(table_expression.left)
                visit(table_expression.right)
                if table_expression.join_type in {"LEFT", "RIGHT", "FULL"}:
                    has_outer = True
                    if table_expression.join_type in {"LEFT", "FULL"}:
                        nullable.update(subtree_aliases(table_expression.right))
                    if table_expression.join_type in {"RIGHT", "FULL"}:
                        nullable.update(subtree_aliases(table_expression.left))
                condition = table_expression.condition
                if condition is None and table_expression.using_columns:
                    condition = self._using_to_condition(table_expression)
                if condition is not None:
                    aliases = self._referenced_aliases(
                        condition, {relation.alias for relation in relations}
                    )
                    if len(aliases) == 2:
                        left_alias, right_alias = sorted(aliases)
                        edges.append(
                            _JoinEdge(left_alias, right_alias, condition, table_expression.join_type)
                        )
                    else:
                        residual.append(condition)
                return
            raise PlanningError(
                f"unsupported FROM item {type(table_expression).__name__}"
            )

        visit(core.from_clause)
        return relations, edges, has_outer, residual, nullable

    def _using_to_condition(self, join: ast.Join) -> Optional[ast.Expression]:
        left_tables = ast.base_tables(join.left)
        right_tables = ast.base_tables(join.right)
        if not left_tables or not right_tables:
            return None
        conditions: List[ast.Expression] = []
        for column in join.using_columns:
            conditions.append(
                ast.BinaryOp(
                    "=",
                    ast.ColumnRef(column=column, table=left_tables[-1].effective_name),
                    ast.ColumnRef(column=column, table=right_tables[0].effective_name),
                )
            )
        return ast.conjoin(conditions)

    def _relation_by_alias(self, relations: Sequence[_Relation], alias: str) -> _Relation:
        for relation in relations:
            if relation.alias == alias:
                return relation
        raise PlanningError(f"unknown relation alias {alias!r}")

    def _referenced_aliases(
        self, expression: ast.Expression, alias_names: Set[str]
    ) -> Set[str]:
        aliases: Set[str] = set()
        for reference in ast.referenced_columns(expression):
            if reference.table and reference.table in alias_names:
                aliases.add(reference.table)
            elif reference.table is None:
                owner = self._owning_alias(reference.column, alias_names)
                if owner is not None:
                    aliases.add(owner)
        return aliases

    def _owning_alias(self, column: str, alias_names: Set[str]) -> Optional[str]:
        owners = []
        for alias in alias_names:
            table_name = alias
            if self.database.has_table(table_name) and self.database.schema(table_name).has_column(column):
                owners.append(alias)
        if len(owners) == 1:
            return owners[0]
        return None

    def _contains_subquery(self, expression: ast.Expression) -> bool:
        return any(
            isinstance(e, (ast.ScalarSubquery, ast.InSubquery, ast.Exists))
            for e in ast.iter_expressions(expression)
        )

    # ------------------------------------------------------------------ decorrelation

    def _decorrelation_target(
        self, conjunct: ast.Expression
    ) -> Optional[_SemiJoinTarget]:
        """The semi/anti-join rewrite of *conjunct*, or ``None``.

        A conjunct qualifies when it is an ``IN (SELECT …)`` / ``EXISTS``
        predicate (possibly under ``NOT``) whose subquery is *uncorrelated* —
        every column it references resolves within its own scope.  ``NOT`` is
        sound to fold into the anti flag because under three-valued logic it
        maps ``TRUE ↔ FALSE`` and preserves ``NULL``, and a filter keeps only
        ``TRUE`` rows either way.
        """
        negated = False
        expression = conjunct
        while (
            isinstance(expression, ast.UnaryOp)
            and expression.operator.upper() == "NOT"
        ):
            negated = not negated
            expression = expression.operand
        if isinstance(expression, ast.InSubquery) and expression.subquery is not None:
            if self._contains_subquery(expression.expression):
                return None
            if not self._subquery_is_uncorrelated(expression.subquery):
                return None
            return _SemiJoinTarget(
                quantifier="in",
                negated=negated != expression.negated,
                subquery=expression.subquery,
                probe=expression.expression,
            )
        if isinstance(expression, ast.Exists) and expression.query is not None:
            if not self._subquery_is_uncorrelated(expression.query):
                return None
            return _SemiJoinTarget(
                quantifier="exists",
                negated=negated != expression.negated,
                subquery=expression.query,
            )
        return None

    def _subquery_is_uncorrelated(self, query: ast.SelectStatement) -> bool:
        """Whether every column *query* references resolves in its own scope.

        Scoping is checked **per SELECT core**: a reference is resolvable
        only against the relations of the core it appears in — exactly the
        rows the per-row path would see first — never against relations of
        sibling cores or of derived tables' *internals* (a column visible
        only inside a nested derived table is out of scope at the level
        above, so such a reference correlates outward).  Conservative by
        design: a qualified reference must name an own-scope alias whose
        column list is provable (base-table schema, or a derived table's
        enumerable select list) and contain the column; an unqualified
        reference must be provably a column of an own-scope relation.
        Anything unprovable keeps the per-row correlated path, which is
        always correct.  Nested subqueries are checked against their own
        scope the same way (so a subquery correlated to a *mid* level also
        falls back — stricter than necessary, never wrong).
        """
        pending = [query]
        while pending:
            statement = pending.pop()
            statement_scope: Dict[str, Optional[List[str]]] = {}
            for core in statement.cores():
                scope, join_conditions = self._core_scope(core, pending)
                sources: List[Optional[ast.Expression]] = [
                    item.expression for item in core.items
                ]
                sources.append(core.where)
                sources.extend(core.group_by)
                sources.append(core.having)
                sources.extend(join_conditions)
                for source in sources:
                    if not self._expressions_resolve(source, scope, pending):
                        return False
                for alias, columns in scope.items():
                    statement_scope.setdefault(alias, columns)
            # Statement-level ORDER BY / LIMIT / OFFSET see the union of the
            # statement's core scopes (output-name references fall back).
            tail: List[Optional[ast.Expression]] = [
                item.expression for item in statement.order_by
            ]
            tail.append(statement.limit)
            tail.append(statement.offset)
            for source in tail:
                if not self._expressions_resolve(source, statement_scope, pending):
                    return False
        return True

    def _core_scope(
        self, core: ast.SelectCore, pending: List[ast.SelectStatement]
    ) -> Tuple[Dict[str, Optional[List[str]]], List[ast.Expression]]:
        """``alias → provable column names (or None)`` for one core's FROM,
        plus its join conditions; derived-table queries are queued onto
        *pending* for their own scope check."""
        scope: Dict[str, Optional[List[str]]] = {}
        conditions: List[ast.Expression] = []
        stack: List[Optional[ast.TableExpression]] = [core.from_clause]
        while stack:
            table_expression = stack.pop()
            if table_expression is None:
                continue
            if isinstance(table_expression, ast.TableRef):
                columns: Optional[List[str]] = None
                if self.database.has_table(table_expression.name):
                    columns = list(
                        self.database.schema(table_expression.name).column_names()
                    )
                scope[table_expression.effective_name] = columns
            elif isinstance(table_expression, ast.SubqueryRef):
                scope[table_expression.alias] = self._derived_columns(
                    table_expression.query
                )
                pending.append(table_expression.query)
            elif isinstance(table_expression, ast.Join):
                if table_expression.condition is not None:
                    conditions.append(table_expression.condition)
                stack.append(table_expression.left)
                stack.append(table_expression.right)
        return scope, conditions

    def _derived_columns(self, query: ast.SelectStatement) -> Optional[List[str]]:
        """The enumerable output column names of a derived table, or ``None``
        when they cannot be proven (a star, or an empty body)."""
        cores = query.cores()
        if not cores:
            return None
        names: List[str] = []
        for item in cores[0].items:
            if isinstance(item.expression, ast.Star):
                return None
            name = item.alias or print_expression(item.expression)
            names.append(name.split(".", 1)[1] if "." in name else name)
        return names

    def _expressions_resolve(
        self,
        source: Optional[ast.Expression],
        scope: Dict[str, Optional[List[str]]],
        pending: List[ast.SelectStatement],
    ) -> bool:
        """Whether every column reference in *source* provably resolves in
        *scope*; nested subqueries are queued for their own check."""
        if source is None:
            return True
        for expression in ast.iter_expressions(source):
            if isinstance(expression, ast.ScalarSubquery):
                if expression.query is not None:
                    pending.append(expression.query)
            elif isinstance(expression, ast.InSubquery):
                if expression.subquery is not None:
                    pending.append(expression.subquery)
            elif isinstance(expression, ast.Exists):
                if expression.query is not None:
                    pending.append(expression.query)
            elif isinstance(expression, ast.ColumnRef):
                if not self._reference_in_scope(expression, scope):
                    return False
        return True

    def _reference_in_scope(
        self, reference: ast.ColumnRef, scope: Dict[str, Optional[List[str]]]
    ) -> bool:
        lowered = reference.column.lower()
        if reference.table is not None:
            if reference.table not in scope:
                return False
            columns = scope[reference.table]
            # An unprovable column list (unknown table, starred derived
            # table) cannot prove the reference resolves here — and the
            # outer query may own an identically-named alias.
            return columns is not None and any(
                name.lower() == lowered for name in columns
            )
        return any(
            columns is not None
            and any(name.lower() == lowered for name in columns)
            for columns in scope.values()
        )

    def _add_semi_join(
        self, child: PhysicalNode, target: _SemiJoinTarget
    ) -> PhysicalNode:
        inner = self.plan_subquery(target.subquery)
        kind = OpKind.ANTI_JOIN if target.negated else OpKind.SEMI_JOIN
        selectivity = estimate_quantified_selectivity(
            target.quantifier, target.negated
        )
        output_rows = max(child.estimated_rows * selectivity, 1.0)
        cost = self.cost_model.semi_join(
            child.cost, inner.cost, child.estimated_rows, inner.estimated_rows
        )
        info: Dict[str, object] = {
            "quantifier": target.quantifier,
            "join_type": "Anti" if target.negated else "Semi",
        }
        if target.probe is not None:
            info["probe"] = target.probe
            info["inner_column"] = self._subquery_output_name(target.subquery)
        return self._propagate_bound(
            make_node(
                kind,
                children=[child, inner],
                estimated_rows=output_rows,
                startup_cost=cost.startup,
                total_cost=cost.total,
                width=child.width,
                **info,
            )
        )

    def _subquery_output_name(self, query: ast.SelectStatement) -> str:
        """A display name for the subquery's first output column."""
        cores = query.cores()
        if not cores or not cores[0].items:
            return "column1"
        item = cores[0].items[0]
        if isinstance(item.expression, ast.Star):
            return "*"
        return item.alias or print_expression(item.expression)

    # ------------------------------------------------------------------ ordinals

    def _ordinal(self, expression: ast.Expression) -> Optional[int]:
        """The 1-based output-column ordinal *expression* denotes, if any.

        Per SQL, a bare positive integer literal in ORDER BY / GROUP BY is a
        positional reference to the select list, not a constant.
        """
        if (
            isinstance(expression, ast.Literal)
            and isinstance(expression.value, int)
            and not isinstance(expression.value, bool)
            and expression.value >= 1
        ):
            return expression.value
        return None

    def _resolve_group_by(
        self, core: ast.SelectCore, relations: Sequence[_Relation]
    ) -> List[ast.Expression]:
        """GROUP BY keys with ordinals resolved to select-list expressions.

        Also validates plain column references against the schema-known
        relations so a genuinely unknown grouping column fails at plan time
        naming *that* column (instead of a later, misleading execution error
        about whatever the select list happens to project).
        """
        if not core.group_by:
            return []
        resolved: List[ast.Expression] = []
        for expression in core.group_by:
            ordinal = self._ordinal(expression)
            if ordinal is not None:
                if ordinal > len(core.items):
                    raise PlanningError(
                        f"GROUP BY position {ordinal} is not in the select list"
                    )
                item = core.items[ordinal - 1]
                if isinstance(item.expression, ast.Star):
                    raise PlanningError(
                        f"GROUP BY position {ordinal} refers to '*'"
                    )
                resolved.append(item.expression)
            else:
                resolved.append(expression)
        if self._subquery_depth == 0:
            # Only a self-contained statement can be validated: inside a
            # predicate subquery an unresolvable column may legally
            # correlate to the enclosing query's row at execution time.
            for expression in resolved:
                for reference in ast.referenced_columns(expression):
                    self._check_known_column(reference, relations)
        return resolved

    def _check_known_column(
        self, reference: ast.ColumnRef, relations: Sequence[_Relation]
    ) -> None:
        """Raise :class:`PlanningError` naming *reference* when it provably
        does not exist; references we cannot prove (derived tables) pass."""
        lowered = reference.column.lower()
        if reference.table is not None:
            for relation in relations:
                if relation.alias != reference.table:
                    continue
                if relation.table_name is None or not self.database.has_table(
                    relation.table_name
                ):
                    return
                schema = self.database.schema(relation.table_name)
                if any(name.lower() == lowered for name in schema.column_names()):
                    return
                raise PlanningError(
                    f"unknown column {reference.table}.{reference.column!s}"
                )
            raise PlanningError(f"unknown relation alias {reference.table!r}")
        provable = True
        for relation in relations:
            if relation.table_name is None or not self.database.has_table(
                relation.table_name
            ):
                provable = False
                continue
            schema = self.database.schema(relation.table_name)
            if any(name.lower() == lowered for name in schema.column_names()):
                return
        if provable:
            raise PlanningError(f"unknown column {reference.column!r}")

    def _output_sort_expressions(
        self, body: Optional[ast.SelectCore]
    ) -> List[Optional[ast.Expression]]:
        """One sortable expression per output column, in output order.

        Non-star select items contribute a reference to their *output* name
        (alias or printed text) — the name the projection keys the value
        under, so the sort above the projection reads the projected value
        directly.  Stars expand through the FROM clause in syntactic order;
        expansion stops at the first relation whose columns we cannot
        enumerate, making later ordinals an out-of-range error rather than a
        silent misresolution.
        """
        core: object = body
        while isinstance(core, ast.SetOperation):
            core = core.left
        if not isinstance(core, ast.SelectCore):
            return []
        outputs: List[Optional[ast.Expression]] = []
        for item in core.items:
            if isinstance(item.expression, ast.Star):
                expanded, complete = self._expand_star(item.expression, core)
                outputs.extend(expanded)
                if not complete:
                    return outputs
            elif item.alias:
                outputs.append(ast.ColumnRef(column=item.alias))
            else:
                outputs.append(
                    ast.ColumnRef(column=print_expression(item.expression))
                )
        return outputs

    def _expand_star(
        self, star: ast.Star, core: ast.SelectCore
    ) -> Tuple[List[Optional[ast.Expression]], bool]:
        outputs: List[Optional[ast.Expression]] = []

        def visit(table_expression: Optional[ast.TableExpression]) -> bool:
            if table_expression is None:
                return True
            if isinstance(table_expression, ast.Join):
                return visit(table_expression.left) and visit(table_expression.right)
            if isinstance(table_expression, ast.TableRef):
                alias = table_expression.effective_name
                if star.table and star.table != alias:
                    return True
                if not self.database.has_table(table_expression.name):
                    return False
                for column in self.database.schema(table_expression.name).column_names():
                    outputs.append(ast.ColumnRef(column=column, table=alias))
                return True
            if isinstance(table_expression, ast.SubqueryRef):
                alias = table_expression.alias
                if star.table and star.table != alias:
                    return True
                cores = table_expression.query.cores()
                if not cores:
                    return False
                for item in cores[0].items:
                    if isinstance(item.expression, ast.Star):
                        return False
                    name = item.alias or print_expression(item.expression)
                    bare = name.split(".", 1)[1] if "." in name else name
                    outputs.append(ast.ColumnRef(column=bare, table=alias))
                return True
            return False

        complete = visit(core.from_clause)
        return outputs, complete

    # ------------------------------------------------------------------ statistics

    def _statistics_resolver(self, relations: Sequence[_Relation]):
        alias_to_table = {
            relation.alias: relation.table_name
            for relation in relations
            if relation.table_name is not None
        }

        def resolver(reference: ast.ColumnRef) -> Optional[ColumnStatistics]:
            candidates: List[str] = []
            if reference.table and reference.table in alias_to_table:
                candidates.append(alias_to_table[reference.table])
            elif reference.table is None:
                candidates.extend(alias_to_table.values())
            for table_name in candidates:
                if not self.database.has_table(table_name):
                    continue
                if not self.database.schema(table_name).has_column(reference.column):
                    continue
                statistics = self.database.statistics(table_name)
                column_statistics = statistics.column(reference.column)
                if column_statistics is not None:
                    return column_statistics
            return None

        return resolver

    # ------------------------------------------------------------------ access paths

    def _plan_relation(
        self, relation: _Relation, resolver, needed_columns: Optional[Set[str]] = None
    ) -> PhysicalNode:
        if relation.subquery is not None:
            inner = self.plan_select(relation.subquery)
            node = make_node(
                OpKind.SUBQUERY_SCAN,
                children=[inner],
                estimated_rows=inner.estimated_rows,
                startup_cost=inner.cost.startup,
                total_cost=inner.cost.total + inner.estimated_rows * self.cost_model.cpu_tuple_cost,
                alias=relation.alias,
                filter=ast.conjoin(relation.predicates),
            )
            inner_bound = inner.info.get("size_bound")
            if inner_bound is not None:
                node.info["size_bound"] = inner_bound
            return node

        table_name = relation.table_name
        if table_name is None or not self.database.has_table(table_name):
            raise PlanningError(f"unknown table {table_name!r}")
        table = self.database.table(table_name)
        statistics = self.database.statistics(table_name)
        table_rows = max(float(statistics.row_count), 1.0)
        width = table.schema.row_width()
        predicate = ast.conjoin(relation.predicates)
        selectivity = estimate_selectivity(predicate, resolver)
        output_rows = max(table_rows * selectivity, 1.0) if predicate is not None else table_rows

        best = self._seq_scan_node(relation, table_rows, output_rows, width, predicate)

        if self.options.enable_index_scan:
            index_plan = self._best_index_scan(
                relation, table_rows, width, resolver, needed_columns or set()
            )
            if index_plan is not None and (
                index_plan.cost.total < best.cost.total
                or (
                    predicate is not None
                    and selectivity <= self.options.index_selectivity_threshold
                    and index_plan.info.get("index_condition") is not None
                )
            ):
                best = index_plan
        # The proven output bound of any scan is the table's *actual* row
        # count (filters only shrink it) — deliberately not the possibly
        # stale statistics row count, since the bound must never under-claim.
        best.info["size_bound"] = float(table.row_count)
        return best

    def _seq_scan_node(
        self,
        relation: _Relation,
        table_rows: float,
        output_rows: float,
        width: int,
        predicate: Optional[ast.Expression],
    ) -> PhysicalNode:
        cost = self.cost_model.seq_scan(table_rows, output_rows, width)
        return make_node(
            OpKind.SEQ_SCAN,
            estimated_rows=output_rows,
            startup_cost=cost.startup,
            total_cost=cost.total,
            width=width,
            table=relation.table_name,
            alias=relation.alias,
            filter=predicate,
            table_rows=table_rows,
        )

    def _best_index_scan(
        self,
        relation: _Relation,
        table_rows: float,
        width: int,
        resolver,
        needed_columns: Set[str],
    ) -> Optional[PhysicalNode]:
        table_name = relation.table_name
        best: Optional[PhysicalNode] = None
        for index in self.database.indexes_for(table_name):
            leading = index.definition.leading_column().lower()
            index_conjuncts: List[ast.Expression] = []
            remaining: List[ast.Expression] = []
            for conjunct in relation.predicates:
                if self._predicate_targets_column(conjunct, relation.alias, leading):
                    index_conjuncts.append(conjunct)
                else:
                    remaining.append(conjunct)
            if not index_conjuncts and not self._index_covers_query(
                index.definition.columns, needed_columns
            ):
                continue
            index_condition = ast.conjoin(index_conjuncts)
            index_selectivity = estimate_selectivity(index_condition, resolver)
            matched_rows = max(table_rows * index_selectivity, 1.0)
            remaining_predicate = ast.conjoin(remaining)
            remaining_selectivity = estimate_selectivity(remaining_predicate, resolver)
            output_rows = max(matched_rows * remaining_selectivity, 1.0)
            covering = (
                self.options.enable_index_only_scan
                and self._index_covers_query(index.definition.columns, needed_columns)
            )
            cost = self.cost_model.index_scan(table_rows, matched_rows, width, covering)
            kind = OpKind.INDEX_ONLY_SCAN if covering else OpKind.INDEX_SCAN
            node = make_node(
                kind,
                estimated_rows=output_rows,
                startup_cost=cost.startup,
                total_cost=cost.total,
                width=width,
                table=table_name,
                alias=relation.alias,
                index=index.definition.name,
                index_columns=list(index.definition.columns),
                index_condition=index_condition,
                filter=remaining_predicate,
                table_rows=table_rows,
            )
            if best is None or node.cost.total < best.cost.total:
                best = node
        return best

    def _predicate_targets_column(
        self, predicate: ast.Expression, alias: str, column: str
    ) -> bool:
        references = ast.referenced_columns(predicate)
        if not references:
            return False
        supported = isinstance(predicate, (ast.BinaryOp, ast.Between, ast.InList))
        if not supported:
            return False
        if isinstance(predicate, ast.BinaryOp) and predicate.operator.upper() in {"AND", "OR"}:
            return False
        return all(
            reference.column.lower() == column
            and (reference.table is None or reference.table == alias)
            for reference in references
        )

    def _index_covers_query(
        self, index_columns: Sequence[str], needed_columns: Set[str]
    ) -> bool:
        if not needed_columns:
            return False
        indexed = {column.lower() for column in index_columns}
        return {column.lower() for column in needed_columns}.issubset(indexed)

    # ------------------------------------------------------------------ join ordering

    def _plan_join_order(
        self,
        relations: List[_Relation],
        edges: List[_JoinEdge],
        needed: Optional[Dict[str, Set[str]]] = None,
    ) -> PhysicalNode:
        resolver = self._statistics_resolver(relations)
        if needed is None:
            needed = self._needed_columns_by_alias(relations)
        base_plans: Dict[frozenset, PhysicalNode] = {}
        for relation in relations:
            base_plans[frozenset([relation.alias])] = self._plan_relation(
                relation, resolver, needed.get(relation.alias, set())
            )
        if len(relations) == 1:
            return next(iter(base_plans.values()))

        if len(relations) <= self.options.dp_threshold:
            return self._dynamic_programming_join(relations, edges, base_plans, resolver)
        return self._greedy_join(relations, edges, base_plans, resolver)

    def _needed_columns_by_alias(self, relations: List[_Relation]) -> Dict[str, Set[str]]:
        # Fallback used for DML planning: only the pushed-down predicates are
        # known, so index-only scans are only chosen when an index covers every
        # column the relation's predicates touch.
        needed: Dict[str, Set[str]] = {}
        for relation in relations:
            columns: Set[str] = set()
            for predicate in relation.predicates:
                for reference in ast.referenced_columns(predicate):
                    columns.add(reference.column)
            needed[relation.alias] = columns
        return needed

    def _compute_needed_columns(
        self,
        core: ast.SelectCore,
        relations: List[_Relation],
        edges: List[_JoinEdge],
        group_by: Optional[List[ast.Expression]] = None,
    ) -> Dict[str, Set[str]]:
        """Every column each relation must provide to answer the query.

        Used for index-only-scan selection: an index can only replace the heap
        when it covers every referenced column of the relation.  A ``*`` select
        item marks every column of every relation as needed.
        """
        alias_names = {relation.alias for relation in relations}
        needed: Dict[str, Set[str]] = {relation.alias: set() for relation in relations}

        def mark(expression: Optional[ast.Expression]) -> None:
            if expression is None:
                return
            for node in ast.iter_expressions(expression):
                if isinstance(node, ast.Star):
                    for relation in relations:
                        if relation.table_name and self.database.has_table(relation.table_name):
                            needed[relation.alias].update(
                                self.database.schema(relation.table_name).column_names()
                            )
                        else:
                            needed[relation.alias].add("*")
            for reference in ast.referenced_columns(expression):
                if reference.table and reference.table in alias_names:
                    needed[reference.table].add(reference.column)
                elif reference.table is None:
                    owner = self._owning_alias(reference.column, alias_names)
                    if owner is not None:
                        needed[owner].add(reference.column)

        for item in core.items:
            if isinstance(item.expression, ast.Star):
                if item.expression.table and item.expression.table in alias_names:
                    aliases = [item.expression.table]
                else:
                    aliases = list(alias_names)
                for alias in aliases:
                    relation = self._relation_by_alias(relations, alias)
                    if relation.table_name and self.database.has_table(relation.table_name):
                        needed[alias].update(
                            self.database.schema(relation.table_name).column_names()
                        )
                    else:
                        needed[alias].add("*")
            else:
                mark(item.expression)
        mark(core.where)
        for expression in group_by if group_by is not None else core.group_by:
            mark(expression)
        mark(core.having)
        for relation in relations:
            for predicate in relation.predicates:
                mark(predicate)
        for edge in edges:
            mark(edge.condition)
        return needed

    def _edges_between(
        self, edges: List[_JoinEdge], left_aliases: frozenset, right_aliases: frozenset
    ) -> List[_JoinEdge]:
        connecting = []
        for edge in edges:
            if (
                edge.left_alias in left_aliases
                and edge.right_alias in right_aliases
            ) or (
                edge.left_alias in right_aliases and edge.right_alias in left_aliases
            ):
                connecting.append(edge)
        return connecting

    def _dynamic_programming_join(
        self,
        relations: List[_Relation],
        edges: List[_JoinEdge],
        base_plans: Dict[frozenset, PhysicalNode],
        resolver,
    ) -> PhysicalNode:
        aliases = [relation.alias for relation in relations]
        best: Dict[frozenset, PhysicalNode] = dict(base_plans)

        for subset_size in range(2, len(aliases) + 1):
            for subset in itertools.combinations(aliases, subset_size):
                subset_key = frozenset(subset)
                best_plan: Optional[PhysicalNode] = None
                for split_size in range(1, subset_size):
                    for left_part in itertools.combinations(subset, split_size):
                        left_key = frozenset(left_part)
                        right_key = subset_key - left_key
                        if left_key not in best or right_key not in best:
                            continue
                        connecting = self._edges_between(edges, left_key, right_key)
                        if not connecting and len(edges) > 0 and subset_size < len(aliases):
                            # Avoid cartesian products until forced to.
                            continue
                        if self._prune_split(best[left_key], best[right_key], best_plan):
                            continue
                        candidate = self._make_join(
                            best[left_key], best[right_key], connecting, resolver
                        )
                        if best_plan is None or candidate.cost.total < best_plan.cost.total:
                            best_plan = candidate
                if best_plan is None:
                    # Fall back to allowing a cartesian product.
                    for split_size in range(1, subset_size):
                        for left_part in itertools.combinations(subset, split_size):
                            left_key = frozenset(left_part)
                            right_key = subset_key - left_key
                            if left_key not in best or right_key not in best:
                                continue
                            if self._prune_split(
                                best[left_key], best[right_key], best_plan
                            ):
                                continue
                            candidate = self._make_join(best[left_key], best[right_key], [], resolver)
                            if best_plan is None or candidate.cost.total < best_plan.cost.total:
                                best_plan = candidate
                if best_plan is not None:
                    best[subset_key] = best_plan

        full_key = frozenset(aliases)
        if full_key not in best:
            raise PlanningError("join ordering failed to produce a complete plan")
        return best[full_key]

    def _prune_split(
        self,
        left: PhysicalNode,
        right: PhysicalNode,
        best_plan: Optional[PhysicalNode],
    ) -> bool:
        """Branch-and-bound pruning of one memo split.

        Every join cost formula in :class:`CostModel` includes both
        children's full totals, so a split whose children alone already cost
        at least the best complete plan for the subset cannot win — the join
        on top only adds cost.  Sound (never discards a cheaper plan) and
        deterministic (depends only on memo costs, not enumeration order
        beyond the fixed ``itertools`` order).
        """
        if best_plan is None:
            return False
        return left.cost.total + right.cost.total >= best_plan.cost.total

    def _greedy_join(
        self,
        relations: List[_Relation],
        edges: List[_JoinEdge],
        base_plans: Dict[frozenset, PhysicalNode],
        resolver,
    ) -> PhysicalNode:
        remaining = dict(base_plans)
        while len(remaining) > 1:
            best_pair: Optional[Tuple[frozenset, frozenset]] = None
            best_plan: Optional[PhysicalNode] = None
            best_score: Optional[float] = None
            for left_key, right_key in itertools.combinations(list(remaining), 2):
                connecting = self._edges_between(edges, left_key, right_key)
                candidate = self._make_join(
                    remaining[left_key], remaining[right_key], connecting, resolver
                )
                penalty = 1.0 if connecting else self.cost_model.cartesian_penalty
                score = candidate.cost.total * penalty
                if best_score is None or score < best_score:
                    best_plan = candidate
                    best_pair = (left_key, right_key)
                    best_score = score
            assert best_pair is not None and best_plan is not None
            left_key, right_key = best_pair
            del remaining[left_key]
            del remaining[right_key]
            remaining[left_key | right_key] = best_plan
        return next(iter(remaining.values()))

    #: Comparison operators and their operand-swapped mirrors, used to
    #: re-orient join-edge conditions to the enumeration's chosen child order.
    _MIRRORED_COMPARISONS = {
        "=": "=",
        "<>": "<>",
        "<": ">",
        ">": "<",
        "<=": ">=",
        ">=": "<=",
    }

    def _plan_aliases(self, node: PhysicalNode) -> Set[str]:
        """Every relation alias contributing rows to *node*'s subtree."""
        aliases: Set[str] = set()
        for descendant in node.walk():
            alias = descendant.info.get("alias")
            if alias:
                aliases.add(alias)
        return aliases

    def _oriented_join_condition(
        self,
        left: PhysicalNode,
        right: PhysicalNode,
        connecting: List[_JoinEdge],
    ) -> ast.Expression:
        """Conjoin the edge conditions, flipped to the chosen child order.

        The join-order enumeration freely builds (B, A) from an edge written
        ``a.x = b.x``.  Both executors' hash/merge key extraction resolves a
        comparison's left reference against the left child, so a misoriented
        conjunct would read as an unresolvable (hence NULL) key and silently
        match nothing.  A conjunct is flipped only when its sides provably
        live entirely in the opposite subtrees; anything else (unqualified
        references, single-sided conditions) is left as written.
        """
        left_aliases = self._plan_aliases(left)
        right_aliases = self._plan_aliases(right)
        conjuncts: List[ast.Expression] = []
        for edge in connecting:
            for conjunct in ast.split_conjuncts(edge.condition):
                if (
                    isinstance(conjunct, ast.BinaryOp)
                    and conjunct.operator in self._MIRRORED_COMPARISONS
                ):
                    side_aliases = [
                        {
                            reference.table
                            for reference in ast.referenced_columns(expression)
                            if reference.table
                        }
                        for expression in (conjunct.left, conjunct.right)
                    ]
                    if (
                        side_aliases[0]
                        and side_aliases[1]
                        and side_aliases[0] <= right_aliases
                        and side_aliases[1] <= left_aliases
                    ):
                        conjunct = ast.BinaryOp(
                            self._MIRRORED_COMPARISONS[conjunct.operator],
                            conjunct.right,
                            conjunct.left,
                        )
                conjuncts.append(conjunct)
        return ast.conjoin(conjuncts)

    def _make_join(
        self,
        left: PhysicalNode,
        right: PhysicalNode,
        connecting: List[_JoinEdge],
        resolver,
        join_type: str = "INNER",
    ) -> PhysicalNode:
        condition = (
            self._oriented_join_condition(left, right, connecting)
            if connecting
            else None
        )
        selectivity = estimate_join_selectivity(condition, resolver)
        output_rows = max(left.estimated_rows * right.estimated_rows * selectivity, 1.0)
        width = left.width + right.width
        equi_join = condition is not None and self._is_equi_join(condition)

        # Proven size bound: the product of the input bounds, reduced when a
        # side's equated join columns cover one of its unique keys, plus
        # null-padding terms for outer joins.  An estimate above the proven
        # maximum is certainly wrong, so cap it at the bound.
        size_bound: Optional[float] = None
        left_bound = left.info.get("size_bound")
        right_bound = right.info.get("size_bound")
        if left_bound is not None and right_bound is not None:
            equated = self._equated_join_columns(condition)
            size_bound = bounds.join_bound(
                left_bound,
                right_bound,
                join_type,
                left_unique=self._scan_unique_on(left, equated),
                right_unique=self._scan_unique_on(right, equated),
            )
            output_rows = max(min(output_rows, size_bound), 1.0)
        extra: Dict[str, object] = (
            {"size_bound": size_bound} if size_bound is not None else {}
        )

        candidates: List[PhysicalNode] = []
        if self.options.enable_hash_join and equi_join:
            cost = self.cost_model.hash_join(
                left.cost, right.cost, left.estimated_rows, right.estimated_rows
            )
            candidates.append(
                make_node(
                    OpKind.HASH_JOIN,
                    children=[left, right],
                    estimated_rows=output_rows,
                    startup_cost=cost.startup,
                    total_cost=cost.total,
                    width=width,
                    condition=condition,
                    join_type=join_type,
                    **extra,
                )
            )
        if self.options.enable_merge_join and equi_join:
            cost = self.cost_model.merge_join(
                left.cost, right.cost, left.estimated_rows, right.estimated_rows
            )
            candidates.append(
                make_node(
                    OpKind.MERGE_JOIN,
                    children=[left, right],
                    estimated_rows=output_rows,
                    startup_cost=cost.startup,
                    total_cost=cost.total,
                    width=width,
                    condition=condition,
                    join_type=join_type,
                    **extra,
                )
            )
        if self.options.enable_nested_loop_join or not candidates:
            cost = self.cost_model.nested_loop_join(
                left.cost, right.cost, left.estimated_rows, right.estimated_rows
            )
            candidates.append(
                make_node(
                    OpKind.NESTED_LOOP_JOIN,
                    children=[left, right],
                    estimated_rows=output_rows,
                    startup_cost=cost.startup,
                    total_cost=cost.total,
                    width=width,
                    condition=condition,
                    join_type=join_type,
                    **extra,
                )
            )
        return min(candidates, key=lambda node: node.cost.total)

    def _is_equi_join(self, condition: ast.Expression) -> bool:
        conjuncts = ast.split_conjuncts(condition)
        return any(
            isinstance(conjunct, ast.BinaryOp)
            and conjunct.operator == "="
            and isinstance(conjunct.left, ast.ColumnRef)
            and isinstance(conjunct.right, ast.ColumnRef)
            for conjunct in conjuncts
        )

    #: Operators whose output is exactly the rows of one base table.
    _SCAN_KINDS = frozenset(
        {OpKind.SEQ_SCAN, OpKind.INDEX_SCAN, OpKind.INDEX_ONLY_SCAN}
    )

    def _equated_join_columns(
        self, condition: Optional[ast.Expression]
    ) -> Dict[str, Set[str]]:
        """``alias → columns`` equated across relations by ``=`` conjuncts.

        Only *qualified* cross-relation ``col = col`` equalities count: an
        unqualified reference cannot prove which relation it constrains, and
        a same-alias or column-constant equality says nothing about how many
        rows of one side each row of the other side can match.
        """
        equated: Dict[str, Set[str]] = {}
        if condition is None:
            return equated
        for conjunct in ast.split_conjuncts(condition):
            if not (
                isinstance(conjunct, ast.BinaryOp)
                and conjunct.operator == "="
                and isinstance(conjunct.left, ast.ColumnRef)
                and isinstance(conjunct.right, ast.ColumnRef)
            ):
                continue
            left, right = conjunct.left, conjunct.right
            if not left.table or not right.table or left.table == right.table:
                continue
            equated.setdefault(left.table, set()).add(left.column.lower())
            equated.setdefault(right.table, set()).add(right.column.lower())
        return equated

    def _scan_unique_on(
        self, node: PhysicalNode, equated: Dict[str, Set[str]]
    ) -> bool:
        """Whether *node* is a base-table scan whose equated join columns
        cover an enforced unique key — so every opposite-side row matches at
        most one of its rows.  Sound only for scans: any deeper subtree may
        duplicate or rename columns on the way up."""
        if node.kind not in self._SCAN_KINDS:
            return False
        alias = node.info.get("alias")
        table_name = node.info.get("table")
        if not alias or not table_name or not self.database.has_table(table_name):
            return False
        columns = equated.get(alias)
        if not columns:
            return False
        for index in self.database.indexes_for(table_name):
            if not index.definition.unique:
                continue
            key = {column.lower() for column in index.definition.columns}
            if key and key.issubset(columns):
                return True
        return False

    def _plan_syntactic_joins(
        self,
        from_clause: ast.TableExpression,
        relations: List[_Relation],
        alias_names: Set[str],
        needed: Optional[Dict[str, Set[str]]] = None,
    ) -> PhysicalNode:
        """Plan joins in the order they are written (used when outer joins exist)."""
        resolver = self._statistics_resolver(relations)
        if needed is None:
            needed = self._needed_columns_by_alias(relations)

        def build(table_expression: ast.TableExpression) -> PhysicalNode:
            if isinstance(table_expression, (ast.TableRef, ast.SubqueryRef)):
                alias = table_expression.effective_name
                relation = self._relation_by_alias(relations, alias)
                return self._plan_relation(relation, resolver, needed.get(alias, set()))
            if isinstance(table_expression, ast.Join):
                left = build(table_expression.left)
                right = build(table_expression.right)
                condition = table_expression.condition
                if condition is None and table_expression.using_columns:
                    condition = self._using_to_condition(table_expression)
                edge_list = (
                    [_JoinEdge("", "", condition, table_expression.join_type)]
                    if condition is not None
                    else []
                )
                return self._make_join(
                    left, right, edge_list, resolver, join_type=table_expression.join_type
                )
            raise PlanningError(
                f"unsupported FROM item {type(table_expression).__name__}"
            )

        return build(from_clause)

    # ------------------------------------------------------------------ upper operators

    def _propagate_bound(
        self, node: PhysicalNode, limit: Optional[float] = None
    ) -> PhysicalNode:
        """Thread the children's proven size bounds onto *node* and cap its
        row estimate at the bound (an estimate above a proven maximum is
        certainly wrong)."""
        child_bounds = [child.info.get("size_bound") for child in node.children]
        bound = bounds.propagated_bound(node.kind, child_bounds, limit=limit)
        if bound is not None:
            node.info["size_bound"] = bound
            if node.estimated_rows > bound:
                node.estimated_rows = max(bound, 1.0)
        return node

    def _add_filter(
        self,
        child: PhysicalNode,
        predicate: Optional[ast.Expression],
        is_having: bool = False,
        resolver=None,
    ) -> PhysicalNode:
        if predicate is None:
            return child
        if resolver is not None:
            # WHERE residuals use the same per-conjunct statistics the
            # pushdown path uses, so the as-written single filter and the
            # optimized pushed-down scans agree on the root estimate.
            selectivity = estimate_selectivity(predicate, resolver)
        else:
            # HAVING (and other statistics-less call sites) keep the
            # original flat magic numbers.
            selectivity = 0.5 if self._contains_subquery(predicate) else 0.33
        output_rows = max(child.estimated_rows * selectivity, 1.0)
        subplans = self._plan_predicate_subqueries(predicate)
        return self._propagate_bound(
            make_node(
                OpKind.FILTER,
                children=[child],
                estimated_rows=output_rows,
                startup_cost=child.cost.startup,
                total_cost=child.cost.total
                + child.estimated_rows * self.cost_model.cpu_operator_cost,
                width=child.width,
                predicate=predicate,
                is_having=is_having,
                subplans=subplans,
            )
        )

    def _plan_predicate_subqueries(
        self, predicate: ast.Expression
    ) -> List[PhysicalNode]:
        subplans: List[PhysicalNode] = []
        for expression in ast.iter_expressions(predicate):
            query: Optional[ast.SelectStatement] = None
            if isinstance(expression, ast.ScalarSubquery):
                query = expression.query
            elif isinstance(expression, ast.InSubquery):
                query = expression.subquery
            elif isinstance(expression, ast.Exists):
                query = expression.query
            if query is not None:
                subplans.append(self.plan_subquery(query))
        return subplans

    def _collect_aggregates(self, core: ast.SelectCore) -> List[ast.FunctionCall]:
        aggregates: List[ast.FunctionCall] = []
        sources: List[Optional[ast.Expression]] = [item.expression for item in core.items]
        sources.append(core.having)
        for item in getattr(core, "order_hint", []):  # pragma: no cover - reserved
            sources.append(item)
        seen: Set[str] = set()
        for source in sources:
            if source is None:
                continue
            for expression in ast.iter_expressions(source):
                if isinstance(expression, ast.FunctionCall) and expression.name.upper() in {
                    "COUNT",
                    "SUM",
                    "AVG",
                    "MIN",
                    "MAX",
                }:
                    key = print_expression(expression)
                    if key not in seen:
                        seen.add(key)
                        aggregates.append(expression)
        return aggregates

    def _add_aggregate(
        self,
        child: PhysicalNode,
        core: ast.SelectCore,
        aggregates: List[ast.FunctionCall],
        group_by: Optional[List[ast.Expression]] = None,
        resolver=None,
    ) -> PhysicalNode:
        group_keys = list(group_by if group_by is not None else core.group_by)
        groups = estimate_distinct_groups(
            len(group_keys),
            child.estimated_rows,
            resolver_ndv=self._group_key_ndv(group_keys, resolver),
        )
        hashed = self.options.prefer_hash_aggregate and bool(group_keys)
        cost = self.cost_model.aggregate(child.estimated_rows, groups, hashed=hashed)
        kind = OpKind.HASH_AGGREGATE if hashed else OpKind.SORT_AGGREGATE
        if not group_keys:
            kind = OpKind.SORT_AGGREGATE
        return self._propagate_bound(
            make_node(
                kind,
                children=[child],
                estimated_rows=groups,
                startup_cost=child.cost.total + cost.startup,
                total_cost=child.cost.total + cost.total,
                width=child.width,
                group_keys=group_keys,
                aggregates=aggregates,
                strategy="hash" if kind is OpKind.HASH_AGGREGATE else "sorted",
            )
        )

    def _group_key_ndv(self, group_keys, resolver) -> Optional[float]:
        """Product of the grouping columns' NDV statistics, or ``None``.

        Under attribute-value independence the number of groups is at most
        the product of the keys' distinct counts (``estimate_distinct_groups``
        still clamps it to the input row count).  Provable only when *every*
        key is a plain column reference with collected statistics — one
        expression key or missing NDV and the estimator falls back to its
        square-root heuristic.
        """
        if resolver is None or not group_keys:
            return None
        product = 1.0
        for key in group_keys:
            if not isinstance(key, ast.ColumnRef):
                return None
            statistics = resolver(key)
            if statistics is None or statistics.distinct_values <= 0:
                return None
            product *= float(statistics.distinct_values)
        return product

    def _add_projection(self, child: PhysicalNode, core: ast.SelectCore) -> PhysicalNode:
        items: List[Tuple[ast.Expression, str]] = []
        for item in core.items:
            name = item.alias or print_expression(item.expression)
            items.append((item.expression, name))
        return self._propagate_bound(
            make_node(
                OpKind.PROJECT,
                children=[child],
                estimated_rows=child.estimated_rows,
                startup_cost=child.cost.startup,
                total_cost=child.cost.total
                + child.estimated_rows * self.cost_model.cpu_tuple_cost,
                width=child.width,
                items=items,
            )
        )

    def _add_distinct(self, child: PhysicalNode) -> PhysicalNode:
        groups = max(child.estimated_rows * 0.9, 1.0)
        cost = self.cost_model.aggregate(child.estimated_rows, groups, hashed=True)
        return self._propagate_bound(
            make_node(
                OpKind.DISTINCT,
                children=[child],
                estimated_rows=groups,
                startup_cost=child.cost.total + cost.startup,
                total_cost=child.cost.total + cost.total,
                width=child.width,
            )
        )

    def _add_sort(
        self,
        child: PhysicalNode,
        order_by: List[ast.OrderItem],
        top_n: bool,
        limit: Optional[ast.Expression],
        body: Optional[object] = None,
    ) -> PhysicalNode:
        cost = self.cost_model.sort(child.estimated_rows)
        keys: List[Tuple[ast.Expression, bool]] = []
        outputs: Optional[List[Optional[ast.Expression]]] = None
        for item in order_by:
            expression = item.expression
            ordinal = self._ordinal(expression)
            if ordinal is not None:
                # ``ORDER BY 1`` is a positional reference to the select
                # list, not a sort by the constant 1 (which would leave the
                # rows in arrival order).
                if outputs is None:
                    outputs = self._output_sort_expressions(body)
                if ordinal > len(outputs):
                    raise PlanningError(
                        f"ORDER BY position {ordinal} is not in the select list"
                    )
                resolved = outputs[ordinal - 1]
                if resolved is None:
                    raise PlanningError(
                        f"ORDER BY position {ordinal} cannot be resolved "
                        "to an output column"
                    )
                expression = resolved
            keys.append((expression, item.descending))
        if top_n and limit is not None:
            limit_value = self._limit_literal(limit)
            rows = (
                min(float(limit_value), child.estimated_rows)
                if limit_value is not None and limit_value >= 0
                else child.estimated_rows
            )
            return self._propagate_bound(
                make_node(
                    OpKind.TOP_N,
                    children=[child],
                    estimated_rows=max(rows, 1.0),
                    startup_cost=child.cost.total + cost.startup,
                    total_cost=child.cost.total + cost.total,
                    width=child.width,
                    sort_keys=keys,
                    limit=limit,
                ),
                # A negative literal LIMIT means "no limit" (SQLite
                # semantics), so it contributes no bound of its own.
                limit=(
                    limit_value
                    if limit_value is not None and limit_value >= 0
                    else None
                ),
            )
        return self._propagate_bound(
            make_node(
                OpKind.SORT,
                children=[child],
                estimated_rows=child.estimated_rows,
                startup_cost=child.cost.total + cost.startup,
                total_cost=child.cost.total + cost.total,
                width=child.width,
                sort_keys=keys,
            )
        )

    def _limit_literal(self, limit: Optional[ast.Expression]) -> Optional[float]:
        """The numeric value of a literal LIMIT/OFFSET (incl. ``-n``)."""
        if isinstance(limit, ast.Literal):
            value = limit.value
        elif (
            isinstance(limit, ast.UnaryOp)
            and limit.operator == "-"
            and isinstance(limit.operand, ast.Literal)
        ):
            value = limit.operand.value
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                value = -value
        else:
            return None
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            return float(value)
        return None

    def _add_limit(
        self,
        child: PhysicalNode,
        limit: Optional[ast.Expression],
        offset: Optional[ast.Expression],
    ) -> PhysicalNode:
        limit_value = self._limit_literal(limit)
        # SQLite semantics (the dialect under test): a negative LIMIT means
        # "no limit", so it passes the child's full row estimate through.
        if limit_value is not None and limit_value >= 0 and child.estimated_rows > 0:
            fraction = min(float(limit_value) / child.estimated_rows, 1.0)
            rows = min(float(limit_value), child.estimated_rows)
        else:
            fraction = 1.0
            rows = child.estimated_rows
        cost = self.cost_model.limit(child.cost.total, fraction)
        return self._propagate_bound(
            make_node(
                OpKind.LIMIT,
                children=[child],
                estimated_rows=max(rows, 1.0),
                startup_cost=child.cost.startup,
                total_cost=child.cost.startup + cost.total,
                width=child.width,
                limit=limit,
                offset=offset,
            ),
            limit=(
                limit_value
                if limit_value is not None and limit_value >= 0
                else None
            ),
        )

    # ------------------------------------------------------------------ DML

    def _plan_insert(self, statement: ast.Insert) -> PhysicalNode:
        if statement.select is not None:
            source = self.plan_select(statement.select)
            rows = source.estimated_rows
        else:
            source = make_node(
                OpKind.VALUES,
                estimated_rows=float(len(statement.rows)),
                total_cost=len(statement.rows) * self.cost_model.cpu_tuple_cost,
                rows=statement.rows,
                columns=list(statement.columns),
            )
            rows = float(len(statement.rows))
        return make_node(
            OpKind.INSERT,
            children=[source],
            estimated_rows=rows,
            total_cost=source.cost.total + rows * self.cost_model.cpu_tuple_cost,
            table=statement.table,
            columns=list(statement.columns),
            statement=statement,
        )

    def _plan_update(self, statement: ast.Update) -> PhysicalNode:
        relation = _Relation(alias=statement.table, table_name=statement.table)
        if statement.where is not None:
            relation.predicates = ast.split_conjuncts(statement.where)
        resolver = self._statistics_resolver([relation])
        scan = self._plan_relation(relation, resolver)
        return make_node(
            OpKind.UPDATE,
            children=[scan],
            estimated_rows=scan.estimated_rows,
            total_cost=scan.cost.total + scan.estimated_rows * self.cost_model.cpu_tuple_cost,
            table=statement.table,
            assignments=statement.assignments,
            statement=statement,
        )

    def _plan_delete(self, statement: ast.Delete) -> PhysicalNode:
        relation = _Relation(alias=statement.table, table_name=statement.table)
        if statement.where is not None:
            relation.predicates = ast.split_conjuncts(statement.where)
        resolver = self._statistics_resolver([relation])
        scan = self._plan_relation(relation, resolver)
        return make_node(
            OpKind.DELETE,
            children=[scan],
            estimated_rows=scan.estimated_rows,
            total_cost=scan.cost.total + scan.estimated_rows * self.cost_model.cpu_tuple_cost,
            table=statement.table,
            statement=statement,
        )
