"""The relational database instance: schemas, heap tables, indexes, statistics.

A :class:`Database` is the storage-and-catalog substrate shared by the
simulated relational DBMSs.  Each dialect owns its own ``Database`` instance,
so mutations issued against one simulated DBMS do not affect another — exactly
as with separate real installations.

Since the serving layer (PR 9) one database may be read by many sessions at
once.  The concurrency contract lives here:

* :attr:`Database.gate` is a writer-preferring readers-writer gate.  The
  service runs read-only statements under shared access and DDL/DML under
  exclusive access, which makes writes linearizable without serializing
  reads against each other.
* :meth:`Database.bump_version` is lock-guarded, so the version is a true
  monotonic counter even when mutators race (they should not, under the
  gate — the lock makes the invariant independent of caller discipline).
* :meth:`Database.pin_view` captures a :class:`DatabaseView` — an immutable
  ``{table name → TableSnapshot}`` mapping at one version.  A statement that
  pinned a view reads only those snapshots; later writers replace the
  table's cached snapshot rather than mutating it, so the pinned view stays
  valid by reference-holding (MVCC without a retention policy).
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Iterable, List, Optional, Sequence

from repro.catalog.schema import Column, DataType, Index, TableSchema
from repro.catalog.statistics import TableStatistics, collect_table_statistics
from repro.core.concurrency import ReadWriteGate
from repro.errors import CatalogError
from repro.storage.index import OrderedIndex
from repro.storage.table import HeapTable, Row, TableSnapshot


class DatabaseView:
    """An immutable read view of a database pinned at one catalog version.

    The view holds direct references to the :class:`TableSnapshot` objects
    that existed at pin time; snapshots are never mutated in place, so the
    view keeps serving version-consistent data even while writers advance
    the live database underneath it.
    """

    __slots__ = ("version", "_snapshots")

    def __init__(self, version: int, snapshots: Dict[str, TableSnapshot]) -> None:
        self.version = version
        self._snapshots = snapshots

    def get(self, table_name: str) -> Optional[TableSnapshot]:
        """Return the pinned snapshot for *table_name* (``None`` if absent)."""
        return self._snapshots.get(table_name.lower())

    def table_names(self) -> List[str]:
        """The lower-cased names of every table captured in the view."""
        return list(self._snapshots)

    def __contains__(self, table_name: str) -> bool:
        return table_name.lower() in self._snapshots

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DatabaseView(version={self.version}, tables={len(self._snapshots)})"


class Database:
    """An in-memory database: tables, indexes, and optimizer statistics."""

    def __init__(self, name: str = "main") -> None:
        self.name = name
        self._tables: Dict[str, HeapTable] = {}
        self._indexes: Dict[str, OrderedIndex] = {}
        self._statistics: Dict[str, TableStatistics] = {}
        #: Monotonic catalog/statistics version.  Every mutation that can
        #: change how a statement parses into a *different best plan* — DDL,
        #: DML (row counts feed the cost model), and statistics collection —
        #: bumps it.  The prepared-query cache keys plans by this number, so
        #: a mutated database can never serve a stale plan.
        self._version = 0
        self._version_lock = threading.Lock()
        #: Readers-writer gate for the serving layer: read-only statements
        #: hold it shared, DDL/DML hold it exclusively.  Embedded (direct
        #: dialect) use never touches it, so single-threaded callers pay
        #: nothing.
        self.gate = ReadWriteGate()

    @property
    def version(self) -> int:
        """The current catalog/statistics version (see ``__init__``)."""
        return self._version

    def bump_version(self) -> int:
        """Advance the catalog version, invalidating cached prepared plans.

        Guarded by a lock: ``+= 1`` on a plain attribute is a
        read-modify-write race, and the version doubles as the snapshot-
        isolation timestamp, so two racing bumps must never collapse into
        one.
        """
        with self._version_lock:
            self._version += 1
            return self._version

    def pin_view(self) -> DatabaseView:
        """Capture a :class:`DatabaseView` of every table at the current version.

        Intended to be called while holding :attr:`gate` in shared mode (or
        from a single-threaded caller): the version cannot move mid-capture,
        so all snapshots in the view belong to one version.  Snapshot builds
        are cached per table, so repeated pins at an unchanged version reuse
        the same :class:`TableSnapshot` objects.
        """
        version = self._version
        snapshots = {
            key: table.column_batch(version) for key, table in self._tables.items()
        }
        return DatabaseView(version, snapshots)

    # -- DDL ------------------------------------------------------------------------

    def create_table(self, schema: TableSchema, if_not_exists: bool = False) -> None:
        """Create a table; primary-key columns get an implicit unique index."""
        key = schema.name.lower()
        if key in self._tables:
            if if_not_exists:
                return
            raise CatalogError(f"table {schema.name!r} already exists")
        self._tables[key] = HeapTable(schema)
        primary_columns = schema.primary_key_columns()
        if primary_columns:
            definition = Index(
                name=f"{schema.name}_pkey",
                table_name=schema.name,
                columns=primary_columns,
                unique=True,
                primary=True,
            )
            self._indexes[definition.name.lower()] = OrderedIndex(definition)
        self._statistics[key] = TableStatistics(table=schema.name)
        self.bump_version()

    def drop_table(self, name: str, if_exists: bool = False) -> None:
        """Drop a table together with its indexes and statistics."""
        key = name.lower()
        if key not in self._tables:
            if if_exists:
                return
            raise CatalogError(f"table {name!r} does not exist")
        del self._tables[key]
        self._statistics.pop(key, None)
        for index_name in [
            index_name
            for index_name, index in self._indexes.items()
            if index.definition.table_name.lower() == key
        ]:
            del self._indexes[index_name]
        self.bump_version()

    def create_index(
        self,
        name: str,
        table_name: str,
        columns: Sequence[str],
        unique: bool = False,
    ) -> Index:
        """Create a secondary index and populate it from existing rows."""
        if name.lower() in self._indexes:
            raise CatalogError(f"index {name!r} already exists")
        table = self.table(table_name)
        for column in columns:
            if not table.schema.has_column(column):
                raise CatalogError(
                    f"cannot index unknown column {column!r} of table {table_name!r}"
                )
        definition = Index(name=name, table_name=table.schema.name, columns=list(columns), unique=unique)
        ordered = OrderedIndex(definition)
        for row_id, row in table.scan():
            ordered.insert(tuple(row[column] for column in definition.columns), row_id)
        self._indexes[name.lower()] = ordered
        self.bump_version()
        return definition

    def drop_index(self, name: str) -> None:
        """Drop a secondary index."""
        if name.lower() not in self._indexes:
            raise CatalogError(f"index {name!r} does not exist")
        del self._indexes[name.lower()]
        self.bump_version()

    # -- access -----------------------------------------------------------------------

    def table(self, name: str) -> HeapTable:
        """Return the heap table named *name*."""
        try:
            return self._tables[name.lower()]
        except KeyError as exc:
            raise CatalogError(f"table {name!r} does not exist") from exc

    def has_table(self, name: str) -> bool:
        """Return whether a table named *name* exists."""
        return name.lower() in self._tables

    def table_names(self) -> List[str]:
        """Return the names of all tables."""
        return [table.schema.name for table in self._tables.values()]

    def schema(self, name: str) -> TableSchema:
        """Return the schema of the table named *name*."""
        return self.table(name).schema

    def indexes_for(self, table_name: str) -> List[OrderedIndex]:
        """Return every index defined on *table_name*."""
        return [
            index
            for index in self._indexes.values()
            if index.definition.table_name.lower() == table_name.lower()
        ]

    def index(self, name: str) -> OrderedIndex:
        """Return the index named *name*."""
        try:
            return self._indexes[name.lower()]
        except KeyError as exc:
            raise CatalogError(f"index {name!r} does not exist") from exc

    def index_names(self) -> List[str]:
        """Return the names of all indexes."""
        return [index.definition.name for index in self._indexes.values()]

    # -- DML -------------------------------------------------------------------------

    def insert_rows(self, table_name: str, rows: Iterable[Row]) -> int:
        """Insert rows into *table_name*, maintaining its indexes.

        Unindexed tables take the whole batch in one heap pass
        (:meth:`~repro.storage.table.HeapTable.insert_many`); indexed tables
        interleave heap and index inserts per row, preserving the historical
        partial state when a unique index rejects a key mid-batch.  Either
        way the catalog version is bumped exactly once per statement, so the
        prepared-plan and columnar-snapshot caches see a single invalidation
        per batch.
        """
        table = self.table(table_name)
        indexes = self.indexes_for(table_name)
        if not indexes:
            row_ids = table.insert_many(rows)
        else:
            row_ids = []
            for row in rows:
                row_id = table.insert(row)
                stored = table.get(row_id)
                for index in indexes:
                    key = tuple(stored[column] for column in index.definition.columns)
                    index.insert(key, row_id)
                row_ids.append(row_id)
        if row_ids:
            self.bump_version()
        return len(row_ids)

    def update_rows(self, table_name: str, row_ids: Sequence[int], changes_per_row: Sequence[Row]) -> int:
        """Apply per-row changes, maintaining indexes."""
        table = self.table(table_name)
        indexes = self.indexes_for(table_name)
        for row_id, changes in zip(row_ids, changes_per_row):
            before = dict(table.get(row_id))
            table.update(row_id, changes)
            after = table.get(row_id)
            for index in indexes:
                columns = index.definition.columns
                old_key = tuple(before[column] for column in columns)
                new_key = tuple(after[column] for column in columns)
                if old_key != new_key:
                    index.remove(old_key, row_id)
                    index.insert(new_key, row_id)
        if row_ids:
            self.bump_version()
        return len(row_ids)

    def delete_rows(self, table_name: str, row_ids: Sequence[int]) -> int:
        """Delete rows by id, maintaining indexes."""
        table = self.table(table_name)
        indexes = self.indexes_for(table_name)
        for row_id in row_ids:
            row = dict(table.get(row_id))
            for index in indexes:
                key = tuple(row[column] for column in index.definition.columns)
                index.remove(key, row_id)
            table.delete(row_id)
        if row_ids:
            self.bump_version()
        return len(row_ids)

    # -- statistics ---------------------------------------------------------------------

    def analyze(self, table_name: Optional[str] = None) -> None:
        """Collect statistics for one table, or for every table."""
        names = [table_name] if table_name else self.table_names()
        for name in names:
            table = self.table(name)
            numeric_columns = [
                column.name
                for column in table.schema.columns
                if column.data_type.is_numeric
            ]
            self._statistics[name.lower()] = collect_table_statistics(
                table.schema.name,
                table.rows(),
                numeric_columns,
                table.schema.column_names(),
            )
        self.bump_version()

    def statistics(self, table_name: str) -> TableStatistics:
        """Return the most recently collected statistics for *table_name*.

        Statistics may be stale (as in real systems); callers that need fresh
        numbers should call :meth:`analyze` first.
        """
        key = table_name.lower()
        if key not in self._statistics:
            raise CatalogError(f"no statistics for table {table_name!r}")
        stats = self._statistics[key]
        if stats.row_count == 0 and self.table(table_name).row_count > 0:
            # Real systems auto-analyze small/new tables lazily; emulate that.
            self.analyze(table_name)
            stats = self._statistics[key]
        return stats

    def copy_schema_to(self, other: "Database") -> None:
        """Recreate this database's tables and indexes (no rows) in *other*."""
        for table in self._tables.values():
            other.create_table(
                TableSchema(
                    name=table.schema.name,
                    columns=[
                        Column(
                            name=column.name,
                            data_type=column.data_type,
                            nullable=column.nullable,
                            primary_key=column.primary_key,
                            unique=column.unique,
                            default=column.default,
                        )
                        for column in table.schema.columns
                    ],
                )
            )
        for index in self._indexes.values():
            if not index.definition.primary:
                other.create_index(
                    index.definition.name,
                    index.definition.table_name,
                    index.definition.columns,
                    index.definition.unique,
                )

    def clone(self) -> "Database":
        """Return a deep copy of the database (schema, rows, indexes)."""
        replica = Database(self.name)
        self.copy_schema_to(replica)
        for table in self._tables.values():
            replica.insert_rows(table.schema.name, [dict(row) for row in table.rows()])
        replica.analyze()
        return replica

    # -- serialization (process replicas) ---------------------------------------------

    def to_payload(self) -> Dict[str, Any]:
        """Return a picklable description of the database at its current version.

        The service's process-dispatch mode ships this to read workers, which
        rebuild an equivalent database with :meth:`from_payload`.  Only
        catalog-visible state travels: schemas, rows, and secondary indexes
        (primary indexes and statistics are re-derived on the other side).
        """
        tables = []
        for table in self._tables.values():
            schema = table.schema
            tables.append(
                {
                    "name": schema.name,
                    "columns": [
                        {
                            "name": column.name,
                            "data_type": column.data_type.name,
                            "nullable": column.nullable,
                            "primary_key": column.primary_key,
                            "unique": column.unique,
                            "default": column.default,
                        }
                        for column in schema.columns
                    ],
                    "rows": [dict(row) for row in table.rows()],
                }
            )
        indexes = [
            {
                "name": index.definition.name,
                "table": index.definition.table_name,
                "columns": list(index.definition.columns),
                "unique": index.definition.unique,
            }
            for index in self._indexes.values()
            if not index.definition.primary
        ]
        return {
            "name": self.name,
            "version": self._version,
            "tables": tables,
            "indexes": indexes,
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "Database":
        """Rebuild a database from :meth:`to_payload` output.

        The replica's tables, rows, indexes, and statistics match the source;
        its :attr:`version` is forced to the payload's version so prepared
        plans keyed on it line up across processes.
        """
        database = cls(payload["name"])
        for spec in payload["tables"]:
            database.create_table(
                TableSchema(
                    name=spec["name"],
                    columns=[
                        Column(
                            name=column["name"],
                            data_type=DataType[column["data_type"]],
                            nullable=column["nullable"],
                            primary_key=column["primary_key"],
                            unique=column["unique"],
                            default=column["default"],
                        )
                        for column in spec["columns"]
                    ],
                )
            )
        for spec in payload["indexes"]:
            database.create_index(
                spec["name"], spec["table"], spec["columns"], spec["unique"]
            )
        for spec in payload["tables"]:
            if spec["rows"]:
                database.insert_rows(spec["name"], [dict(row) for row in spec["rows"]])
        database.analyze()
        database._version = payload["version"]
        return database
