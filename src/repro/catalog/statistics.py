"""Table and column statistics used by the cost-based optimizer.

The statistics mirror what mature DBMSs collect (Section III-D of the paper
notes that Cardinality properties are derived from collected statistics):
row counts, per-column distinct-value counts, null fractions, min/max bounds,
and equi-depth histograms for numeric columns.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

DEFAULT_EQUALITY_SELECTIVITY = 0.005
DEFAULT_RANGE_SELECTIVITY = 0.3
DEFAULT_HISTOGRAM_BUCKETS = 32


@dataclass
class ColumnStatistics:
    """Statistics for one column."""

    column: str
    distinct_values: int = 0
    null_fraction: float = 0.0
    minimum: Optional[object] = None
    maximum: Optional[object] = None
    #: Equi-depth histogram bucket boundaries (numeric columns only).
    histogram: List[float] = field(default_factory=list)
    is_numeric: bool = False

    def equality_selectivity(self) -> float:
        """Estimate the selectivity of ``column = constant``."""
        if self.distinct_values <= 0:
            return DEFAULT_EQUALITY_SELECTIVITY
        return max(1.0 / self.distinct_values, 1e-9) * (1.0 - self.null_fraction)

    def range_selectivity(
        self,
        low: Optional[float] = None,
        high: Optional[float] = None,
        include_low: bool = True,
        include_high: bool = True,
    ) -> float:
        """Estimate the selectivity of a range predicate on a numeric column.

        Uses the histogram when available, otherwise linearly interpolates
        between the min/max bounds; falls back to a default constant when no
        statistics exist.
        """
        if not self.is_numeric:
            return DEFAULT_RANGE_SELECTIVITY
        if self.histogram:
            return self._histogram_fraction(low, high)
        if (
            self.minimum is None
            or self.maximum is None
            or not isinstance(self.minimum, (int, float))
            or not isinstance(self.maximum, (int, float))
        ):
            return DEFAULT_RANGE_SELECTIVITY
        lower_bound = float(self.minimum)
        upper_bound = float(self.maximum)
        if upper_bound <= lower_bound:
            return DEFAULT_RANGE_SELECTIVITY
        effective_low = lower_bound if low is None else max(low, lower_bound)
        effective_high = upper_bound if high is None else min(high, upper_bound)
        if effective_high < effective_low:
            return 0.0
        fraction = (effective_high - effective_low) / (upper_bound - lower_bound)
        return min(max(fraction * (1.0 - self.null_fraction), 0.0), 1.0)

    def _histogram_fraction(
        self, low: Optional[float], high: Optional[float]
    ) -> float:
        bounds = self.histogram
        buckets = len(bounds) - 1
        if buckets <= 0:
            return DEFAULT_RANGE_SELECTIVITY
        lower = bounds[0] if low is None else low
        upper = bounds[-1] if high is None else high
        if upper < lower:
            return 0.0

        def position(value: float) -> float:
            """Fractional bucket position of *value* within the histogram."""
            if value <= bounds[0]:
                return 0.0
            if value >= bounds[-1]:
                return float(buckets)
            index = bisect_right(bounds, value) - 1
            width = bounds[index + 1] - bounds[index]
            offset = 0.0 if width == 0 else (value - bounds[index]) / width
            return index + offset

        fraction = (position(upper) - position(lower)) / buckets
        return min(max(fraction * (1.0 - self.null_fraction), 0.0), 1.0)


@dataclass
class TableStatistics:
    """Statistics for one table."""

    table: str
    row_count: int = 0
    columns: Dict[str, ColumnStatistics] = field(default_factory=dict)

    def column(self, name: str) -> Optional[ColumnStatistics]:
        """Return statistics for *name* (case-insensitive), if collected."""
        return self.columns.get(name.lower())


def collect_column_statistics(
    column: str, values: Sequence[object], is_numeric: bool
) -> ColumnStatistics:
    """Compute :class:`ColumnStatistics` from a column's values."""
    non_null = [value for value in values if value is not None]
    total = len(values)
    statistics = ColumnStatistics(
        column=column,
        distinct_values=len(set(non_null)),
        null_fraction=0.0 if total == 0 else (total - len(non_null)) / total,
        is_numeric=is_numeric,
    )
    if non_null:
        try:
            statistics.minimum = min(non_null)
            statistics.maximum = max(non_null)
        except TypeError:
            statistics.minimum = None
            statistics.maximum = None
    if is_numeric and non_null:
        numeric = sorted(float(value) for value in non_null if isinstance(value, (int, float)))
        if numeric:
            statistics.histogram = _equi_depth_histogram(numeric)
    return statistics


def _equi_depth_histogram(
    sorted_values: List[float], buckets: int = DEFAULT_HISTOGRAM_BUCKETS
) -> List[float]:
    """Build equi-depth histogram bucket boundaries from sorted values."""
    count = len(sorted_values)
    if count == 0:
        return []
    buckets = min(buckets, count)
    bounds = [sorted_values[0]]
    for bucket in range(1, buckets):
        index = min(int(round(bucket * count / buckets)), count - 1)
        bounds.append(sorted_values[index])
    bounds.append(sorted_values[-1])
    return bounds


def collect_table_statistics(
    table: str,
    rows: Sequence[Dict[str, object]],
    numeric_columns: Sequence[str],
    all_columns: Sequence[str],
) -> TableStatistics:
    """Compute :class:`TableStatistics` for *table* from its rows."""
    statistics = TableStatistics(table=table, row_count=len(rows))
    numeric = {name.lower() for name in numeric_columns}
    for column in all_columns:
        values = [row.get(column) for row in rows]
        statistics.columns[column.lower()] = collect_column_statistics(
            column, values, column.lower() in numeric
        )
    return statistics
