"""Schema objects: data types, columns, tables, and indexes."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.errors import CatalogError


class DataType(enum.Enum):
    """Column data types supported by the simulated engines."""

    INTEGER = "INTEGER"
    FLOAT = "FLOAT"
    TEXT = "TEXT"
    BOOLEAN = "BOOLEAN"
    DATE = "DATE"
    TIMESTAMP = "TIMESTAMP"
    DECIMAL = "DECIMAL"

    @classmethod
    def from_sql(cls, type_name: str) -> "DataType":
        """Map a SQL type name onto one of the supported data types."""
        upper = type_name.upper()
        if upper in {"INT", "INTEGER", "BIGINT", "SMALLINT"}:
            return cls.INTEGER
        if upper in {"FLOAT", "REAL", "DOUBLE", "DOUBLE PRECISION"}:
            return cls.FLOAT
        if upper in {"DECIMAL", "NUMERIC"}:
            return cls.DECIMAL
        if upper in {"TEXT", "VARCHAR", "CHAR", "STRING"}:
            return cls.TEXT
        if upper in {"BOOL", "BOOLEAN"}:
            return cls.BOOLEAN
        if upper == "DATE":
            return cls.DATE
        if upper in {"TIMESTAMP", "DATETIME"}:
            return cls.TIMESTAMP
        return cls.TEXT

    @property
    def is_numeric(self) -> bool:
        """Whether values of this type are ordered numbers."""
        return self in {DataType.INTEGER, DataType.FLOAT, DataType.DECIMAL}

    @property
    def width(self) -> int:
        """A nominal byte width used by cardinality/width estimation."""
        return {
            DataType.INTEGER: 4,
            DataType.FLOAT: 8,
            DataType.DECIMAL: 8,
            DataType.BOOLEAN: 1,
            DataType.DATE: 4,
            DataType.TIMESTAMP: 8,
            DataType.TEXT: 32,
        }[self]


@dataclass
class Column:
    """A table column definition."""

    name: str
    data_type: DataType = DataType.INTEGER
    nullable: bool = True
    primary_key: bool = False
    unique: bool = False
    default: object = None

    def __post_init__(self) -> None:
        if not self.name:
            raise CatalogError("column name must be non-empty")


@dataclass
class Index:
    """A secondary index definition over one or more columns."""

    name: str
    table_name: str
    columns: List[str] = field(default_factory=list)
    unique: bool = False
    primary: bool = False

    def __post_init__(self) -> None:
        if not self.columns:
            raise CatalogError(f"index {self.name!r} must cover at least one column")

    def leading_column(self) -> str:
        """Return the first (leading) indexed column."""
        return self.columns[0]

    def covers(self, columns: Sequence[str]) -> bool:
        """Return whether the index contains every column in *columns*."""
        return set(columns).issubset(self.columns)


@dataclass
class TableSchema:
    """A table definition: name, columns, and primary key."""

    name: str
    columns: List[Column] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.name:
            raise CatalogError("table name must be non-empty")
        names = [column.name for column in self.columns]
        if len(names) != len(set(names)):
            raise CatalogError(f"duplicate column names in table {self.name!r}")

    def column_names(self) -> List[str]:
        """Return the column names in definition order."""
        return [column.name for column in self.columns]

    def column(self, name: str) -> Column:
        """Return the column definition named *name*."""
        for column in self.columns:
            if column.name.lower() == name.lower():
                return column
        raise CatalogError(f"table {self.name!r} has no column {name!r}")

    def has_column(self, name: str) -> bool:
        """Return whether the table defines a column named *name*."""
        return any(column.name.lower() == name.lower() for column in self.columns)

    def primary_key_columns(self) -> List[str]:
        """Return the primary key column names (possibly empty)."""
        return [column.name for column in self.columns if column.primary_key]

    def row_width(self) -> int:
        """Return the nominal width in bytes of one row."""
        return sum(column.data_type.width for column in self.columns) or 4
