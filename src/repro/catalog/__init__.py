"""Catalog substrate: schemas, statistics, and database instances."""

from repro.catalog.schema import Column, DataType, Index, TableSchema
from repro.catalog.statistics import (
    ColumnStatistics,
    TableStatistics,
    collect_column_statistics,
    collect_table_statistics,
)
from repro.catalog.database import Database

__all__ = [
    "Column",
    "DataType",
    "Index",
    "TableSchema",
    "ColumnStatistics",
    "TableStatistics",
    "collect_column_statistics",
    "collect_table_statistics",
    "Database",
]
