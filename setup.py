"""Setuptools entry point.

A plain ``setup.py`` (no ``pyproject.toml``) so that installs work in offline
environments where the ``wheel`` package (required by PEP 660 editable
builds with older setuptools) is unavailable.

Developer workflow (see also README.md):

* tier-1 test suite: ``PYTHONPATH=src python -m pytest -x -q``
* perf snapshot:     ``PYTHONPATH=src python benchmarks/run_benchmarks.py``
  (writes ``BENCH_pipeline.json``; add ``--suite`` for the full
  pytest-benchmark run)
"""

from setuptools import find_packages, setup

setup(
    name="repro-uplan",
    version="1.1.0",
    description=(
        "Reproduction of 'Towards a Unified Query Plan Representation' with a "
        "batched, fingerprint-deduplicating plan ingestion pipeline"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.8",
    # No hard runtime dependencies: the engine is pure stdlib.  ``fast``
    # adds the optional NumPy column kernels (repro.engine.arrays); without
    # it the vectorized executor runs on plain-list columns, fully
    # functional, just slower.
    extras_require={"fast": ["numpy"]},
)
