"""Setuptools entry point.

Kept alongside ``pyproject.toml`` so that editable installs work in offline
environments where the ``wheel`` package (required by PEP 660 editable
builds with older setuptools) is unavailable.
"""

from setuptools import setup

setup()
