"""E-L4 — Listing 4: the TPC-H query 11 scan analysis and the ≈27 % saving estimate."""

from repro.benchmarking import analyse_query11, scan_count_comparison, unified_text


def _analyse():
    return analyse_query11(scale=0.3)


def test_listing4_query11_analysis(benchmark):
    analysis = benchmark.pedantic(_analyse, rounds=1, iterations=1)
    comparison = scan_count_comparison(analysis)
    benchmark.extra_info["producer_counts"] = comparison
    benchmark.extra_info["scan_timings_ms"] = {
        f"{scan.operation}:{scan.table}": round(scan.milliseconds, 3)
        for scan in analysis.scan_timings
    }
    benchmark.extra_info["potential_saving"] = round(analysis.potential_saving_fraction, 3)
    # PostgreSQL references partsupp / supplier / nation twice → six table scans.
    assert comparison["postgresql"] == 6
    # The redundant re-scans account for a substantial fraction of execution
    # time (the paper estimates 27 %); the simulated engine lands in the same
    # range.
    assert 0.05 <= analysis.potential_saving_fraction <= 0.6
    # Both unified plans can be printed in the Listing 4 text form.
    assert "Producer->Full Table Scan" in unified_text(analysis.postgresql_plan)
    assert "partsupp" in unified_text(analysis.tidb_plan)
