"""E-L3 — Listing 3: the MySQL index-lookup logic bug found by QPG (via TLP)."""

from repro.dialects import create_dialect
from repro.sqlparser import parse_one
from repro.testing import FaultyDialect, bugs_for, check_tlp


def _listing3():
    dialect = FaultyDialect(
        create_dialect("mysql"), logic_bugs=bugs_for("mysql", "logic"), trigger_rate=1
    )
    dialect.execute("CREATE TABLE t0 (c0 INT, c1 INT)")
    dialect.execute("INSERT INTO t0 (c1, c0) VALUES (0, 1)")
    dialect.execute(
        "INSERT INTO t0 (c1, c0) VALUES " + ", ".join(f"({i % 3}, {i})" for i in range(2, 30))
    )
    dialect.execute("INSERT INTO t0 (c1, c0) VALUES (NULL, 30), (NULL, 31)")
    dialect.execute("CREATE INDEX i0 ON t0(c1)")
    dialect.analyze_tables()
    predicate = parse_one("SELECT * FROM t0 WHERE t0.c1 IN (GREATEST(0.1, 0.2))").body.where
    return check_tlp(dialect, "t0", predicate)


def test_listing3_mysql_bug(benchmark):
    result = benchmark(_listing3)
    benchmark.extra_info["partition_queries"] = list(result.partition_queries)
    # The fault-injected MySQL returns an inconsistent partitioned result —
    # the class of wrong-result bug reported as MySQL #113302.
    assert not result.passed
    assert result.base_count != result.partition_count or result.message
