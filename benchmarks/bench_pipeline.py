"""E-PIPE — pipeline throughput: batched ingestion and fingerprint identity.

Not a table in the paper, but the scale-out characteristics the pipeline
layer exists for: how much faster a duplicated corpus ingests through
``ingest_batch`` (source dedup + cached conversion) than one plan at a time,
and how much faster fingerprint-based plan identity is than a deep tree
comparison once fingerprints are cached.
"""

import time

from repro.converters import ConverterHub
from repro.core.compare import plans_equal
from repro.dialects import create_dialect
from repro.pipeline import PlanIngestService, PlanSource

SETUP = [
    "CREATE TABLE t0 (c0 INT, c1 INT)",
    "CREATE TABLE t1 (c0 INT)",
    "INSERT INTO t0 (c0, c1) VALUES " + ", ".join(f"({i}, {i % 9})" for i in range(1, 301)),
    "INSERT INTO t1 (c0) VALUES " + ", ".join(f"({i})" for i in range(1, 61)),
]

#: Distinct query shapes; the corpus repeats each until it has 1000 sources.
QUERIES = [
    f"SELECT t1.c0, COUNT(*) FROM t0 JOIN t1 ON t0.c0 = t1.c0 "
    f"WHERE t0.c1 < {bound} GROUP BY t1.c0 ORDER BY t1.c0 LIMIT {limit}"
    for bound in (2, 5, 7)
    for limit in (5, 10)
] + [
    f"SELECT c0 FROM t0 WHERE c1 = {value} ORDER BY c0" for value in range(4)
]

CORPUS_SIZE = 1000


def _raw_corpus():
    dialect = create_dialect("postgresql")
    for statement in SETUP:
        dialect.execute(statement)
    dialect.analyze_tables()
    # Distinct queries can still explain to byte-identical raw plans, so
    # dedupe by text: the invariant under test is per unique *source text*.
    unique = list(dict.fromkeys(dialect.explain(query, format="json").text for query in QUERIES))
    return [unique[index % len(unique)] for index in range(CORPUS_SIZE)], len(unique)


def _sources(raws):
    return [PlanSource("postgresql", raw, "json") for raw in raws]


def test_ingest_one_at_a_time(benchmark):
    """Baseline: 1000 single-plan ingests against a cold service."""
    raws, unique_count = _raw_corpus()

    def ingest_singles():
        service = PlanIngestService(hub=ConverterHub())
        for source in _sources(raws):
            service.ingest(source)
        return service

    service = benchmark(ingest_singles)
    assert service.stats.sources == CORPUS_SIZE
    # Even one at a time, the hub's conversion cache parses each unique
    # source text exactly once.
    assert service.stats.conversions == unique_count
    benchmark.extra_info["service_stats"] = service.stats.to_dict()


def test_ingest_batched(benchmark):
    """ingest_batch: source dedup before conversion, one parse per text."""
    raws, unique_count = _raw_corpus()

    def ingest_batch():
        service = PlanIngestService(hub=ConverterHub())
        report = service.ingest_batch(_sources(raws))
        return service, report

    service, report = benchmark(ingest_batch)
    assert len(report.entries) == CORPUS_SIZE
    # The acceptance invariant: conversions only for unique source texts,
    # everything else observable as cache hits in the service stats.
    assert report.conversions == unique_count
    assert report.cache_hits == CORPUS_SIZE - unique_count
    assert service.stats.cache_hits == CORPUS_SIZE - unique_count
    assert report.unique_fingerprints <= unique_count
    benchmark.extra_info["report"] = {
        "conversions": report.conversions,
        "cache_hits": report.cache_hits,
        "unique_fingerprints": report.unique_fingerprints,
        "throughput_plans_per_s": round(report.throughput, 1),
    }


def _large_plan_pair():
    """Two deep-equal plans large enough for deep comparison to hurt."""
    raws, _ = _raw_corpus()
    hub = ConverterHub()
    base = hub.convert("postgresql", raws[0], "json")

    def build():
        # A wide plan: one trunk fanning out to 100 copies of the base tree
        # (wide rather than deep so recursive comparison stays in bounds).
        trunk = base.root.copy()
        trunk.children.clear()
        for _ in range(100):
            trunk.children.append(base.root.copy())
        plan = base.copy()
        plan.root = trunk
        plan.invalidate_fingerprints()
        return plan

    return build(), build()


def measure_fingerprint_speedup(iterations=2000):
    """Time repeated fingerprint equality vs. deep tree comparison."""
    left, right = _large_plan_pair()
    assert left == right  # sanity: the pair really is deep-equal
    plans_equal(left, right)  # warm the fingerprint caches

    started = time.perf_counter()
    for _ in range(iterations):
        assert plans_equal(left, right)
    fingerprint_seconds = time.perf_counter() - started

    deep_iterations = max(iterations // 100, 10)
    started = time.perf_counter()
    for _ in range(deep_iterations):
        assert left == right
    deep_seconds = (time.perf_counter() - started) * (iterations / deep_iterations)

    return {
        "iterations": iterations,
        "node_count": left.node_count(),
        "fingerprint_seconds": fingerprint_seconds,
        "deep_compare_seconds": deep_seconds,
        "speedup": deep_seconds / fingerprint_seconds,
    }


def test_fingerprint_equality_speedup(benchmark):
    """Fingerprint identity must beat deep comparison by >= 10x."""
    left, right = _large_plan_pair()
    plans_equal(left, right)
    assert benchmark(plans_equal, left, right)
    measured = measure_fingerprint_speedup()
    benchmark.extra_info["speedup"] = measured
    assert measured["speedup"] >= 10.0, measured
