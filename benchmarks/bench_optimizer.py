"""O-OPT — cost-based multi-join optimization vs the as-written plan oracle.

PR 8 gave the planner a real optimization phase: WHERE conjuncts sink below
joins to their minimal scope, multi-way inner joins are reordered by a
DP/memo enumeration over the cost model (fed by per-column NDV statistics),
and every operator carries a statically proven intermediate-size bound that
caps estimates, prunes the memo, and doubles as an EXPLAIN ANALYZE oracle.
``optimize_joins=False`` keeps the as-written syntactic plan — the oracle
mode this benchmark measures against:

* **Chain-join microbench** — a five-table chain equi-join written in a
  deliberately bad FROM order (no two adjacent FROM items share a join
  predicate).  As-written, that plans as a cascade of Cartesian products
  with one filter on top; optimized, the DP enumeration recovers the chain
  order and every intermediate stays at table size.  Acceptance: ≥ 50x,
  identical results.
* **Corpus equivalence** — the generator corpus executed under both
  toggles must return identical row multisets (order may differ: join
  order is not an output contract without ORDER BY).
* **Campaign equivalence** — a two-DBMS campaign under both toggles must
  produce byte-identical Table V rows; coverage may legitimately differ
  (the optimizer changes plan shapes, which is QPG's currency).
* **Bound oracle** — EXPLAIN ANALYZE on the chain join must report zero
  intermediate-size-bound violations: the proven bounds hold at runtime.
"""

import time

from repro.dialects import create_dialect
from repro.testing.campaign import TestingCampaign
from repro.testing.generator import GeneratorConfig, RandomQueryGenerator

#: The chain FROM order is shuffled so that as-written planning sees no
#: usable join predicate until the filter above the full Cartesian product.
CHAIN_QUERY = (
    "SELECT COUNT(*) FROM t1, t3, t5, t2, t4"
    " WHERE t1.k = t2.k AND t2.k = t3.k AND t3.k = t4.k AND t4.k = t5.k"
)

#: A row-returning variant with a total order, for exact result comparison.
CHAIN_ROWS_QUERY = (
    "SELECT t1.v, t3.v, t5.v FROM t1, t3, t5, t2, t4"
    " WHERE t1.k = t2.k AND t2.k = t3.k AND t3.k = t4.k AND t4.k = t5.k"
    " ORDER BY t1.v"
)


def _chain_dialect(rows: int, optimize_joins: bool):
    dialect = create_dialect("postgresql", optimize_joins=optimize_joins)
    for table in range(1, 6):
        dialect.execute(f"CREATE TABLE t{table} (k INT, v INT)")
        values = ", ".join(f"({value}, {value * table})" for value in range(rows))
        dialect.execute(f"INSERT INTO t{table} (k, v) VALUES {values}")
    dialect.analyze_tables()
    return dialect


def measure_chain_join(rows: int = 10, repeats: int = 3) -> dict:
    """Optimized vs as-written timings for the five-table chain join."""
    timings = {}
    counts = {}
    ordered = {}
    for label, optimize_joins in (("optimized", True), ("as_written", False)):
        dialect = _chain_dialect(rows, optimize_joins)
        best = None
        for _ in range(repeats):
            started = time.perf_counter()
            result = dialect.execute(CHAIN_QUERY)
            elapsed = time.perf_counter() - started
            if best is None or elapsed < best:
                best = elapsed
        timings[label] = best
        counts[label] = result[0]["COUNT(*)"]
        ordered[label] = dialect.execute(CHAIN_ROWS_QUERY)
    return {
        "rows_per_table": rows,
        "tables": 5,
        "repeats": repeats,
        "query": CHAIN_QUERY,
        "optimized_seconds": timings["optimized"],
        "as_written_seconds": timings["as_written"],
        "speedup": timings["as_written"] / timings["optimized"]
        if timings["optimized"]
        else 0.0,
        "count": counts["optimized"],
        "results_identical": (
            counts["optimized"] == counts["as_written"]
            and ordered["optimized"] == ordered["as_written"]
        ),
    }


def measure_bound_oracle(rows: int = 10) -> dict:
    """EXPLAIN ANALYZE the chain join: proven bounds must hold at runtime."""
    dialect = _chain_dialect(rows, optimize_joins=True)
    output = dialect.explain(CHAIN_QUERY, analyze=True)
    return {
        "query": CHAIN_QUERY,
        "violations": list(output.bound_violations),
        "no_violations": not output.bound_violations,
    }


def measure_corpus_equivalence(seed: int = 1, count: int = 120) -> dict:
    """The generator corpus under both toggles: identical row multisets.

    Join reordering may permute unordered output, so rows are compared as
    sorted ``repr`` multisets — exact values, order-insensitive.  Queries
    that error must error under both toggles.
    """
    config = GeneratorConfig(max_tables=2)
    generator = RandomQueryGenerator(seed=seed, config=config)
    statements = generator.schema_statements()
    queries = [generator.select_query() for _ in range(count)]
    dialects = {}
    for optimize_joins in (True, False):
        dialect = create_dialect("postgresql", optimize_joins=optimize_joins)
        for statement in statements:
            try:
                dialect.execute(statement)
            except Exception:
                continue
        dialect.analyze_tables()
        dialects[optimize_joins] = dialect
    executed = 0
    mismatches = 0
    for query in queries:
        outcomes = {}
        for optimize_joins, dialect in dialects.items():
            try:
                rows = dialect.execute(query)
                outcomes[optimize_joins] = sorted(repr(row) for row in rows)
            except Exception as error:
                outcomes[optimize_joins] = ("error", type(error).__name__)
        executed += 1
        if outcomes[True] != outcomes[False]:
            mismatches += 1
    return {
        "seed": seed,
        "queries": executed,
        "mismatches": mismatches,
        "identical": mismatches == 0,
    }


def measure_campaign_equivalence(queries_per_dbms: int = 25, cert_pairs: int = 8) -> dict:
    """Campaigns under both toggles: Table V must coincide byte-for-byte.

    Coverage is *expected* to differ — the optimizer changes plan shapes,
    and new shapes are exactly what QPG's coverage walk rewards — so only
    the sizes are recorded; the reports are the enforced equivalence.
    """
    results = {}
    for optimize_joins in (True, False):
        campaign = TestingCampaign(
            dbms_names=["postgresql", "mysql"],
            queries_per_dbms=queries_per_dbms,
            cert_pairs_per_dbms=cert_pairs,
            bound_checks_per_dbms=5,
            optimize_joins=optimize_joins,
        )
        results[optimize_joins] = campaign.run()
    return {
        "queries_per_dbms": queries_per_dbms,
        "cert_pairs_per_dbms": cert_pairs,
        "unique_plans_optimized": results[True].unique_plans,
        "unique_plans_as_written": results[False].unique_plans,
        "bound_queries_checked": results[True].bound_queries_checked,
        "reports_identical": (
            results[True].table5_rows() == results[False].table5_rows()
        ),
    }


def collect_snapshot(quick: bool = False) -> dict:
    """The BENCH_optimizer.json payload."""
    if quick:
        chain = measure_chain_join(rows=6, repeats=1)
        corpus = measure_corpus_equivalence(count=40)
        campaign = measure_campaign_equivalence(queries_per_dbms=8, cert_pairs=3)
    else:
        chain = measure_chain_join()
        corpus = measure_corpus_equivalence()
        campaign = measure_campaign_equivalence()
    bound = measure_bound_oracle()
    return {
        "benchmark": "optimizer",
        "quick": quick,
        "chain_join": chain,
        "bound_oracle": bound,
        "corpus_equivalence": corpus,
        "campaign_equivalence": campaign,
        "tracked": {
            "chain_join_speedup": chain["speedup"],
        },
        "invariants": {
            # Absolute wall-clock ratios are stable here (the as-written
            # plan does strictly more algorithmic work), but the quick
            # mode's shrunken tables leave too little Cartesian volume for
            # a reliable 50x reading, so only the full run enforces it.
            "chain_join_at_least_50x": True if quick else chain["speedup"] >= 50.0,
            "chain_results_identical": chain["results_identical"],
            "corpus_results_identical": corpus["identical"],
            "campaign_reports_identical": campaign["reports_identical"],
            "no_bound_violations": bound["no_violations"],
        },
    }


# -- pytest entry points (the driver's --suite mode) --------------------------


def test_chain_join_identical_results():
    chain = measure_chain_join(rows=5, repeats=1)
    assert chain["results_identical"]


def test_chain_join_bounds_hold():
    assert measure_bound_oracle(rows=5)["no_violations"]


def test_corpus_toggle_equivalence():
    assert measure_corpus_equivalence(count=30)["identical"]
