"""Ablation benches for the design choices called out in DESIGN.md.

1. QPG fingerprint stability: including Cost/Status properties in the
   fingerprint explodes the number of "distinct" plans.
2. Access-path selection: disabling index scans changes plan shape and cost.
3. Join ordering: dynamic programming vs the greedy fallback.
"""

from repro.converters import converter_for
from repro.core.compare import UNSTABLE_PROPERTY_CATEGORIES, structural_fingerprint
from repro.dialects import create_dialect
from repro.optimizer import OpKind, Planner, PlannerOptions
from repro.sqlparser import parse_one


def _loaded_postgres():
    dialect = create_dialect("postgresql")
    dialect.execute("CREATE TABLE t0 (c0 INT PRIMARY KEY, c1 INT)")
    dialect.execute("CREATE TABLE t1 (c0 INT, c1 INT)")
    dialect.execute("CREATE TABLE t2 (c0 INT, c1 INT)")
    for table in ("t0", "t1", "t2"):
        dialect.execute(
            f"INSERT INTO {table} (c0, c1) VALUES " + ", ".join(f"({i}, {i % 11})" for i in range(1, 201))
        )
    dialect.analyze_tables()
    return dialect


def test_ablation_fingerprint_stability(benchmark):
    """Fingerprints that include unstable properties see far more 'new' plans."""
    dialect = _loaded_postgres()
    converter = converter_for("postgresql")
    queries = [f"SELECT * FROM t1 WHERE c1 < {threshold}" for threshold in range(1, 11)]

    def count_unique(include_configuration):
        fingerprints = set()
        for query in queries:
            plan = converter.convert(dialect.explain(query, format="text").text, format="text")
            fingerprints.add(structural_fingerprint(plan, include_configuration=include_configuration))
        return len(fingerprints)

    stable_unique = benchmark(count_unique, False)
    sensitive_unique = count_unique(True)
    benchmark.extra_info["stable_unique_plans"] = stable_unique
    benchmark.extra_info["configuration_sensitive_unique_plans"] = sensitive_unique
    assert stable_unique == 1               # structurally identical plans
    assert sensitive_unique == len(queries)  # every constant looks new
    assert len(UNSTABLE_PROPERTY_CATEGORIES) == 3


def test_ablation_index_scan_selection(benchmark):
    """Disabling index access paths forces sequential scans on the PK lookup."""
    dialect = _loaded_postgres()
    query = parse_one("SELECT * FROM t0 WHERE c0 = 10")

    def plan_with(enable_index):
        planner = Planner(
            dialect.database,
            options=PlannerOptions(enable_index_scan=enable_index, enable_index_only_scan=enable_index),
        )
        return planner.plan_statement(query)

    with_index = benchmark(plan_with, True)
    without_index = plan_with(False)
    assert with_index.find(OpKind.INDEX_SCAN) or with_index.find(OpKind.INDEX_ONLY_SCAN)
    assert not without_index.find(OpKind.INDEX_SCAN)
    assert without_index.find(OpKind.SEQ_SCAN)
    benchmark.extra_info["index_plan_cost"] = round(with_index.cost.total, 2)
    benchmark.extra_info["seqscan_plan_cost"] = round(without_index.cost.total, 2)


def test_ablation_join_ordering(benchmark):
    """Greedy join ordering (dp_threshold=1) must not beat dynamic programming."""
    dialect = _loaded_postgres()
    query = parse_one(
        "SELECT t0.c0 FROM t0 JOIN t1 ON t0.c0 = t1.c0 JOIN t2 ON t1.c1 = t2.c1 WHERE t2.c0 < 50"
    )

    def plan_cost(dp_threshold):
        planner = Planner(dialect.database, options=PlannerOptions(dp_threshold=dp_threshold))
        return planner.plan_statement(query).cost.total

    dp_cost = benchmark(plan_cost, 8)
    greedy_cost = plan_cost(1)
    benchmark.extra_info["dp_cost"] = round(dp_cost, 2)
    benchmark.extra_info["greedy_cost"] = round(greedy_cost, 2)
    assert dp_cost <= greedy_cost * 1.001
