"""Shared fixtures for the benchmark harness.

Every benchmark module regenerates one table or figure of the paper and
attaches the regenerated rows/series to ``benchmark.extra_info`` so that the
numbers appear in the pytest-benchmark JSON output alongside the timings.
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

import pytest

from repro.benchmarking import collect_tpch_plans

#: Scale factor used across benches; small enough for CI, large enough for shape.
BENCH_SCALE = 0.3


@pytest.fixture(scope="session")
def tpch_plans():
    """TPC-H unified plans for the five JSON-capable DBMSs (reused by benches)."""
    return collect_tpch_plans(scale=BENCH_SCALE)
