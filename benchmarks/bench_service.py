"""Service-layer benchmarks: concurrent clients against the query service.

Four measurements feed ``BENCH_service.json``:

* **Concurrent read throughput** — one client executing a SELECT workload
  serially vs eight concurrent clients sharing the same total workload,
  with p50/p99 per-statement latency.  The concurrent run uses
  ``read_dispatch="process"`` (worker processes with replica databases), so
  on a multi-core host the statements genuinely overlap.  The
  ``concurrent_read_speedup_at_least_2_5x`` floor is judged only where it
  is judgeable — at least four CPUs and the full-size corpus; gated hosts
  still record the measured speedup (``scaling_gated``), exactly like
  ``BENCH_parallel.json``.
* **Isolation probe** — a writer flips an entire table between consistent
  states while readers scan it; every read must observe one state, never a
  mixture (``isolation_reads_consistent``, enforced everywhere).
* **DDL linearizability + tenant leakage probe** — sessions churn
  create/insert/select/drop cycles on private tables while two tenants use
  the same table name with different contents; no statement may fail
  unexpectedly and no session may ever see the other tenant's rows
  (``ddl_linearizable`` / ``zero_cross_tenant_leakage``, enforced).
* **Campaign equivalence** — a small :class:`TestingCampaign` through a
  loopback service vs direct dialects: coverage, counters, and Table V must
  be byte-identical (``campaign_through_service_identical``, enforced).
"""

from __future__ import annotations

import itertools
import json
import os
import sys
import threading
import time

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.service import QueryService, ServiceClient, ServiceDialect
from repro.testing.campaign import TestingCampaign

#: The acceptance floor: at least this many concurrent clients.
CONCURRENT_CLIENTS = 8

_READ_QUERIES = [
    "SELECT a, b FROM bench WHERE a > 40",
    "SELECT a, COUNT(*) AS n FROM bench WHERE b IS NOT NULL GROUP BY a ORDER BY a",
    "SELECT bench.a, dim.v FROM bench JOIN dim ON bench.a = dim.k WHERE bench.c > 50.0",
    "SELECT a, c FROM bench WHERE b < 11 ORDER BY c DESC",
]


def _seed_tables(session, rows: int) -> None:
    session.execute("CREATE TABLE bench (a INT, b INT, c REAL)")
    values = ", ".join(
        f"({i % 89}, {f'{(i * 3) % 17}' if i % 13 else 'NULL'}, {float(i) * 0.25})"
        for i in range(rows)
    )
    session.execute(f"INSERT INTO bench VALUES {values}")
    session.execute("CREATE TABLE dim (k INT, v INT)")
    dim_values = ", ".join(f"({i % 89}, {i})" for i in range(rows // 2))
    session.execute(f"INSERT INTO dim VALUES {dim_values}")
    session.analyze_tables()


def _percentile(samples, fraction: float) -> float:
    ordered = sorted(samples)
    if not ordered:
        return 0.0
    index = min(len(ordered) - 1, max(0, round(fraction * (len(ordered) - 1))))
    return ordered[index]


def measure_read_throughput(quick: bool = False) -> dict:
    """Single-client serial vs eight concurrent clients, same total work."""
    rows = 400 if quick else 2000
    total_ops = 48 if quick else 240
    per_client = total_ops // CONCURRENT_CLIENTS
    cpus = os.cpu_count() or 1
    with QueryService(
        max_workers=CONCURRENT_CLIENTS,
        read_dispatch="process",
        process_workers=min(CONCURRENT_CLIENTS, max(cpus, 2)),
    ) as service:
        with ServiceClient(service.address) as seed_client:
            seed_session = seed_client.open_session("postgresql", tenant="bench")
            _seed_tables(seed_session, rows)

            # Warm the replicas (first statement per worker pays the
            # catalog resync) so both measurements see steady state.
            for _ in range(CONCURRENT_CLIENTS):
                seed_session.execute(_READ_QUERIES[0])

            serial_latencies = []
            started = time.perf_counter()
            for op in range(total_ops):
                begun = time.perf_counter()
                seed_session.execute(_READ_QUERIES[op % len(_READ_QUERIES)])
                serial_latencies.append((time.perf_counter() - begun) * 1000.0)
            serial_seconds = time.perf_counter() - started

        latencies_per_client = [[] for _ in range(CONCURRENT_CLIENTS)]
        errors = []

        def client_main(position: int) -> None:
            try:
                with ServiceClient(service.address) as client:
                    session = client.open_session("postgresql", tenant="bench")
                    for op in range(per_client):
                        begun = time.perf_counter()
                        session.execute(_READ_QUERIES[op % len(_READ_QUERIES)])
                        latencies_per_client[position].append(
                            (time.perf_counter() - begun) * 1000.0
                        )
            except Exception as exc:  # noqa: BLE001 - recorded, fails the flag
                errors.append(repr(exc))

        threads = [
            threading.Thread(target=client_main, args=(position,))
            for position in range(CONCURRENT_CLIENTS)
        ]
        started = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        concurrent_seconds = time.perf_counter() - started

    concurrent_latencies = [
        sample for samples in latencies_per_client for sample in samples
    ]
    serial_throughput = total_ops / serial_seconds if serial_seconds else 0.0
    concurrent_throughput = (
        len(concurrent_latencies) / concurrent_seconds if concurrent_seconds else 0.0
    )
    return {
        "rows": rows,
        "total_ops": total_ops,
        "clients": CONCURRENT_CLIENTS,
        "dispatch": "process",
        "errors": errors,
        "serial": {
            "seconds": serial_seconds,
            "ops_per_second": serial_throughput,
            "p50_ms": _percentile(serial_latencies, 0.50),
            "p99_ms": _percentile(serial_latencies, 0.99),
        },
        "concurrent": {
            "seconds": concurrent_seconds,
            "ops_per_second": concurrent_throughput,
            "p50_ms": _percentile(concurrent_latencies, 0.50),
            "p99_ms": _percentile(concurrent_latencies, 0.99),
        },
        "speedup": (
            concurrent_throughput / serial_throughput if serial_throughput else 0.0
        ),
        "all_clients_completed": not errors
        and len(concurrent_latencies) == per_client * CONCURRENT_CLIENTS,
    }


def measure_isolation(quick: bool = False) -> dict:
    """Readers must never observe a half-applied write (torn state)."""
    rows = 32 if quick else 128
    reads = 40 if quick else 160
    inconsistent = 0
    errors = []
    with QueryService(max_workers=6) as service:
        with ServiceClient(service.address) as writer_client:
            writer = writer_client.open_session("postgresql", tenant="iso")
            writer.execute("CREATE TABLE iso (id INT PRIMARY KEY, val INT)")
            writer.execute(
                "INSERT INTO iso VALUES "
                + ", ".join(f"({i}, 0)" for i in range(rows))
            )
            writer.analyze_tables()

            stop = threading.Event()

            def writer_main() -> None:
                generation = itertools.count(1)
                try:
                    while not stop.is_set():
                        writer.execute(f"UPDATE iso SET val = {next(generation)}")
                except Exception as exc:  # noqa: BLE001
                    errors.append(repr(exc))

            torn_counter = {"count": 0}

            def reader_main() -> None:
                try:
                    with ServiceClient(service.address) as client:
                        session = client.open_session("postgresql", tenant="iso")
                        for _ in range(reads):
                            observed = {
                                row["val"]
                                for row in session.execute("SELECT val FROM iso")
                            }
                            if len(observed) != 1:
                                torn_counter["count"] += 1
                except Exception as exc:  # noqa: BLE001
                    errors.append(repr(exc))
            writer_thread = threading.Thread(target=writer_main)
            reader_threads = [threading.Thread(target=reader_main) for _ in range(3)]
            writer_thread.start()
            for thread in reader_threads:
                thread.start()
            for thread in reader_threads:
                thread.join()
            stop.set()
            writer_thread.join()
            inconsistent = torn_counter["count"]
    return {
        "rows": rows,
        "reads_per_reader": reads,
        "readers": 3,
        "torn_reads": inconsistent,
        "errors": errors,
        "consistent": inconsistent == 0 and not errors,
    }


def measure_ddl_and_leakage(quick: bool = False) -> dict:
    """DDL linearizability churn plus the cross-tenant leakage probe."""
    cycles = 6 if quick else 20
    errors = []
    leaks = 0
    with QueryService(max_workers=8) as service:

        def churn_main(position: int) -> None:
            try:
                with ServiceClient(service.address) as client:
                    session = client.open_session("mysql", tenant="churn")
                    table = f"t{position}"
                    for cycle in range(cycles):
                        session.execute(f"CREATE TABLE {table} (x INT)")
                        session.execute(
                            f"INSERT INTO {table} VALUES ({position}), ({cycle})"
                        )
                        rows = session.execute(f"SELECT x FROM {table} ORDER BY x")
                        if [row["x"] for row in rows] != sorted([position, cycle]):
                            errors.append(f"wrong rows in {table} cycle {cycle}")
                        session.execute(f"DROP TABLE {table}")
            except Exception as exc:  # noqa: BLE001
                errors.append(repr(exc))

        def tenant_main(tenant: str, marker: int, counters: dict) -> None:
            try:
                with ServiceClient(service.address) as client:
                    session = client.open_session("postgresql", tenant=tenant)
                    session.execute("CREATE TABLE shared_name (who INT)")
                    session.execute(f"INSERT INTO shared_name VALUES ({marker})")
                    for _ in range(cycles * 2):
                        rows = session.execute("SELECT who FROM shared_name")
                        values = {row["who"] for row in rows}
                        if values != {marker}:
                            counters["leaks"] += 1
            except Exception as exc:  # noqa: BLE001
                errors.append(repr(exc))

        counters = {"leaks": 0}
        threads = [
            threading.Thread(target=churn_main, args=(position,))
            for position in range(4)
        ]
        threads.append(
            threading.Thread(target=tenant_main, args=("tenant-a", 1, counters))
        )
        threads.append(
            threading.Thread(target=tenant_main, args=("tenant-b", 2, counters))
        )
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        leaks = counters["leaks"]
    return {
        "cycles": cycles,
        "churn_sessions": 4,
        "errors": errors,
        "leaks": leaks,
        "ddl_linearizable": not errors,
        "zero_leakage": leaks == 0,
    }


def measure_campaign_equivalence(quick: bool = False) -> dict:
    """Direct campaign vs campaign through a loopback service."""
    settings = dict(
        seed=7,
        queries_per_dbms=10 if quick else 30,
        cert_pairs_per_dbms=4 if quick else 12,
        bound_checks_per_dbms=2 if quick else 6,
    )
    direct = TestingCampaign(**settings).run()
    with QueryService(max_workers=4) as service:
        clients = []
        counter = itertools.count()

        def factory(dbms_name, options):
            client = ServiceClient(service.address)
            clients.append(client)
            # One tenant per dialect creation mirrors the direct campaign's
            # fresh-database-per-round semantics.
            session = client.open_session(
                dbms_name, tenant=f"round-{next(counter)}", options=options
            )
            return ServiceDialect(session)

        served = TestingCampaign(**settings, dialect_factory=factory).run()
        for client in clients:
            client.close()
    identical = (
        direct.plan_fingerprints == served.plan_fingerprints
        and direct.unique_plans == served.unique_plans
        and direct.queries_generated == served.queries_generated
        and direct.cert_pairs_checked == served.cert_pairs_checked
        and direct.bound_queries_checked == served.bound_queries_checked
        and json.dumps(direct.table5_rows(), sort_keys=True)
        == json.dumps(served.table5_rows(), sort_keys=True)
    )
    return {
        "settings": settings,
        "direct": {
            "unique_plans": direct.unique_plans,
            "reports": len(direct.reports),
        },
        "served": {
            "unique_plans": served.unique_plans,
            "reports": len(served.reports),
        },
        "identical": identical,
    }


def collect_snapshot(quick: bool = False) -> dict:
    """The BENCH_service.json payload."""
    cpus = os.cpu_count() or 1
    throughput = measure_read_throughput(quick=quick)
    isolation = measure_isolation(quick=quick)
    ddl = measure_ddl_and_leakage(quick=quick)
    campaign = measure_campaign_equivalence(quick=quick)
    # The speedup floor is judged only where it is judgeable: four CPUs for
    # the process read pool to actually overlap statements, and the
    # full-size corpus (--quick runs are dominated by connection and replica
    # warm-up).  Correctness flags are never gated.
    scaling_judgeable = cpus >= 4 and not quick
    return {
        "benchmark": "service",
        "quick": quick,
        "cpus": cpus,
        "concurrent_clients": throughput["clients"],
        "read_throughput": throughput,
        "isolation": isolation,
        "ddl_and_leakage": ddl,
        "campaign_equivalence": campaign,
        "invariants": {
            "isolation_reads_consistent": isolation["consistent"],
            "ddl_linearizable": ddl["ddl_linearizable"],
            "zero_cross_tenant_leakage": ddl["zero_leakage"],
            "campaign_through_service_identical": campaign["identical"],
            "all_clients_completed": throughput["all_clients_completed"],
            "concurrent_read_speedup_at_least_2_5x": (
                throughput["speedup"] >= 2.5 if scaling_judgeable else True
            ),
            "scaling_gated": not scaling_judgeable,
        },
    }


# -- pytest-benchmark entry points (the driver's --suite mode) ----------------


def test_service_read_roundtrip(benchmark):
    with QueryService(max_workers=4) as service:
        with ServiceClient(service.address) as client:
            session = client.open_session("postgresql", tenant="suite")
            _seed_tables(session, 200)

            def roundtrip():
                return session.execute(_READ_QUERIES[0])

            rows = benchmark(roundtrip)
            assert rows


def test_service_isolation_probe():
    snapshot = measure_isolation(quick=True)
    assert snapshot["consistent"]
