"""E-CAMP — end-to-end campaign throughput: the cached query lifecycle.

PR 1 made plan identity O(1) and PR 2 made coverage durable; after that the
remaining campaign wall-clock lives in the query lifecycle itself — every
generated query is lexed, parsed, planned, explained, converted, and
executed.  PR 3 caches the pure stages (regex lexer, AST + plan caches keyed
on the catalog version, conversion-cache fast path in QPG) and this
benchmark measures what that buys end to end:

* **QPG loop, cold vs warm** — the QPG per-query lifecycle
  (EXPLAIN → ingest/fingerprint → execute) over a generated corpus against a
  stable database.  The *cold* pass starts with every cache empty; the
  *warm* pass repeats the corpus with the prepared-query cache, the
  conversion cache, and the coverage index hot — the steady state of a
  converged campaign round, where QPG re-issues the same query shapes.
  Acceptance: warm throughput ≥ 2x cold.
* **Per-stage profile** — seconds spent in lex, parse, plan, execute,
  explain (shape + serialize), and convert over the same corpus, measured
  with caching disabled, so regressions in any one stage are attributable.
* **Cache-equivalence** — two small but complete campaigns (QPG + TLP +
  CERT with seeded faults), one with the prepared cache on and one with it
  off, must produce identical coverage sets and identical Table V rows:
  the cache is semantically invisible.  (The same property is asserted,
  more thoroughly, in tests/test_prepared_cache.py.)
"""

import time

from repro.converters import ConverterHub
from repro.core.compare import structural_fingerprint
from repro.dialects import create_dialect
from repro.pipeline import PlanIngestService, PlanSource
from repro.sqlparser.lexer import tokenize
from repro.sqlparser.parser import parse_sql
from repro.testing.campaign import TestingCampaign
from repro.testing.generator import GeneratorConfig, RandomQueryGenerator


def _build_dialect(seed: int, prepared_cache: bool = True):
    """A PostgreSQL dialect seeded with the generator's schema, stats fresh."""
    generator = RandomQueryGenerator(seed=seed, config=GeneratorConfig(max_tables=2))
    dialect = create_dialect("postgresql")
    dialect.prepared.enabled = prepared_cache
    for statement in generator.schema_statements():
        try:
            dialect.execute(statement)
        except Exception:
            continue
    dialect.analyze_tables()
    return dialect, generator


def build_corpus(seed: int = 1, count: int = 150):
    """*count* generated SELECT queries over the campaign schema."""
    _, generator = _build_dialect(seed)
    return [generator.select_query() for _ in range(count)]


def _qpg_pass(dialect, service, queries):
    """One QPG-lifecycle pass: EXPLAIN → ingest → fingerprint → execute.

    Returns ``(elapsed_seconds, executed_count, coverage_set)``.  Queries
    the dialect rejects are skipped, exactly as the QPG loop skips them.
    """
    seen = set()
    executed = 0
    started = time.perf_counter()
    for query in queries:
        try:
            output = dialect.explain(query, format="json")
            entry = service.ingest(
                PlanSource("postgresql", output.text, "json", query=query)
            )
            if entry.plan is not None:
                seen.add(structural_fingerprint(entry.plan))
            dialect.execute(query)
            executed += 1
        except Exception:
            continue
    return time.perf_counter() - started, executed, seen


def measure_qpg_loop(seed: int = 1, count: int = 150, warm_repeats: int = 3) -> dict:
    """Cold-cache vs warm-cache throughput of the QPG lifecycle loop."""
    queries = build_corpus(seed, count)
    dialect, _ = _build_dialect(seed)
    service = PlanIngestService(hub=ConverterHub())

    cold_seconds, executed, cold_seen = _qpg_pass(dialect, service, queries)
    warm_seconds = None
    for _ in range(warm_repeats):
        elapsed, _, warm_seen = _qpg_pass(dialect, service, queries)
        if warm_seconds is None or elapsed < warm_seconds:
            warm_seconds = elapsed

    prepared = dialect.prepared
    return {
        "corpus": {"queries": len(queries), "executed": executed, "seed": seed},
        "cold": {
            "seconds": cold_seconds,
            "queries_per_second": executed / cold_seconds if cold_seconds else 0.0,
        },
        "warm": {
            "seconds": warm_seconds,
            "queries_per_second": executed / warm_seconds if warm_seconds else 0.0,
        },
        "warm_speedup": cold_seconds / warm_seconds if warm_seconds else 0.0,
        "coverage_stable": cold_seen == warm_seen,
        "unique_plans": len(cold_seen),
        "prepared_cache": {
            "ast": prepared.ast_stats.to_dict(),
            "plan": prepared.plan_stats.to_dict(),
        },
        "conversion_cache": service.hub.cache_snapshot().to_dict(),
    }


def measure_stage_profile(seed: int = 1, count: int = 150) -> dict:
    """Uncached per-stage seconds over the corpus (where the time goes)."""
    queries = build_corpus(seed, count)
    dialect, _ = _build_dialect(seed, prepared_cache=False)
    hub = ConverterHub()

    started = time.perf_counter()
    for query in queries:
        tokenize(query)
    lex_seconds = time.perf_counter() - started

    started = time.perf_counter()
    parsed = [parse_sql(query)[0] for query in queries]
    parse_seconds = time.perf_counter() - started

    started = time.perf_counter()
    plans = [dialect.planner.plan_statement(statement) for statement in parsed]
    plan_seconds = time.perf_counter() - started

    started = time.perf_counter()
    for plan in plans:
        try:
            dialect.executor.execute(plan)
        except Exception:
            continue
    execute_seconds = time.perf_counter() - started

    started = time.perf_counter()
    raws = []
    for plan in plans:
        raw = dialect.shape_plan(plan)
        raws.append(dialect.serialize_plan(raw, "json"))
    explain_seconds = time.perf_counter() - started

    started = time.perf_counter()
    for raw in raws:
        hub.convert("postgresql", raw, "json", use_cache=False)
    convert_seconds = time.perf_counter() - started

    stages = {
        "lex": lex_seconds,
        "parse": parse_seconds,
        "plan": plan_seconds,
        "execute": execute_seconds,
        "explain": explain_seconds,
        "convert": convert_seconds,
    }
    # Fractions cover every measured stage (including the standalone lex
    # pass), so they sum to 1 over exactly the keys reported in "seconds".
    # Note parse re-tokenizes internally, so lex time is also a lower bound
    # on a slice of parse time — the profile attributes stages, not a
    # partition of wall-clock.
    total = sum(stages.values())
    return {
        "corpus": {"queries": len(queries), "seed": seed},
        "seconds": stages,
        "fractions": {
            name: (value / total if total else 0.0) for name, value in stages.items()
        },
    }


def measure_cache_equivalence(queries_per_dbms: int = 40, cert_pairs: int = 10) -> dict:
    """Cache-on vs cache-off campaigns: coverage and Table V must coincide."""
    results = {}
    timings = {}
    for label, enabled in (("cache_on", True), ("cache_off", False)):
        campaign = TestingCampaign(
            dbms_names=["postgresql", "mysql"],
            queries_per_dbms=queries_per_dbms,
            cert_pairs_per_dbms=cert_pairs,
            prepared_cache=enabled,
        )
        started = time.perf_counter()
        results[label] = campaign.run()
        timings[label] = time.perf_counter() - started
    on, off = results["cache_on"], results["cache_off"]
    return {
        "queries_per_dbms": queries_per_dbms,
        "cert_pairs_per_dbms": cert_pairs,
        "seconds": timings,
        "campaign_speedup": (
            timings["cache_off"] / timings["cache_on"] if timings["cache_on"] else 0.0
        ),
        "coverage_identical": on.plan_fingerprints == off.plan_fingerprints,
        "reports_identical": on.table5_rows() == off.table5_rows(),
        "unique_plans": on.unique_plans,
        "bug_reports": len(on.reports),
    }


def collect_snapshot(quick: bool = False) -> dict:
    """The BENCH_campaign.json payload."""
    if quick:
        loop = measure_qpg_loop(count=60, warm_repeats=1)
        profile = measure_stage_profile(count=60)
        equivalence = measure_cache_equivalence(queries_per_dbms=15, cert_pairs=5)
    else:
        loop = measure_qpg_loop()
        profile = measure_stage_profile()
        equivalence = measure_cache_equivalence()
    return {
        "benchmark": "campaign",
        "quick": quick,
        "qpg_loop": loop,
        "stage_profile": profile,
        "cache_equivalence": equivalence,
        # Frozen pre-PR-3 reference, measured on the same container at the
        # PR-2 commit with the identical loop/corpus (seed=1, 150 queries):
        # informational, since absolute q/s is machine-dependent.  The
        # enforced speedup invariant below is machine-relative instead.
        "pre_pr3_baseline": {
            "cold_queries_per_second": 861,
            "warm_queries_per_second": 1248,
            "note": "steady-state (warm) throughput improved ~3.3x in PR 3",
        },
        "invariants": {
            "warm_at_least_2x_cold": loop["warm_speedup"] >= 2.0,
            "warm_coverage_identical": loop["coverage_stable"],
            "cache_off_coverage_identical": equivalence["coverage_identical"],
            "cache_off_reports_identical": equivalence["reports_identical"],
        },
    }


# -- pytest-benchmark entry points (the driver's --suite mode) ----------------


def test_warm_qpg_loop_speedup(benchmark):
    queries = build_corpus(seed=1, count=40)
    dialect, _ = _build_dialect(seed=1)
    service = PlanIngestService(hub=ConverterHub())
    _, executed, cold_seen = _qpg_pass(dialect, service, queries)

    def warm_pass():
        return _qpg_pass(dialect, service, queries)

    _, warm_executed, warm_seen = benchmark(warm_pass)
    assert warm_executed == executed
    assert warm_seen == cold_seen  # the cache never changes coverage


def test_stage_profile_accounts_all_stages():
    profile = measure_stage_profile(seed=1, count=20)
    assert set(profile["seconds"]) == {
        "lex", "parse", "plan", "execute", "explain", "convert"
    }
    assert all(value >= 0.0 for value in profile["seconds"].values())
    # The fractions cover the same stages as the seconds (lex included)
    # and therefore sum to one over the measured profile.
    assert set(profile["fractions"]) == set(profile["seconds"])
    assert abs(sum(profile["fractions"].values()) - 1.0) < 1e-9
