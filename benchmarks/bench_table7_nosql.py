"""E-T7 — Table VII: YCSB (MongoDB) and WDBench (Neo4j) operation averages."""

from repro.benchmarking import collect_nosql_plans, table7_rows


def _collect():
    return table7_rows(collect_nosql_plans(scale=0.4))


def test_table7_nosql_workloads(benchmark):
    rows = benchmark.pedantic(_collect, rounds=1, iterations=1)
    benchmark.extra_info["table7"] = rows
    by_dbms = {row["DBMS"]: row for row in rows}
    # MongoDB YCSB plans expose no Join and no Combinator/Folder-heavy shapes;
    # Neo4j WDBench plans are dominated by Join (relationship) operations —
    # the same distribution Table VII reports.
    assert by_dbms["mongodb"]["Join"] == 0.0
    assert by_dbms["neo4j"]["Join"] > 0.5
    assert by_dbms["mongodb"]["Sum"] < 5
    assert by_dbms["neo4j"]["Folder"] < 1.0
