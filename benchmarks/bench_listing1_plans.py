"""E-L1 — Listing 1: the PostgreSQL and SQLite serialized plans for the join/union query."""

from repro.converters import converter_for
from repro.dialects import create_dialect

SETUP = [
    "CREATE TABLE t0 (c0 INT)",
    "CREATE TABLE t1 (c0 INT)",
    "CREATE TABLE t2 (c0 INT PRIMARY KEY)",
    "INSERT INTO t0 (c0) VALUES " + ", ".join(f"({i})" for i in range(1, 1001)),
    "INSERT INTO t1 (c0) VALUES " + ", ".join(f"({i})" for i in range(1, 41)),
    "INSERT INTO t2 (c0) VALUES " + ", ".join(f"({i})" for i in range(1, 101)),
]

QUERY = (
    "SELECT t1.c0 FROM t0 INNER JOIN t1 ON t0.c0 = t1.c0 WHERE t0.c0 < 100 "
    "GROUP BY t1.c0 UNION SELECT c0 FROM t2 WHERE c0 < 10"
)


def _listing1():
    outputs = {}
    for name in ("postgresql", "sqlite"):
        dialect = create_dialect(name)
        for statement in SETUP:
            dialect.execute(statement)
        dialect.analyze_tables()
        raw = dialect.explain(QUERY, format="text").text
        outputs[name] = (raw, converter_for(name).convert(raw, format="text"))
    return outputs


def test_listing1_serialized_plans(benchmark):
    outputs = benchmark(_listing1)
    postgresql_raw, postgresql_plan = outputs["postgresql"]
    sqlite_raw, sqlite_plan = outputs["sqlite"]
    benchmark.extra_info["postgresql_plan"] = postgresql_raw.splitlines()[:12]
    benchmark.extra_info["sqlite_plan"] = sqlite_raw.splitlines()[:10]
    # PostgreSQL: aggregate/append structure with a sequential scan on t0 and an
    # index-based access on t2; a plan-level Planning Time property.
    assert "Append" in postgresql_raw and "Seq Scan on t0" in postgresql_raw
    assert "Index Only Scan" in postgresql_raw or "Bitmap" in postgresql_raw
    assert "Planning Time" in postgresql_raw
    # SQLite: compound query with temp B-trees, as in the listing.
    assert "COMPOUND QUERY" in sqlite_raw
    assert "USE TEMP B-TREE FOR GROUP BY" in sqlite_raw
    assert "UNION USING TEMP B-TREE" in sqlite_raw
    # Both convert into unified plans of the same conceptual components even
    # though the representations differ significantly.
    assert postgresql_plan.node_count() >= 6
    assert sqlite_plan.node_count() >= 5
