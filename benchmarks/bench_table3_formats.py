"""E-T3 — Table III: officially supported serialized plan formats.

Besides regenerating the support matrix, the bench verifies that every
simulated dialect actually produces output in each format the matrix claims.
"""

from repro.dialects import RELATIONAL_DIALECTS, create_dialect
from repro.study import FORMAT_SUPPORT, format_counts, format_matrix


def _verify_matrix():
    matrix = format_matrix()
    for name in RELATIONAL_DIALECTS:
        dialect = create_dialect(name)
        dialect.execute("CREATE TABLE t (c INT)")
        dialect.execute("INSERT INTO t (c) VALUES (1), (2)")
        dialect.analyze_tables()
        for format_name in FORMAT_SUPPORT[name]:
            assert dialect.explain("SELECT * FROM t WHERE c = 1", format=format_name).text
    return matrix


def test_table3_formats(benchmark):
    matrix = benchmark(_verify_matrix)
    benchmark.extra_info["table3"] = matrix
    counts = format_counts()
    benchmark.extra_info["format_counts"] = counts
    # Natural formats are more widely supported than structured ones; JSON is
    # the most widely supported structured format (Section III-E).
    assert counts["text"] + counts["graph"] + counts["table"] > counts["json"] + counts["xml"] + counts["yaml"]
    assert counts["json"] >= counts["xml"] >= counts["yaml"]
