"""Parallel-layer benchmarks: sharded campaigns and the morsel engine.

Two measurements feed ``BENCH_parallel.json``:

* **Campaign scaling** — a serial :class:`~repro.testing.campaign.TestingCampaign`
  vs :class:`repro.parallel.ShardedCampaign` with four shards over four
  DBMS rounds.  The merged coverage set and Table V must be byte-identical
  to serial (``sharded_coverage_identical`` / ``sharded_reports_identical``
  are enforced everywhere, always); the ``scaling_at_least_2_5x_on_4_cores``
  speedup floor is judged only where it is judgeable — at least four CPUs,
  a real process pool (no in-process fallback), and the full-size corpus.
  On gated hosts the measured speedup is still recorded.
* **Morsel operator microbench** — the serial vectorized engine vs
  ``executor="parallel"`` on a scan+filter+join workload big enough for
  the exchange to engage.  ``morsel_results_identical`` is enforced
  everywhere: the engine-level pool is GIL-bound Python, so its *speedup*
  is informational, but its *answers* are the determinism contract.
"""

from __future__ import annotations

import os
import sys
import time

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.dialects import create_dialect
from repro.parallel import ShardedCampaign
from repro.testing.campaign import TestingCampaign

#: The scaling corpus: four DBMS rounds so a 4-shard split is total.
DBMS_NAMES = ["postgresql", "mysql", "tidb", "sqlite"]


def _campaign_settings(quick: bool) -> dict:
    return dict(
        dbms_names=DBMS_NAMES,
        seed=7,
        queries_per_dbms=12 if quick else 60,
        cert_pairs_per_dbms=4 if quick else 20,
    )


def measure_campaign_scaling(quick: bool = False, shards: int = 4) -> dict:
    """Serial vs sharded wall-clock, plus the byte-identity checks."""
    settings = _campaign_settings(quick)
    started = time.perf_counter()
    serial = TestingCampaign(**settings).run()
    serial_seconds = time.perf_counter() - started

    sharded_campaign = ShardedCampaign(**settings, shards=shards)
    started = time.perf_counter()
    merged = sharded_campaign.run()
    sharded_seconds = time.perf_counter() - started

    return {
        "settings": settings,
        "shards": shards,
        "serial": {
            "seconds": serial_seconds,
            "rounds": serial.rounds_completed,
            "queries": serial.queries_generated,
        },
        "sharded": {
            "seconds": sharded_seconds,
            "rounds": merged.rounds_completed,
            "queries": merged.queries_generated,
            "pool_active": sharded_campaign.pool_active,
        },
        "speedup": serial_seconds / sharded_seconds if sharded_seconds else 0.0,
        "coverage_identical": (
            merged.plan_fingerprints == serial.plan_fingerprints
            and merged.unique_plans == serial.unique_plans
        ),
        "reports_identical": merged.table5_rows() == serial.table5_rows(),
        "counters_identical": (
            merged.queries_generated == serial.queries_generated
            and merged.cert_pairs_checked == serial.cert_pairs_checked
        ),
    }


_MORSEL_QUERIES = [
    "SELECT a, c FROM big WHERE a > 40 AND b IS NOT NULL",
    "SELECT big.a, dim.v FROM big JOIN dim ON big.a = dim.k WHERE big.c > 50.0",
    "SELECT a, COUNT(*) FROM big WHERE b < 11 GROUP BY a ORDER BY a",
]


def _morsel_dialect(executor: str, rows: int):
    dialect = create_dialect("postgresql")
    dialect.set_executor(executor)
    dialect.execute("CREATE TABLE big (a INT, b INT, c REAL)")
    dialect.database.insert_rows(
        "big",
        [
            {"a": i % 89, "b": (i * 3) % 17 if i % 13 else None, "c": float(i) * 0.25}
            for i in range(rows)
        ],
    )
    dialect.execute("CREATE TABLE dim (k INT, v INT)")
    dialect.database.insert_rows(
        "dim", [{"k": i % 89, "v": i} for i in range(rows // 2)]
    )
    dialect.analyze_tables()
    return dialect


def measure_morsel_operators(quick: bool = False, repeats: int = 3) -> dict:
    """Serial vectorized vs morsel-driven parallel executor."""
    rows = 4000 if quick else 20000
    repeats = 1 if quick else repeats
    timings = {}
    results = {}
    for executor in ("vectorized", "parallel"):
        dialect = _morsel_dialect(executor, rows)
        best = None
        for _ in range(repeats):
            started = time.perf_counter()
            outcome = [dialect.execute(query) for query in _MORSEL_QUERIES]
            elapsed = time.perf_counter() - started
            if best is None or elapsed < best:
                best = elapsed
        timings[executor] = best
        results[executor] = outcome
    return {
        "rows": rows,
        "queries": list(_MORSEL_QUERIES),
        "vectorized": {"seconds": timings["vectorized"]},
        "parallel": {"seconds": timings["parallel"]},
        "speedup": (
            timings["vectorized"] / timings["parallel"]
            if timings["parallel"]
            else 0.0
        ),
        "results_identical": results["vectorized"] == results["parallel"],
    }


def collect_snapshot(quick: bool = False) -> dict:
    """The BENCH_parallel.json payload."""
    cpus = os.cpu_count() or 1
    scaling = measure_campaign_scaling(quick=quick)
    morsel = measure_morsel_operators(quick=quick)
    # The speedup floor is judged only where it is judgeable: four CPUs for
    # four shards, a real process pool behind them (no in-process
    # fallback), and the full-size corpus (--quick rounds are dominated by
    # worker start-up).  Correctness flags are never gated.
    scaling_judgeable = (
        cpus >= 4 and scaling["sharded"]["pool_active"] and not quick
    )
    return {
        "benchmark": "parallel",
        "quick": quick,
        "cpus": cpus,
        "skipped_multicore": cpus < 2,
        "campaign_scaling": scaling,
        "morsel_operators": morsel,
        "invariants": {
            "sharded_coverage_identical": scaling["coverage_identical"],
            "sharded_reports_identical": scaling["reports_identical"],
            "sharded_counters_identical": scaling["counters_identical"],
            "morsel_results_identical": morsel["results_identical"],
            "scaling_at_least_2_5x_on_4_cores": (
                scaling["speedup"] >= 2.5 if scaling_judgeable else True
            ),
            "scaling_gated": not scaling_judgeable,
        },
    }


# -- pytest-benchmark entry points (the driver's --suite mode) ----------------


def test_sharded_campaign_equivalence(benchmark):
    settings = _campaign_settings(quick=True)
    serial = TestingCampaign(**settings).run()

    def sharded_run():
        return ShardedCampaign(**settings, shards=2, parallel=False).run()

    merged = benchmark(sharded_run)
    assert merged.plan_fingerprints == serial.plan_fingerprints
    assert merged.table5_rows() == serial.table5_rows()


def test_morsel_engine_results_identical():
    snapshot = measure_morsel_operators(quick=True)
    assert snapshot["results_identical"]
