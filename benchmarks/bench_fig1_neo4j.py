"""E-F1 — Figure 1: the Neo4j relationship-index-contains-scan plan."""

from repro.converters import converter_for
from repro.core import OperationCategory
from repro.dialects import create_dialect

QUERY = "MATCH ()-[r]->() WHERE r.title ENDS WITH 'developer' RETURN r"


def _figure1_plan():
    dialect = create_dialect("neo4j")
    for i in range(8):
        a = dialect.store.create_node(["Person"], {"name": f"p{i}"})
        b = dialect.store.create_node(["Person"], {"name": f"q{i}"})
        dialect.store.create_relationship(
            a.node_id, "WORKS_WITH", b.node_id, {"title": "developer" if i % 2 else "designer"}
        )
    output = dialect.explain(QUERY, format="text")
    plan = converter_for("neo4j").convert(output.text, format="text")
    return output.text, plan


def test_fig1_neo4j_relationship_plan(benchmark):
    raw, plan = benchmark(_figure1_plan)
    benchmark.extra_info["raw_plan"] = raw.splitlines()[:8]
    names = [node.operation.identifier for node in plan.nodes()]
    assert "Produce Results" in names
    assert "Relationship Scan" in names  # UndirectedRelationshipIndexContainsScan
    scan_nodes = plan.find_operations("Relationship Scan")
    assert scan_nodes[0].operation.category is OperationCategory.JOIN
    assert plan.plan_property_value("Planner") is not None
