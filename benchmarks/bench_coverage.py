"""E-COV — persistent coverage: warm-start ingest and process-pool parsing.

The two scale-out levers PR 2 adds to the pipeline:

* **Warm starts** — a :class:`~repro.pipeline.CoverageStore` persisted by an
  earlier run lets a fresh process (fresh hub, empty conversion cache)
  resolve already-seen raw plans from the source index without parsing at
  all.  The benchmark ingests a duplicate-heavy corpus cold, then re-ingests
  it warm and reports how many conversions the persisted index skipped
  (acceptance: >= 90 %).
* **Process pools** — conversion is CPU-bound pure Python, so threads cannot
  scale it past the GIL; ``executor="process"`` can.  The benchmark parses a
  CPU-heavy batch single-threaded and through the pool and reports the
  speedup.  The pool can only win where hardware parallelism exists, so the
  snapshot records the host's CPU count and the invariant is gated on
  having at least two CPUs (on a single-CPU host the pool's pickling
  overhead is pure loss by construction, not a regression).

Plans here are synthetic PostgreSQL ``EXPLAIN (FORMAT JSON)`` documents:
wide ``Append`` fans over per-leaf filters, large enough that parsing
dominates pickling.
"""

import json
import os
import shutil
import tempfile
import time

from repro.converters import ConverterHub
from repro.pipeline import CoverageStore, PlanIngestService, PlanSource


def heavy_raw(seed: int, nodes: int = 160) -> str:
    """One synthetic CPU-heavy PostgreSQL JSON plan, unique per *seed*."""
    leaves = [
        {
            "Node Type": "Seq Scan",
            "Relation Name": f"t{index}",
            "Alias": f"t{index}",
            "Startup Cost": 0.0,
            "Total Cost": 1.0 + index,
            "Plan Rows": 10 + index,
            "Plan Width": 8,
            "Filter": f"(c{seed} < {index})",
            "Output": f"c{index}",
        }
        for index in range(nodes)
    ]
    plan = {
        "Node Type": "Append",
        "Startup Cost": 0.0,
        "Total Cost": float(nodes),
        "Plan Rows": 100 * nodes,
        "Plan Width": 8,
        "Plans": leaves,
    }
    return json.dumps([{"Plan": plan, "Planning Time": 0.1}])


def duplicate_corpus(unique: int, duplicates: int, nodes: int = 160):
    """*unique* distinct heavy plans, each repeated *duplicates* times."""
    raws = [heavy_raw(seed, nodes) for seed in range(unique)]
    return [
        PlanSource("postgresql", raws[index % unique], "json")
        for index in range(unique * duplicates)
    ]


def unique_corpus(count: int, nodes: int = 160):
    return [
        PlanSource("postgresql", heavy_raw(seed, nodes), "json")
        for seed in range(count)
    ]


def _best_of(repeats, run):
    """Run *run* (which returns ``(seconds, payload)``) and keep the best.

    The callables time their measured region themselves, so setup/teardown
    (store directories, checkpoints) is never billed to the measurement.
    """
    best = None
    payload = None
    for _ in range(repeats):
        elapsed, result = run()
        if best is None or elapsed < best:
            best, payload = elapsed, result
    return best, payload


def _timed_ingest(service, corpus):
    started = time.perf_counter()
    report = service.ingest_batch(corpus)
    return time.perf_counter() - started, report


def measure_warm_start(unique=30, duplicates=12, nodes=160, repeats=3) -> dict:
    """Cold ingest persisting the store, then warm ingest from a fresh hub.

    Only the ``ingest_batch`` call is timed on either side — store
    setup/teardown and the checkpoint are excluded, so the comparison
    isolates exactly what the persistent source index saves: conversions.
    """
    corpus = duplicate_corpus(unique, duplicates, nodes)
    root = tempfile.mkdtemp(prefix="bench-coverage-")
    try:
        store_dir = os.path.join(root, "store")

        def cold():
            shutil.rmtree(store_dir, ignore_errors=True)
            service = PlanIngestService(hub=ConverterHub(), persist_to=store_dir)
            elapsed, report = _timed_ingest(service, corpus)
            service.checkpoint()
            service.close()
            return elapsed, report

        cold_seconds, cold_report = _best_of(repeats, cold)

        def warm():
            # A fresh process would have exactly this state: empty hub
            # cache, persisted coverage + source index.
            service = PlanIngestService(hub=ConverterHub(), persist_to=store_dir)
            elapsed, report = _timed_ingest(service, corpus)
            service.close()
            return elapsed, report

        warm_seconds, warm_report = _best_of(repeats, warm)
        snapshot = CoverageStore.open(store_dir).snapshot()
    finally:
        shutil.rmtree(root, ignore_errors=True)

    skipped = cold_report.conversions - warm_report.conversions
    return {
        "corpus": {
            "sources": len(corpus),
            "unique_source_texts": unique,
            "nodes_per_plan": nodes,
        },
        "cold": {
            "seconds": cold_seconds,
            "conversions": cold_report.conversions,
            "plans_per_second": len(corpus) / cold_seconds,
        },
        "warm": {
            "seconds": warm_seconds,
            "conversions": warm_report.conversions,
            "index_hits": warm_report.index_hits,
            "plans_per_second": len(corpus) / warm_seconds,
        },
        "conversions_skipped": skipped,
        "skip_ratio": skipped / cold_report.conversions if cold_report.conversions else 0.0,
        "warm_speedup": cold_seconds / warm_seconds if warm_seconds else 0.0,
        "store": snapshot.to_dict(),
    }


def measure_process_pool(count=120, nodes=200, repeats=3, workers=None) -> dict:
    """Single-thread vs process-pool conversion of a CPU-heavy batch."""
    cpus = os.cpu_count() or 1
    workers = workers or max(2, min(4, cpus))
    corpus = unique_corpus(count, nodes)

    def single():
        service = PlanIngestService(hub=ConverterHub(), max_workers=1)
        return _timed_ingest(service, corpus)

    single_seconds, single_report = _best_of(repeats, single)

    pooled_service = PlanIngestService(
        hub=ConverterHub(),
        executor="process",
        max_workers=workers,
        process_threshold=1,
    )
    try:
        # Warm the pool once so worker start-up is not billed to the batch
        # (a long-running service pays it exactly once).
        pooled_service.ingest_batch(unique_corpus(workers, nodes=8))

        def pooled():
            # Drop every parse-avoidance layer so the pool really parses:
            # the hub's conversion cache and the in-memory source index.
            pooled_service.hub.clear_cache()
            pooled_service.coverage = CoverageStore()
            return _timed_ingest(pooled_service, corpus)

        pool_seconds, pool_report = _best_of(repeats, pooled)
        # In restricted environments the service silently falls back to
        # threads; record that so the invariant is not judged against a
        # pool that never ran.
        pool_active = (
            pooled_service._pool is not None and not pooled_service._pool_broken
        )
    finally:
        pooled_service.close()

    return {
        "corpus": {"sources": count, "nodes_per_plan": nodes},
        "cpus": cpus,
        "workers": workers,
        "pool_active": pool_active,
        "single_thread": {
            "seconds": single_seconds,
            "conversions": single_report.conversions,
            "plans_per_second": count / single_seconds,
        },
        "process_pool": {
            "seconds": pool_seconds,
            "conversions": pool_report.conversions,
            "plans_per_second": count / pool_seconds,
        },
        "speedup": single_seconds / pool_seconds if pool_seconds else 0.0,
    }


def collect_snapshot(quick: bool = False) -> dict:
    """The BENCH_coverage.json payload."""
    cpus = os.cpu_count() or 1
    if quick:
        warm = measure_warm_start(unique=10, duplicates=6, nodes=60, repeats=1)
        pool = measure_process_pool(count=24, nodes=80, repeats=1)
    else:
        warm = measure_warm_start()
        pool = measure_process_pool()
    # The pool invariant is only judged where it is judgeable: a real pool
    # ran (no thread fallback), at least two CPUs exist for it to use, and
    # the corpus is the full-size one (--quick batches are too small to
    # amortize IPC, so their speedup is a timing coin-flip, recorded but
    # not enforced).  On gated hosts the measured speedup is still in the
    # snapshot above.
    pool_judgeable = cpus >= 2 and pool["pool_active"] and not quick
    return {
        "benchmark": "coverage",
        "quick": quick,
        "cpus": cpus,
        # Explicit single-core marker: downstream consumers (CI dashboards,
        # tests/test_bench_invariants.py) should not have to re-derive the
        # gating condition from `cpus`.
        "skipped_multicore": cpus < 2,
        "warm_start": warm,
        "process_pool": pool,
        "invariants": {
            "warm_start_skips_at_least_90pct": warm["skip_ratio"] >= 0.9,
            "process_pool_beats_single_thread": (
                pool["speedup"] > 1.0 if pool_judgeable else True
            ),
            "process_pool_gated": not pool_judgeable,
        },
    }


# -- pytest-benchmark entry points (the driver's --suite mode) ----------------


def test_warm_start_skips_conversions(benchmark):
    corpus = duplicate_corpus(unique=8, duplicates=5, nodes=60)
    root = tempfile.mkdtemp(prefix="bench-coverage-")
    try:
        store_dir = os.path.join(root, "store")
        cold = PlanIngestService(hub=ConverterHub(), persist_to=store_dir)
        cold_report = cold.ingest_batch(corpus)
        cold.checkpoint()
        cold.close()

        def warm_ingest():
            service = PlanIngestService(hub=ConverterHub(), persist_to=store_dir)
            report = service.ingest_batch(corpus)
            service.close()
            return report

        report = benchmark(warm_ingest)
        assert cold_report.conversions == 8
        assert report.conversions == 0  # 100% of conversions skipped
        assert report.index_hits == len(corpus)
    finally:
        shutil.rmtree(root, ignore_errors=True)


def test_process_pool_matches_single_thread(benchmark):
    corpus = unique_corpus(12, nodes=40)
    single = PlanIngestService(hub=ConverterHub(), max_workers=1)
    expected = [entry.fingerprint for entry in single.ingest_batch(corpus).entries]
    with PlanIngestService(
        hub=ConverterHub(), executor="process", max_workers=2, process_threshold=1
    ) as service:
        service.ingest_batch(corpus)  # warm the pool + hub cache

        def pooled_ingest():
            service.hub.clear_cache()
            service.coverage = CoverageStore()
            return service.ingest_batch(corpus)

        report = benchmark(pooled_ingest)
        assert [entry.fingerprint for entry in report.entries] == expected
