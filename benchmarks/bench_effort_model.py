"""E-V — Section V-A.2: PEV2 adaptation effort (≈80 % reduction for five DBMSs)."""

import pytest

from repro.visualize import estimate_effort


def test_effort_model(benchmark):
    effort = benchmark(estimate_effort, 5)
    benchmark.extra_info["dbms_specific_days"] = effort.dbms_specific_days
    benchmark.extra_info["uplan_days"] = effort.uplan_days
    benchmark.extra_info["reduction"] = round(effort.reduction_fraction, 3)
    assert effort.dbms_specific_days == pytest.approx(940)
    assert effort.uplan_days == pytest.approx(194, abs=1)
    assert effort.reduction_fraction == pytest.approx(0.79, abs=0.03)
