"""E-T6 — Table VI: average operations per category for TPC-H across five DBMSs."""

from repro.benchmarking import table6_rows


def test_table6_tpch_operations(benchmark, tpch_plans):
    rows = benchmark(table6_rows, tpch_plans)
    benchmark.extra_info["table6"] = rows
    by_dbms = {row["DBMS"]: row for row in rows}
    # Shape checks from the paper: TiDB has the most operations, the
    # relational DBMSs have more than the non-relational ones, MongoDB has no
    # Join operations, and the relational DBMSs have the most Producers.
    assert by_dbms["tidb"]["Sum"] == max(row["Sum"] for row in rows)
    assert by_dbms["mysql"]["Sum"] > by_dbms["mongodb"]["Sum"]
    assert by_dbms["postgresql"]["Sum"] > by_dbms["neo4j"]["Sum"]
    assert by_dbms["mongodb"]["Join"] == 0.0
    assert by_dbms["postgresql"]["Producer"] > by_dbms["neo4j"]["Producer"]
