"""E-PERF — library-level throughput: conversion, serialization, fingerprinting.

Not a table in the paper, but the performance characteristics a downstream
adopter of the library cares about: how fast raw plans are converted and how
fast unified plans are serialized and fingerprinted.
"""

from repro.converters import converter_for
from repro.core import formats, structural_fingerprint
from repro.dialects import create_dialect

SETUP = [
    "CREATE TABLE t0 (c0 INT, c1 INT)",
    "CREATE TABLE t1 (c0 INT)",
    "INSERT INTO t0 (c0, c1) VALUES " + ", ".join(f"({i}, {i % 9})" for i in range(1, 301)),
    "INSERT INTO t1 (c0) VALUES " + ", ".join(f"({i})" for i in range(1, 61)),
]

QUERY = (
    "SELECT t1.c0, COUNT(*) FROM t0 JOIN t1 ON t0.c0 = t1.c0 "
    "WHERE t0.c1 < 7 GROUP BY t1.c0 ORDER BY t1.c0 LIMIT 10"
)


def _postgresql_raw_plan():
    dialect = create_dialect("postgresql")
    for statement in SETUP:
        dialect.execute(statement)
    dialect.analyze_tables()
    return dialect.explain(QUERY, format="json").text


def test_convert_throughput(benchmark):
    raw = _postgresql_raw_plan()
    converter = converter_for("postgresql")
    plan = benchmark(converter.convert, raw, "json")
    assert plan.node_count() >= 4


def test_serialize_json_throughput(benchmark):
    raw = _postgresql_raw_plan()
    plan = converter_for("postgresql").convert(raw, format="json")
    text = benchmark(formats.serialize, plan, "json")
    assert text


def test_fingerprint_throughput(benchmark):
    raw = _postgresql_raw_plan()
    plan = converter_for("postgresql").convert(raw, format="json")
    digest = benchmark(structural_fingerprint, plan)
    # blake2b/128-bit Merkle digests are 32 hex chars.
    assert len(digest) == 32


def test_explain_end_to_end_throughput(benchmark):
    dialect = create_dialect("postgresql")
    for statement in SETUP:
        dialect.execute(statement)
    dialect.analyze_tables()
    converter = converter_for("postgresql")

    def explain_and_convert():
        return converter.convert(dialect.explain(QUERY, format="text").text, format="text")

    plan = benchmark(explain_and_convert)
    assert plan.node_count() >= 4
