"""E-T2 — Table II: operations and properties per category per DBMS."""

from repro.core.categories import OPERATION_CATEGORY_ORDER, PROPERTY_CATEGORY_ORDER
from repro.study import (
    OPERATION_COUNTS,
    PROPERTY_COUNTS,
    catalogued_operation_counts,
    catalogued_property_counts,
    studied_dbms_names,
)


def _build_table2():
    rows = []
    for dbms in studied_dbms_names():
        operations = catalogued_operation_counts(dbms)
        properties = catalogued_property_counts(dbms)
        row = {"DBMS": dbms}
        for category in OPERATION_CATEGORY_ORDER:
            row[category.value] = operations[category]
        row["Ops Sum"] = sum(operations.values())
        for category in PROPERTY_CATEGORY_ORDER:
            row[category.value] = properties[category]
        row["Props Sum"] = sum(properties.values())
        rows.append(row)
    return rows


def test_table2_catalogue(benchmark):
    rows = benchmark(_build_table2)
    benchmark.extra_info["table2"] = rows
    # The regenerated counts must equal the paper's Table II exactly.
    by_dbms = {row["DBMS"]: row for row in rows}
    for dbms, counts in OPERATION_COUNTS.items():
        assert by_dbms[dbms]["Ops Sum"] == sum(counts.values())
    for dbms, counts in PROPERTY_COUNTS.items():
        assert by_dbms[dbms]["Props Sum"] == sum(counts.values())
    assert by_dbms["neo4j"]["Ops Sum"] == 111
    assert by_dbms["postgresql"]["Props Sum"] == 107
