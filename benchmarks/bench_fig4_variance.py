"""E-F4 — Figure 4: variance of Producer-operation counts per TPC-H query."""

from repro.benchmarking import figure4_variances, high_variance_queries


def test_fig4_producer_variance(benchmark, tpch_plans):
    variances = benchmark(figure4_variances, tpch_plans)
    benchmark.extra_info["figure4"] = {str(q): round(v, 2) for q, v in variances.items()}
    assert len(variances) == 22
    high = high_variance_queries(variances, threshold=2.0)
    benchmark.extra_info["high_variance_queries"] = high
    # The paper singles out queries 2, 5, 7, 8, 9 (data-model differences) and
    # 11 (optimization opportunity) as high-variance; the simulated setup must
    # flag a comparable subset including query 11's neighbourhood.
    assert len(high) >= 4
    assert any(query in high for query in (2, 5, 7, 8, 9))
    assert variances[11] > 0
