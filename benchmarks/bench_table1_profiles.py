"""E-T1 — Table I: the studied DBMSs (metadata registry)."""

from repro.study import table1_rows


def test_table1_profiles(benchmark):
    rows = benchmark(table1_rows)
    assert len(rows) == 9
    benchmark.extra_info["table1"] = rows
