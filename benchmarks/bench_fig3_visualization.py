"""E-F3 — Figure 3: visualizing TPC-H query 1 plans from three DBMSs with one tool."""

from repro.visualize import render_dot, render_html


def _render_all(tpch_plans):
    rendered = {}
    for dbms in ("postgresql", "mongodb", "mysql"):
        plan = tpch_plans[dbms].plans[1]
        rendered[dbms] = (render_html(plan, title="TPC-H Q1"), render_dot(plan))
    return rendered


def test_fig3_visualized_plans(benchmark, tpch_plans):
    rendered = benchmark(_render_all, tpch_plans)
    for dbms, (html_page, dot) in rendered.items():
        assert "<html>" in html_page
        assert dot.startswith("digraph")
    # The MySQL card shows the Combinator->Sort root node as in the figure.
    assert "Sort" in rendered["mysql"][0] or "Aggregate" in rendered["mysql"][0]
    benchmark.extra_info["html_bytes"] = {d: len(h) for d, (h, _) in rendered.items()}
