"""Benchmark driver: run the bench suites and write the perf snapshots.

Usage (from the repository root)::

    PYTHONPATH=src python benchmarks/run_benchmarks.py            # snapshots only
    PYTHONPATH=src python benchmarks/run_benchmarks.py --quick    # CI smoke (small corpora)
    PYTHONPATH=src python benchmarks/run_benchmarks.py --suite    # + full pytest-benchmark run
    PYTHONPATH=src python benchmarks/run_benchmarks.py --output somewhere.json

Nine snapshots are written:

* ``BENCH_pipeline.json`` — batched-vs-single ingestion and
  fingerprint-vs-deep-compare speedup, with the service statistics proving
  the dedup invariant (conversions happen only for unique source texts);
* ``BENCH_coverage.json`` — warm-start ingest over a persisted
  :class:`~repro.pipeline.CoverageStore` (how many conversions the
  persistent source index skips) and process-pool vs single-thread
  conversion throughput on a CPU-heavy batch;
* ``BENCH_campaign.json`` — end-to-end QPG queries/sec with cold vs warm
  prepared-query/conversion caches, a per-stage lifecycle profile, and the
  cache-on vs cache-off campaign-equivalence check;
* ``BENCH_executor.json`` — row vs list-vectorized vs numpy-vectorized
  executor throughput on scan/filter/join/aggregate/sort workloads
  (numpy-vectorized must win the scan+filter microbench by ≥ 10x when
  numpy is installed; list-vectorized keeps the ≥ 2x floor) plus the
  generator-corpus execute pass and the row-vs-vectorized campaign
  coverage/Table V equivalence check;
* ``BENCH_decorrelate.json`` — decorrelated hash semi/anti joins vs the
  per-row subquery oracle (the IN-subquery microbench must win by ≥ 5x),
  the operator-name universe growth, and the warm QPG floor;
* ``BENCH_parallel.json`` — sharded-campaign scaling vs serial (the
  merged coverage/Table V byte-identity flags are enforced everywhere;
  the ≥ 2.5x four-shard speedup floor only on ≥ 4-CPU hosts with a real
  process pool) and the morsel-driven engine's result identity;
* ``BENCH_optimizer.json`` — cost-based multi-join optimization vs the
  as-written plan oracle (the five-table chain join must win by ≥ 50x
  with identical results), the corpus/campaign toggle-equivalence flags,
  and the intermediate-size-bound oracle check;
* ``BENCH_service.json`` — the query service under eight concurrent
  clients: read throughput vs single-client serial with p50/p99 latency
  (the ≥ 2.5x floor only on ≥ 4-CPU full-size runs, mirroring the
  parallel snapshot's gating), plus the always-enforced isolation,
  linearizable-DDL, zero-leakage, and campaign-through-service
  byte-identity flags;
* ``BENCH_similarity.json`` — the plan-similarity layer: embedding
  determinism and integer-valuedness, nearest-neighbour query throughput
  with the numpy-vs-list bit-identity flag, the index merge algebra
  across shard layouts, and the campaign-mode checks (``novelty="exact"``
  inert, ``novelty="similarity"`` deterministic).

``--only pipeline|coverage|campaign|executor|decorrelate|parallel|optimizer|service|similarity``
restricts the run to one snapshot.
``--quick`` shrinks the corpora so the whole driver finishes in seconds —
that is the mode CI smoke-runs.  The tier-1 test suite the snapshots should
always be accompanied by is::

    PYTHONPATH=src python -m pytest -x -q
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import sys
import time

_HERE = os.path.dirname(os.path.abspath(__file__))
_SRC = os.path.join(os.path.dirname(_HERE), "src")
for path in (_SRC, _HERE):
    if path not in sys.path:
        sys.path.insert(0, path)

from repro import __version__  # noqa: E402
from repro.converters import ConverterHub  # noqa: E402
from repro.pipeline import PlanIngestService, PlanSource  # noqa: E402

import bench_campaign  # noqa: E402
import bench_coverage  # noqa: E402
import bench_decorrelate  # noqa: E402
import bench_executor  # noqa: E402
import bench_optimizer  # noqa: E402
import bench_parallel  # noqa: E402
import bench_pipeline  # noqa: E402
import bench_service  # noqa: E402
import bench_similarity  # noqa: E402


def _time_ingest(batched: bool, raws, repeats: int = 5) -> dict:
    best = None
    stats = None
    for _ in range(repeats):
        service = PlanIngestService(hub=ConverterHub())
        sources = [PlanSource("postgresql", raw, "json") for raw in raws]
        started = time.perf_counter()
        if batched:
            service.ingest_batch(sources)
        else:
            for source in sources:
                service.ingest(source)
        elapsed = time.perf_counter() - started
        if best is None or elapsed < best:
            best = elapsed
            stats = service.stats.to_dict()
    return {"seconds": best, "plans_per_second": len(raws) / best, "stats": stats}


def collect_snapshot(quick: bool = False) -> dict:
    raws, unique_count = bench_pipeline._raw_corpus()
    if quick:
        raws = raws[: max(unique_count, len(raws) // 5)]
    repeats = 1 if quick else 5
    single = _time_ingest(batched=False, raws=raws, repeats=repeats)
    batched = _time_ingest(batched=True, raws=raws, repeats=repeats)
    fingerprint = bench_pipeline.measure_fingerprint_speedup(
        iterations=200 if quick else 2000
    )
    return {
        "benchmark": "pipeline",
        "version": __version__,
        "python": platform.python_version(),
        "corpus": {"sources": len(raws), "unique_source_texts": unique_count},
        "ingest_single": single,
        "ingest_batched": batched,
        "batched_speedup": single["seconds"] / batched["seconds"],
        "fingerprint_equality": fingerprint,
        "invariants": {
            "conversions_only_for_unique_sources": (
                batched["stats"]["conversions"] == unique_count
            ),
            "fingerprint_at_least_10x": fingerprint["speedup"] >= 10.0,
        },
    }


def run_full_suite() -> int:
    """Run the whole pytest-benchmark suite (all bench_*.py modules).

    The modules are named explicitly because ``bench_*.py`` does not match
    pytest's default collection patterns.
    """
    import glob

    modules = sorted(glob.glob(os.path.join(_HERE, "bench_*.py")))
    command = [
        sys.executable,
        "-m",
        "pytest",
        *modules,
        "-q",
        "--benchmark-disable-gc",
    ]
    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.call(command, env=env)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output",
        default=os.path.join(os.path.dirname(_HERE), "BENCH_pipeline.json"),
        help="where to write the pipeline perf snapshot (default: repo root)",
    )
    parser.add_argument(
        "--coverage-output",
        default=os.path.join(os.path.dirname(_HERE), "BENCH_coverage.json"),
        help="where to write the coverage perf snapshot (default: repo root)",
    )
    parser.add_argument(
        "--campaign-output",
        default=os.path.join(os.path.dirname(_HERE), "BENCH_campaign.json"),
        help="where to write the campaign perf snapshot (default: repo root)",
    )
    parser.add_argument(
        "--executor-output",
        default=os.path.join(os.path.dirname(_HERE), "BENCH_executor.json"),
        help="where to write the executor perf snapshot (default: repo root)",
    )
    parser.add_argument(
        "--decorrelate-output",
        default=os.path.join(os.path.dirname(_HERE), "BENCH_decorrelate.json"),
        help="where to write the decorrelation perf snapshot (default: repo root)",
    )
    parser.add_argument(
        "--parallel-output",
        default=os.path.join(os.path.dirname(_HERE), "BENCH_parallel.json"),
        help="where to write the parallel perf snapshot (default: repo root)",
    )
    parser.add_argument(
        "--optimizer-output",
        default=os.path.join(os.path.dirname(_HERE), "BENCH_optimizer.json"),
        help="where to write the optimizer perf snapshot (default: repo root)",
    )
    parser.add_argument(
        "--service-output",
        default=os.path.join(os.path.dirname(_HERE), "BENCH_service.json"),
        help="where to write the service perf snapshot (default: repo root)",
    )
    parser.add_argument(
        "--similarity-output",
        default=os.path.join(os.path.dirname(_HERE), "BENCH_similarity.json"),
        help="where to write the similarity perf snapshot (default: repo root)",
    )
    parser.add_argument(
        "--only",
        choices=[
            "pipeline",
            "coverage",
            "campaign",
            "executor",
            "decorrelate",
            "parallel",
            "optimizer",
            "service",
            "similarity",
        ],
        default=None,
        help="run just one snapshot instead of all nine",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small corpora / single repeats — the CI smoke mode",
    )
    parser.add_argument(
        "--suite",
        action="store_true",
        help="also run the full pytest-benchmark suite after the snapshots",
    )
    args = parser.parse_args(argv)

    def write_snapshot(payload: dict, path: str) -> None:
        with open(path, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {path}")

    violated = False

    if args.only in (None, "pipeline"):
        snapshot = collect_snapshot(quick=args.quick)
        write_snapshot(snapshot, args.output)
        print(
            "batched ingest: {:.1f}x faster than single; fingerprint equality: "
            "{:.0f}x faster than deep compare".format(
                snapshot["batched_speedup"], snapshot["fingerprint_equality"]["speedup"]
            )
        )
        if not all(snapshot["invariants"].values()):
            print(
                "PIPELINE INVARIANTS VIOLATED:", snapshot["invariants"],
                file=sys.stderr,
            )
            violated = True

    if args.only in (None, "coverage"):
        coverage_snapshot = bench_coverage.collect_snapshot(quick=args.quick)
        write_snapshot(coverage_snapshot, args.coverage_output)
        warm = coverage_snapshot["warm_start"]
        pool = coverage_snapshot["process_pool"]
        print(
            "warm-start ingest: skipped {:.0f}% of conversions ({:.1f}x faster); "
            "process pool: {:.2f}x vs single thread on {} cpu(s)".format(
                warm["skip_ratio"] * 100,
                warm["warm_speedup"],
                pool["speedup"],
                coverage_snapshot["cpus"],
            )
        )
        coverage_invariants = dict(coverage_snapshot["invariants"])
        coverage_invariants.pop("process_pool_gated", None)  # informational
        if not all(coverage_invariants.values()):
            print(
                "COVERAGE INVARIANTS VIOLATED:", coverage_snapshot["invariants"],
                file=sys.stderr,
            )
            violated = True

    if args.only in (None, "campaign"):
        campaign_snapshot = bench_campaign.collect_snapshot(quick=args.quick)
        write_snapshot(campaign_snapshot, args.campaign_output)
        loop = campaign_snapshot["qpg_loop"]
        equivalence = campaign_snapshot["cache_equivalence"]
        print(
            "QPG loop: {:.0f} q/s cold, {:.0f} q/s warm ({:.2f}x); "
            "cache-off campaign identical: coverage={} reports={}".format(
                loop["cold"]["queries_per_second"],
                loop["warm"]["queries_per_second"],
                loop["warm_speedup"],
                equivalence["coverage_identical"],
                equivalence["reports_identical"],
            )
        )
        if not all(campaign_snapshot["invariants"].values()):
            print(
                "CAMPAIGN INVARIANTS VIOLATED:", campaign_snapshot["invariants"],
                file=sys.stderr,
            )
            violated = True

    if args.only in (None, "executor"):
        executor_snapshot = bench_executor.collect_snapshot(quick=args.quick)
        write_snapshot(executor_snapshot, args.executor_output)
        scan_filter = executor_snapshot["workloads"]["workloads"]["scan_filter"]
        corpus = executor_snapshot["corpus_execute"]
        engines = executor_snapshot["workloads"]["engines"]
        best_engine = engines[-1]
        print(
            "executor ({}): scan+filter {:.2f}x, corpus execute {:.0f} q/s row "
            "vs {:.0f} q/s {} ({:.2f}x); campaign coverage identical: {}".format(
                "+".join(engines),
                scan_filter["speedup"],
                corpus["row"]["queries_per_second"],
                corpus[best_engine]["queries_per_second"],
                best_engine,
                corpus["speedup"],
                executor_snapshot["campaign_equivalence"]["coverage_identical"],
            )
        )
        if not all(executor_snapshot["invariants"].values()):
            print(
                "EXECUTOR INVARIANTS VIOLATED:", executor_snapshot["invariants"],
                file=sys.stderr,
            )
            violated = True

    if args.only in (None, "decorrelate"):
        decorrelate_snapshot = bench_decorrelate.collect_snapshot(quick=args.quick)
        write_snapshot(decorrelate_snapshot, args.decorrelate_output)
        in_workload = decorrelate_snapshot["microbench"]["workloads"]["in_semi_join"]
        universe = decorrelate_snapshot["operator_universe"]
        print(
            "decorrelate: IN-subquery {:.1f}x, NOT IN {:.1f}x; operator "
            "universe {} -> {} names; warm QPG {:.0f} q/s".format(
                in_workload["speedup"],
                decorrelate_snapshot["microbench"]["workloads"][
                    "not_in_anti_join"
                ]["speedup"],
                universe["per_row_size"],
                universe["decorrelated_size"],
                decorrelate_snapshot["warm_qpg"]["pr4_corpus"][
                    "warm_queries_per_second"
                ],
            )
        )
        if not all(decorrelate_snapshot["invariants"].values()):
            print(
                "DECORRELATE INVARIANTS VIOLATED:",
                decorrelate_snapshot["invariants"],
                file=sys.stderr,
            )
            violated = True

    if args.only in (None, "parallel"):
        parallel_snapshot = bench_parallel.collect_snapshot(quick=args.quick)
        write_snapshot(parallel_snapshot, args.parallel_output)
        scaling = parallel_snapshot["campaign_scaling"]
        morsel = parallel_snapshot["morsel_operators"]
        print(
            "parallel: {}-shard campaign {:.2f}x vs serial on {} cpu(s) "
            "(pool_active={}); coverage identical: {}; morsel engine "
            "{:.2f}x, results identical: {}".format(
                scaling["shards"],
                scaling["speedup"],
                parallel_snapshot["cpus"],
                scaling["sharded"]["pool_active"],
                scaling["coverage_identical"],
                morsel["speedup"],
                morsel["results_identical"],
            )
        )
        parallel_invariants = dict(parallel_snapshot["invariants"])
        parallel_invariants.pop("scaling_gated", None)  # informational
        if not all(parallel_invariants.values()):
            print(
                "PARALLEL INVARIANTS VIOLATED:", parallel_snapshot["invariants"],
                file=sys.stderr,
            )
            violated = True

    if args.only in (None, "optimizer"):
        optimizer_snapshot = bench_optimizer.collect_snapshot(quick=args.quick)
        write_snapshot(optimizer_snapshot, args.optimizer_output)
        chain = optimizer_snapshot["chain_join"]
        print(
            "optimizer: 5-table chain join {:.0f}x vs as-written "
            "(results identical: {}); corpus identical: {}; campaign "
            "reports identical: {}; bound violations: {}".format(
                chain["speedup"],
                chain["results_identical"],
                optimizer_snapshot["corpus_equivalence"]["identical"],
                optimizer_snapshot["campaign_equivalence"]["reports_identical"],
                len(optimizer_snapshot["bound_oracle"]["violations"]),
            )
        )
        if not all(optimizer_snapshot["invariants"].values()):
            print(
                "OPTIMIZER INVARIANTS VIOLATED:",
                optimizer_snapshot["invariants"],
                file=sys.stderr,
            )
            violated = True

    if args.only in (None, "service"):
        service_snapshot = bench_service.collect_snapshot(quick=args.quick)
        write_snapshot(service_snapshot, args.service_output)
        throughput = service_snapshot["read_throughput"]
        print(
            "service: {} concurrent clients {:.2f}x vs single-client serial "
            "on {} cpu(s) (p50 {:.1f} ms, p99 {:.1f} ms); isolation={} "
            "ddl_linearizable={} zero_leakage={} campaign identical: {}".format(
                throughput["clients"],
                throughput["speedup"],
                service_snapshot["cpus"],
                throughput["concurrent"]["p50_ms"],
                throughput["concurrent"]["p99_ms"],
                service_snapshot["isolation"]["consistent"],
                service_snapshot["ddl_and_leakage"]["ddl_linearizable"],
                service_snapshot["ddl_and_leakage"]["zero_leakage"],
                service_snapshot["campaign_equivalence"]["identical"],
            )
        )
        service_invariants = dict(service_snapshot["invariants"])
        service_invariants.pop("scaling_gated", None)  # informational
        if not all(service_invariants.values()):
            print(
                "SERVICE INVARIANTS VIOLATED:", service_snapshot["invariants"],
                file=sys.stderr,
            )
            violated = True

    if args.only in (None, "similarity"):
        similarity_snapshot = bench_similarity.collect_snapshot(quick=args.quick)
        write_snapshot(similarity_snapshot, args.similarity_output)
        queries = similarity_snapshot["index_queries"]
        campaigns = similarity_snapshot["campaign_modes"]
        print(
            "similarity: {:.0f} NN q/s over {} entries (numpy/list identical: "
            "{}); merges layout-independent: {}; exact mode inert: {}; "
            "similarity campaigns deterministic: {} ({} plans indexed)".format(
                queries["queries_per_second"],
                queries["entries"],
                queries["numpy_list_identical"],
                similarity_snapshot["merge_identity"][
                    "order_and_layout_independent"
                ],
                campaigns["exact_mode_inert"],
                campaigns["similarity_deterministic"],
                campaigns["similarity_indexed_plans"],
            )
        )
        if not all(similarity_snapshot["invariants"].values()):
            print(
                "SIMILARITY INVARIANTS VIOLATED:",
                similarity_snapshot["invariants"],
                file=sys.stderr,
            )
            violated = True

    if violated:
        return 1
    if args.suite:
        return run_full_suite()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
