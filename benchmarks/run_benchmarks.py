"""Benchmark driver: run the pipeline bench suite and write a perf snapshot.

Usage (from the repository root)::

    PYTHONPATH=src python benchmarks/run_benchmarks.py            # snapshot only
    PYTHONPATH=src python benchmarks/run_benchmarks.py --suite    # + full pytest-benchmark run
    PYTHONPATH=src python benchmarks/run_benchmarks.py --output somewhere.json

The snapshot (``BENCH_pipeline.json`` by default) records the pipeline's two
headline numbers — batched-vs-single ingestion and fingerprint-vs-deep-compare
speedup — together with the service statistics proving the dedup invariant
(conversions happen only for unique source texts).  The tier-1 test suite the
snapshot should always be accompanied by is::

    PYTHONPATH=src python -m pytest -x -q
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import sys
import time

_HERE = os.path.dirname(os.path.abspath(__file__))
_SRC = os.path.join(os.path.dirname(_HERE), "src")
for path in (_SRC, _HERE):
    if path not in sys.path:
        sys.path.insert(0, path)

from repro import __version__  # noqa: E402
from repro.converters import ConverterHub  # noqa: E402
from repro.pipeline import PlanIngestService, PlanSource  # noqa: E402

import bench_pipeline  # noqa: E402


def _time_ingest(batched: bool, raws, repeats: int = 5) -> dict:
    best = None
    stats = None
    for _ in range(repeats):
        service = PlanIngestService(hub=ConverterHub())
        sources = [PlanSource("postgresql", raw, "json") for raw in raws]
        started = time.perf_counter()
        if batched:
            service.ingest_batch(sources)
        else:
            for source in sources:
                service.ingest(source)
        elapsed = time.perf_counter() - started
        if best is None or elapsed < best:
            best = elapsed
            stats = service.stats.to_dict()
    return {"seconds": best, "plans_per_second": len(raws) / best, "stats": stats}


def collect_snapshot() -> dict:
    raws, unique_count = bench_pipeline._raw_corpus()
    single = _time_ingest(batched=False, raws=raws)
    batched = _time_ingest(batched=True, raws=raws)
    fingerprint = bench_pipeline.measure_fingerprint_speedup()
    return {
        "benchmark": "pipeline",
        "version": __version__,
        "python": platform.python_version(),
        "corpus": {"sources": len(raws), "unique_source_texts": unique_count},
        "ingest_single": single,
        "ingest_batched": batched,
        "batched_speedup": single["seconds"] / batched["seconds"],
        "fingerprint_equality": fingerprint,
        "invariants": {
            "conversions_only_for_unique_sources": (
                batched["stats"]["conversions"] == unique_count
            ),
            "fingerprint_at_least_10x": fingerprint["speedup"] >= 10.0,
        },
    }


def run_full_suite() -> int:
    """Run the whole pytest-benchmark suite (all bench_*.py modules).

    The modules are named explicitly because ``bench_*.py`` does not match
    pytest's default collection patterns.
    """
    import glob

    modules = sorted(glob.glob(os.path.join(_HERE, "bench_*.py")))
    command = [
        sys.executable,
        "-m",
        "pytest",
        *modules,
        "-q",
        "--benchmark-disable-gc",
    ]
    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.call(command, env=env)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output",
        default=os.path.join(os.path.dirname(_HERE), "BENCH_pipeline.json"),
        help="where to write the perf snapshot (default: repo root)",
    )
    parser.add_argument(
        "--suite",
        action="store_true",
        help="also run the full pytest-benchmark suite after the snapshot",
    )
    args = parser.parse_args(argv)

    snapshot = collect_snapshot()
    with open(args.output, "w") as handle:
        json.dump(snapshot, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.output}")
    print(
        "batched ingest: {:.1f}x faster than single; fingerprint equality: "
        "{:.0f}x faster than deep compare".format(
            snapshot["batched_speedup"], snapshot["fingerprint_equality"]["speedup"]
        )
    )
    if not all(snapshot["invariants"].values()):
        print("PIPELINE INVARIANTS VIOLATED:", snapshot["invariants"], file=sys.stderr)
        return 1
    if args.suite:
        return run_full_suite()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
