"""Similarity-layer benchmark: embedding determinism, index throughput, merges.

Measures and pins the plan-similarity subsystem (PR 10):

* **embedding determinism** — plans independently re-converted from the
  same raw EXPLAIN text must embed to bit-identical vectors (the content
  purity the whole nearest-neighbour layer rests on);
* **index queries** — nearest-neighbour throughput over a populated
  :class:`~repro.similarity.PlanIndex`, plus the numpy-vs-list
  bit-identity check (integer-valued embeddings make cosine arithmetic
  exact, so the two paths must agree exactly, not approximately);
* **merge algebra** — first-wins payload merges across mismatched shard
  layouts and orders must land on identical indexes (the sharded
  campaign's handoff);
* **campaign modes** — ``novelty="exact"`` campaigns must be inert
  (coverage and Table V independent of trigger-plan capture), and
  ``novelty="similarity"`` campaigns deterministic run to run.

Run via ``run_benchmarks.py [--only similarity]``; the snapshot lands in
``BENCH_similarity.json``.
"""

from __future__ import annotations

import os
import platform
import sys
import time

_HERE = os.path.dirname(os.path.abspath(__file__))
_SRC = os.path.join(os.path.dirname(_HERE), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro import __version__  # noqa: E402
from repro.converters import ConverterHub  # noqa: E402
from repro.dialects import create_dialect  # noqa: E402
from repro.engine import arrays  # noqa: E402
from repro.similarity import (  # noqa: E402
    EMBEDDING_DIMENSIONS,
    PlanIndex,
    embed_plan,
)
from repro.testing import TestingCampaign  # noqa: E402
from repro.testing.generator import GeneratorConfig, RandomQueryGenerator  # noqa: E402

#: Conservative enforced floor for nearest-neighbour queries per second.
#: The pure-list path over the benchmark index clears this by orders of
#: magnitude on any host; a miss means the index went accidentally
#: quadratic, not that the machine is slow.
QUERY_THROUGHPUT_FLOOR = 25.0


def _plan_corpus(count):
    """Distinct unified plans converted from generated EXPLAIN outputs."""
    dialect = create_dialect("postgresql")
    generator = RandomQueryGenerator(seed=31, config=GeneratorConfig(max_tables=2))
    for statement in generator.schema_statements():
        try:
            dialect.execute(statement)
        except Exception:
            continue
    hub = ConverterHub()
    fmt = hub.converter("postgresql").formats[0]
    raws = []
    plans = []
    seen = set()
    attempts = 0
    while len(plans) < count and attempts < count * 30:
        attempts += 1
        query = generator.select_query()
        try:
            output = dialect.explain(query, format=fmt)
        except Exception:
            continue
        plan = hub.convert("postgresql", output.text, fmt)
        fingerprint = plan.fingerprint()
        if fingerprint in seen:
            continue
        seen.add(fingerprint)
        raws.append(output.text)
        plans.append(plan)
    return raws, plans, fmt


def measure_embedding_determinism(raws, fmt):
    """Re-convert every raw text through two fresh hubs; embed both."""
    first_hub, second_hub = ConverterHub(), ConverterHub()
    identical = True
    integer_valued = True
    started = time.perf_counter()
    for raw in raws:
        a = embed_plan(first_hub.convert("postgresql", raw, fmt))
        b = embed_plan(second_hub.convert("postgresql", raw, fmt))
        identical = identical and a == b
        integer_valued = integer_valued and all(v == int(v) and v >= 0 for v in a)
    elapsed = time.perf_counter() - started
    return {
        "plans": len(raws),
        "dimensions": EMBEDDING_DIMENSIONS,
        "seconds": elapsed,
        "deterministic": identical,
        "integer_valued": integer_valued,
    }


def measure_index_queries(plans, probes):
    """NN throughput plus the numpy/list bit-identity comparison."""
    index = PlanIndex()
    for position, plan in enumerate(plans):
        index.add(f"{position:06d}-{plan.fingerprint()}", embed_plan(plan))
    vectors = [embed_plan(plan) for plan in plans[:probes]]

    def run_queries():
        started = time.perf_counter()
        results = [index.query(vector, k=3) for vector in vectors]
        return results, time.perf_counter() - started

    ambient_results, seconds = run_queries()
    numpy_list_identical = True
    numpy_available = arrays.numpy_available()
    if numpy_available:
        enabled = arrays.numpy_enabled()
        try:
            arrays.set_numpy_enabled(True)
            with_numpy, _ = run_queries()
            arrays.set_numpy_enabled(False)
            without_numpy, _ = run_queries()
        finally:
            arrays.set_numpy_enabled(enabled)
        numpy_list_identical = with_numpy == without_numpy
    return {
        "entries": len(index),
        "probes": len(vectors),
        "k": 3,
        "seconds": seconds,
        "queries_per_second": len(vectors) / seconds if seconds else float("inf"),
        "numpy_available": numpy_available,
        "numpy_list_identical": numpy_list_identical,
        "self_nearest_all_zero": all(
            result[0][1] == 0.0 for result in ambient_results
        ),
    }


def measure_merge_identity(plans):
    """Merge thirds across shard layouts and orders; all must agree."""
    vectors = {
        f"{position:06d}-{plan.fingerprint()}": embed_plan(plan)
        for position, plan in enumerate(plans)
    }
    keys = sorted(vectors)
    thirds = [keys[0::3], keys[1::3], keys[2::3]]
    layouts = [(3, 16, 5), (16, 1, 3)]
    payloads = []
    for layout in layouts:
        parts = []
        for shard_count, chunk in zip(layout, thirds):
            part = PlanIndex(shard_count=shard_count)
            for key in chunk:
                part.add(key, vectors[key])
            parts.append(part)
        forward = PlanIndex(shard_count=8)
        for part in parts:
            forward.merge(part)
        backward = PlanIndex(shard_count=2)
        for part in reversed(parts):
            backward.merge_payload(part.to_payload())
        payloads.append((forward.to_payload(), backward.to_payload()))
    union_exact = all(
        len(forward["entries"]) == len(vectors) for forward, _ in payloads
    )
    order_and_layout_independent = all(
        forward == backward for forward, backward in payloads
    ) and payloads[0][0] == payloads[1][0]
    rebuilt = PlanIndex(shard_count=8)
    rebuilt.merge_payload(payloads[0][0])
    idempotent = rebuilt.merge_payload(payloads[0][0]) == 0
    return {
        "entries": len(vectors),
        "layouts": [list(layout) for layout in layouts],
        "union_exact": union_exact,
        "order_and_layout_independent": order_and_layout_independent,
        "idempotent": idempotent,
    }


def measure_campaign_modes(quick):
    """Exact-mode inertness and similarity-mode determinism, end to end."""
    settings = dict(
        queries_per_dbms=12 if quick else 40,
        cert_pairs_per_dbms=5 if quick else 15,
        bound_checks_per_dbms=3 if quick else 8,
    )
    capture_on = TestingCampaign(**settings).run()
    capture_off = TestingCampaign(capture_trigger_plans=False, **settings).run()
    exact_inert = (
        capture_on.table5_rows() == capture_off.table5_rows()
        and capture_on.plan_fingerprints == capture_off.plan_fingerprints
        and capture_on.conversions == capture_off.conversions
        and capture_on.conversion_cache_hits == capture_off.conversion_cache_hits
        and capture_on.novelty_reward_total == 0.0
        and capture_on.index_payload is None
    )
    first = TestingCampaign(novelty="similarity", **settings).run()
    second = TestingCampaign(novelty="similarity", **settings).run()
    deterministic = (
        first.novelty_reward_total == second.novelty_reward_total
        and first.index_payload == second.index_payload
        and first.table5_rows() == second.table5_rows()
    )
    cluster_sizes = sorted(len(cluster) for cluster in first.cluster_reports())
    return {
        "settings": settings,
        "exact_reports": len(capture_on.reports),
        "exact_mode_inert": exact_inert,
        "similarity_reports": len(first.reports),
        "similarity_indexed_plans": len(first.index_payload["entries"]),
        "novelty_reward_total": first.novelty_reward_total,
        "similarity_deterministic": deterministic,
        "cluster_sizes": cluster_sizes,
        "clusters_cover_all_reports": sum(cluster_sizes) == len(first.reports),
    }


def collect_snapshot(quick: bool = False) -> dict:
    corpus_size = 40 if quick else 150
    raws, plans, fmt = _plan_corpus(corpus_size)
    embedding = measure_embedding_determinism(raws, fmt)
    queries = measure_index_queries(plans, probes=min(len(plans), 20 if quick else 60))
    merges = measure_merge_identity(plans)
    campaigns = measure_campaign_modes(quick)
    return {
        "benchmark": "similarity",
        "version": __version__,
        "python": platform.python_version(),
        "quick": quick,
        "numpy_available": arrays.numpy_available(),
        "embedding": embedding,
        "index_queries": queries,
        "merge_identity": merges,
        "campaign_modes": campaigns,
        "tracked": {
            "query_throughput": queries["queries_per_second"],
            "indexed_entries": queries["entries"],
        },
        "invariants": {
            "embedding_deterministic": embedding["deterministic"],
            "embedding_integer_valued": embedding["integer_valued"],
            "numpy_list_identical": queries["numpy_list_identical"],
            "self_nearest_all_zero": queries["self_nearest_all_zero"],
            "merge_union_exact": merges["union_exact"],
            "merge_order_and_layout_independent": merges[
                "order_and_layout_independent"
            ],
            "merge_idempotent": merges["idempotent"],
            "exact_mode_inert": campaigns["exact_mode_inert"],
            "similarity_campaign_deterministic": campaigns[
                "similarity_deterministic"
            ],
            "clusters_cover_all_reports": campaigns["clusters_cover_all_reports"],
            "query_throughput_at_least_25_per_second": (
                queries["queries_per_second"] >= QUERY_THROUGHPUT_FLOOR
            ),
        },
    }


if __name__ == "__main__":
    import json

    print(json.dumps(collect_snapshot(quick="--quick" in sys.argv), indent=2))
