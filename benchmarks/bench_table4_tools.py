"""E-T4 — Table IV: third-party visualization tools survey."""

from repro.study import commercial_fraction, table4_rows


def test_table4_tools(benchmark):
    rows = benchmark(table4_rows)
    benchmark.extra_info["table4"] = rows
    assert len(rows) == 7
    assert commercial_fraction() > 0.8
