"""D-CORR — subquery decorrelation: hash semi/anti joins vs per-row subqueries.

Before PR 5, every ``IN (SELECT …)`` / ``EXISTS`` predicate executed as a
per-row subquery inside a filter: O(outer × inner) work for an uncorrelated
subquery whose result never changes between rows.  The decorrelation rewrite
plans those conjuncts as hash semi/anti joins that materialize the inner
side once — O(outer + inner).  This benchmark measures:

* **IN-subquery microbench** — the same query against the same data with
  ``decorrelate=True`` vs ``decorrelate=False`` (the per-row oracle), for
  both ``IN`` (semi join) and ``NOT IN`` (null-aware anti join).
  Acceptance: the decorrelated ``IN`` plan is ≥ 5x faster, with identical
  results — including the ``NOT IN`` + inner-NULL trap.
* **Operator-name universe** — the set of unified operation names QPG's
  coverage is built from, for a fixed query set across the campaign
  dialects; decorrelation must make it *strictly larger* (semi/anti join
  operators are new coverage, the paper's plan-diversity argument).
* **Warm QPG rate** — the PR-3/PR-4 campaign loop over the generator corpus
  (which now emits IN/EXISTS shapes), guarding the PR-4 throughput floor of
  ~4.9k q/s warm.
"""

import time

from repro.converters import ConverterHub
from repro.dialects import create_dialect
from repro.pipeline import PlanIngestService
from repro.testing.generator import GeneratorConfig, RandomQueryGenerator

import bench_campaign

#: The warm steady-state QPG throughput recorded by PR 4 on this container
#: (BENCH_campaign.json); the decorrelation PR must not regress it.
PR4_WARM_FLOOR_QPS = 4900.0

_MICRO_QUERIES = {
    "in_semi_join": "SELECT COUNT(*) FROM o WHERE o.a IN (SELECT i.x FROM i)",
    "not_in_anti_join": (
        "SELECT COUNT(*) FROM o WHERE o.a NOT IN (SELECT i.x FROM i)"
    ),
}


def _subquery_dialect(outer_rows, inner_rows, decorrelate):
    dialect = create_dialect("postgresql", decorrelate=decorrelate)
    dialect.execute("CREATE TABLE o (a INT)")
    dialect.execute("CREATE TABLE i (x INT)")
    outer_values = ", ".join(
        f"({value % (inner_rows * 2)})" for value in range(outer_rows)
    )
    inner_values = ", ".join(f"({value * 2})" for value in range(inner_rows))
    dialect.execute(f"INSERT INTO o (a) VALUES {outer_values}")
    dialect.execute(f"INSERT INTO i (x) VALUES {inner_values}")
    dialect.analyze_tables()
    return dialect


def measure_in_subquery(outer_rows=1500, inner_rows=300, repeats=3) -> dict:
    """Decorrelated vs per-row timings for the IN / NOT IN microbench."""
    workloads = {}
    for name, query in _MICRO_QUERIES.items():
        timings = {}
        counts = {}
        for label, decorrelate in (("decorrelated", True), ("per_row", False)):
            dialect = _subquery_dialect(outer_rows, inner_rows, decorrelate)
            best = None
            count = None
            for _ in range(repeats):
                started = time.perf_counter()
                rows = dialect.execute(query)
                elapsed = time.perf_counter() - started
                count = rows[0]["COUNT(*)"]
                if best is None or elapsed < best:
                    best = elapsed
            timings[label] = best
            counts[label] = count
        workloads[name] = {
            "decorrelated_seconds": timings["decorrelated"],
            "per_row_seconds": timings["per_row"],
            "speedup": timings["per_row"] / timings["decorrelated"],
            "results_identical": counts["decorrelated"] == counts["per_row"],
            "count": counts["decorrelated"],
        }
    return {
        "outer_rows": outer_rows,
        "inner_rows": inner_rows,
        "repeats": repeats,
        "workloads": workloads,
    }


def measure_null_trap() -> dict:
    """NOT IN + inner NULL: both plan modes must return an empty result."""
    results = {}
    for label, decorrelate in (("decorrelated", True), ("per_row", False)):
        dialect = create_dialect("postgresql", decorrelate=decorrelate)
        dialect.execute("CREATE TABLE o (a INT)")
        dialect.execute("CREATE TABLE i (x INT)")
        dialect.execute("INSERT INTO o (a) VALUES (1), (2), (3)")
        dialect.execute("INSERT INTO i (x) VALUES (1), (NULL)")
        results[label] = dialect.execute(
            "SELECT a FROM o WHERE a NOT IN (SELECT x FROM i)"
        )
    return {
        "identical": results["decorrelated"] == results["per_row"],
        "empty": results["decorrelated"] == [],
    }


_UNIVERSE_SETUP = (
    "CREATE TABLE t (a INT, b INT)",
    "CREATE TABLE s (x INT)",
    "INSERT INTO t (a, b) VALUES (1, 10), (2, 20), (3, 30)",
    "INSERT INTO s (x) VALUES (1), (3)",
)
_UNIVERSE_QUERIES = (
    "SELECT a FROM t",
    "SELECT a FROM t WHERE a IN (SELECT x FROM s)",
    "SELECT a FROM t WHERE a NOT IN (SELECT x FROM s)",
    "SELECT a FROM t WHERE EXISTS (SELECT x FROM s)",
    "SELECT a FROM t WHERE NOT EXISTS (SELECT x FROM s WHERE x > 2)",
    "SELECT t.a FROM t INNER JOIN s ON t.a = s.x",
)


def measure_operator_universe(dbms_names=("postgresql", "mysql", "tidb")) -> dict:
    """Unified operator names reachable with decorrelation on vs off."""
    universes = {}
    for decorrelate in (True, False):
        names = set()
        hub = ConverterHub()
        for dbms in dbms_names:
            dialect = create_dialect(dbms, decorrelate=decorrelate)
            for statement in _UNIVERSE_SETUP:
                dialect.execute(statement)
            converter = hub.converter(dbms)
            for query in _UNIVERSE_QUERIES:
                output = dialect.explain(query, format=converter.formats[0])
                plan = hub.convert(dbms, output.text, converter.formats[0])
                for node in plan.root.walk():
                    names.add(node.operation.identifier)
        universes[decorrelate] = names
    new_names = sorted(universes[True] - universes[False])
    return {
        "dbms": list(dbms_names),
        "decorrelated_size": len(universes[True]),
        "per_row_size": len(universes[False]),
        "new_operator_names": new_names,
        "strictly_larger": universes[True] > universes[False],
    }


def _qpg_corpus(seed, count, allow_subqueries, decorrelate=True):
    config = GeneratorConfig(max_tables=2, allow_subqueries=allow_subqueries)
    generator = RandomQueryGenerator(seed=seed, config=config)
    dialect = create_dialect("postgresql", decorrelate=decorrelate)
    for statement in generator.schema_statements():
        try:
            dialect.execute(statement)
        except Exception:
            continue
    dialect.analyze_tables()
    queries = [generator.select_query() for _ in range(count)]
    return dialect, queries


def measure_warm_qpg(quick: bool = False) -> dict:
    """Warm QPG throughput, on two corpus compositions.

    ``pr4_corpus`` disables the generator's new subquery shapes and is the
    like-for-like control against the PR-4 floor: the decorrelation
    machinery must not slow down the existing lifecycle.  It is measured
    with decorrelation on *and* off, warm passes interleaved, so the
    overhead ratio is robust against host-level throughput drift (the
    shared container varies run to run far more than any code effect) —
    that relative check is the enforced invariant, while the absolute
    PR-4 floor is additionally asserted on full runs.  ``subquery_corpus``
    is the new default generator mix (IN/EXISTS shapes included) — a
    heavier workload per query by construction, recorded for reference,
    not gated on the old floor.
    """
    count = 60 if quick else 150
    warm_repeats = 1 if quick else 6
    # -- pr4 control: decorrelate on vs off over the identical corpus ----
    loops = {}
    for decorrelate in (True, False):
        dialect, queries = _qpg_corpus(1, count, False, decorrelate)
        service = PlanIngestService(hub=ConverterHub())
        cold_seconds, executed, _ = bench_campaign._qpg_pass(
            dialect, service, queries
        )
        loops[decorrelate] = {
            "dialect": dialect,
            "service": service,
            "queries": queries,
            "executed": executed,
            "cold_seconds": cold_seconds,
            "warm_seconds": None,
        }
    for _ in range(warm_repeats):
        for decorrelate in (True, False):
            loop = loops[decorrelate]
            elapsed, _, _ = bench_campaign._qpg_pass(
                loop["dialect"], loop["service"], loop["queries"]
            )
            if loop["warm_seconds"] is None or elapsed < loop["warm_seconds"]:
                loop["warm_seconds"] = elapsed
    on_loop, off_loop = loops[True], loops[False]
    on_rate = on_loop["executed"] / on_loop["warm_seconds"]
    off_rate = off_loop["executed"] / off_loop["warm_seconds"]
    results = {
        "pr4_corpus": {
            "queries": count,
            "executed": on_loop["executed"],
            "cold_queries_per_second": (
                on_loop["executed"] / on_loop["cold_seconds"]
            ),
            "warm_queries_per_second": on_rate,
            "decorrelate_off_warm_queries_per_second": off_rate,
            #: >= 1.0 means the decorrelation machinery costs nothing on a
            #: corpus it never fires on (plans are identical either way).
            "overhead_ratio": on_rate / off_rate if off_rate else 0.0,
            "meets_pr4_floor": on_rate >= PR4_WARM_FLOOR_QPS,
        },
    }
    # -- the new default corpus (informational) --------------------------
    dialect, queries = _qpg_corpus(1, count, True)
    service = PlanIngestService(hub=ConverterHub())
    cold_seconds, executed, _ = bench_campaign._qpg_pass(dialect, service, queries)
    warm_seconds = None
    for _ in range(warm_repeats):
        elapsed, _, _ = bench_campaign._qpg_pass(dialect, service, queries)
        if warm_seconds is None or elapsed < warm_seconds:
            warm_seconds = elapsed
    results["subquery_corpus"] = {
        "queries": count,
        "executed": executed,
        "cold_queries_per_second": executed / cold_seconds if cold_seconds else 0.0,
        "warm_queries_per_second": executed / warm_seconds if warm_seconds else 0.0,
    }
    return results


def collect_snapshot(quick: bool = False) -> dict:
    """The BENCH_decorrelate.json payload."""
    if quick:
        micro = measure_in_subquery(outer_rows=300, inner_rows=80, repeats=1)
    else:
        micro = measure_in_subquery()
    null_trap = measure_null_trap()
    universe = measure_operator_universe()
    warm = measure_warm_qpg(quick=quick)
    warm_qps = warm["pr4_corpus"]["warm_queries_per_second"]
    in_workload = micro["workloads"]["in_semi_join"]
    return {
        "benchmark": "decorrelate",
        "quick": quick,
        "microbench": micro,
        "null_trap": null_trap,
        "operator_universe": universe,
        "warm_qpg": warm,
        "pr4_warm_floor_qps": PR4_WARM_FLOOR_QPS,
        "invariants": {
            "in_subquery_at_least_5x": in_workload["speedup"] >= 5.0,
            "results_identical": all(
                workload["results_identical"]
                for workload in micro["workloads"].values()
            ),
            "null_trap_identical_and_empty": (
                null_trap["identical"] and null_trap["empty"]
            ),
            "operator_universe_strictly_larger": universe["strictly_larger"],
            # The robust regression guard: on a corpus without subqueries
            # the plans are identical with decorrelation on or off, so the
            # warm rates must match (ratio ≈ 1, 10% noise allowance) —
            # measured interleaved, which holds even when the shared
            # container's absolute throughput drifts between runs.
            "no_warm_overhead_vs_decorrelate_off": (
                warm["pr4_corpus"]["overhead_ratio"] >= 0.9
            ),
            # Absolute throughput is machine-dependent, so the PR-4 floor is
            # only enforced on the reference container's full run; the quick
            # (CI smoke) mode records the rate without gating on it.
            "warm_qpg_at_least_pr4_floor": (
                True if quick else warm_qps >= PR4_WARM_FLOOR_QPS
            ),
        },
    }


# -- pytest entry points (the driver's --suite mode) --------------------------


def test_decorrelated_microbench_identical_results():
    micro = measure_in_subquery(outer_rows=120, inner_rows=40, repeats=1)
    assert all(
        workload["results_identical"] for workload in micro["workloads"].values()
    )


def test_null_trap_identical_and_empty():
    null_trap = measure_null_trap()
    assert null_trap["identical"] and null_trap["empty"]


def test_operator_universe_strictly_larger():
    assert measure_operator_universe()["strictly_larger"]
