"""E-EXEC — row vs vectorized executor throughput (PR-4 batches, PR-6 arrays).

PR 3 cached the pure lex→parse→plan stages; the remaining warm-loop
wall-clock lives in the executor.  PR 4 added the columnar batch engine
(:mod:`repro.engine.vectorized`); PR 6 backs its batches with typed NumPy
arrays plus validity bitmaps (:mod:`repro.engine.arrays`).  This benchmark
measures all three engines on identical plans:

* ``row`` — the per-row oracle :class:`repro.engine.Executor`;
* ``vectorized_list`` — the batch engine over plain-list columns (numpy
  kernels disabled via :func:`repro.engine.arrays.set_numpy_enabled`), the
  floor every installation gets;
* ``vectorized_numpy`` — the batch engine over :class:`ArrayColumn`
  snapshots (only measured when numpy is importable).

Sections:

* **Operator microbenches** — scan+filter, projection arithmetic, hash
  join, group-by aggregation, and sort/distinct/limit workloads over a
  generated table.  Acceptance: numpy-vectorized ≥ 10x row throughput on
  the scan+filter microbench (list-vectorized keeps the PR-4 ≥ 2x floor).
* **Corpus pass** — the generator corpus end-to-end (``dialect.execute``)
  under each engine; the per-engine speedup over the row path is the
  tracked campaign-shaped number (this is what the adaptive
  ``ROW_PATH_THRESHOLD`` routing is tuned against).
* **Equivalence** — every workload's result rows must be identical across
  all engines, and a small two-DBMS campaign must produce byte-identical
  coverage fingerprints and Table V rows under ``row`` and ``vectorized``
  executors (the fuzz harness in tests/test_vectorized_equivalence.py
  asserts the row-level half far more broadly).
"""

import random
import time

from repro.dialects import create_dialect
from repro.engine import Executor, VectorizedExecutor, arrays
from repro.sqlparser.parser import parse_sql
from repro.testing.campaign import TestingCampaign

#: The microbench workloads: (name, SQL) over the tables built below.
WORKLOADS = [
    (
        "scan_filter",
        "SELECT c0, c2 FROM big WHERE c1 BETWEEN 100 AND 300",
    ),
    (
        "scan_project",
        "SELECT c0 + c1, ABS(c2), c3 * 2 FROM big WHERE c2 > 0",
    ),
    (
        "hash_join",
        "SELECT big.c0, dim.d1 FROM big JOIN dim ON big.c3 = dim.d0 WHERE dim.d1 > 10",
    ),
    (
        "aggregate",
        "SELECT c3, COUNT(*), SUM(c1), AVG(c2), MIN(c0), MAX(c0) FROM big GROUP BY c3",
    ),
    (
        "sort_distinct",
        "SELECT DISTINCT c3 FROM big ORDER BY c3 DESC LIMIT 25",
    ),
]


def build_database(rows: int = 20000, seed: int = 11):
    """A PostgreSQL dialect with a fact table and a small dimension table."""
    dialect = create_dialect("postgresql")
    dialect.execute("CREATE TABLE big (c0 INT, c1 INT, c2 INT, c3 INT)")
    dialect.execute("CREATE TABLE dim (d0 INT, d1 INT)")
    rng = random.Random(seed)
    dialect.database.insert_rows(
        "big",
        [
            {
                "c0": i,
                "c1": rng.randint(0, 2000),
                "c2": rng.randint(-500, 500),
                "c3": rng.randint(0, 50),
            }
            for i in range(rows)
        ],
    )
    dialect.database.insert_rows(
        "dim", [{"d0": i, "d1": rng.randint(0, 100)} for i in range(51)]
    )
    dialect.analyze_tables()
    return dialect


def _engine_modes():
    """The measured engines: (label, executor kind, numpy enabled)."""
    modes = [("row", "row", False), ("vectorized_list", "vectorized", False)]
    if arrays.numpy_available():
        modes.append(("vectorized_numpy", "vectorized", True))
    return modes


def _time_plan(executor, plan, repeats: int) -> dict:
    """Best-of-*repeats* wall-clock for one plan on one executor."""
    best = None
    rows = None
    for _ in range(repeats):
        started = time.perf_counter()
        rows = executor.execute(plan)
        elapsed = time.perf_counter() - started
        if best is None or elapsed < best:
            best = elapsed
    return {"seconds": best, "rows_out": len(rows)}, rows


def measure_workloads(table_rows: int = 20000, seed: int = 11, repeats: int = 5) -> dict:
    """Run every microbench workload under each engine.

    Toggling :func:`arrays.set_numpy_enabled` between timings bumps the
    snapshot state token, so each engine sees columnar snapshots built
    under its own representation (list vs typed array); the prior state is
    restored afterwards.
    """
    dialect = build_database(rows=table_rows, seed=seed)
    saved = arrays.numpy_enabled()
    results = {}
    try:
        for name, query in WORKLOADS:
            statement = parse_sql(query)[0]
            entry = {"query": query}
            reference_rows = None
            identical = True
            for label, kind, use_numpy in _engine_modes():
                arrays.set_numpy_enabled(use_numpy)
                # Each engine compiles (and caches) its closures on its own
                # plan instance, exactly as the prepared-query cache shares
                # plans within one dialect.
                plan = dialect.planner.plan_statement(statement)
                if kind == "row":
                    executor = Executor(dialect.database, dialect.planner)
                else:
                    # Threshold 0: the microbench tables are large, but the
                    # point here is to measure the batch path itself.
                    executor = VectorizedExecutor(
                        dialect.database, dialect.planner, row_path_threshold=0
                    )
                timing, rows = _time_plan(executor, plan, repeats)
                entry[label] = timing
                if reference_rows is None:
                    reference_rows = rows
                elif rows != reference_rows:
                    identical = False
                if label != "row":
                    entry["speedup_" + label[len("vectorized_"):]] = (
                        entry["row"]["seconds"] / timing["seconds"]
                        if timing["seconds"]
                        else 0.0
                    )
            # The headline number: the best engine this installation gets.
            entry["speedup"] = entry.get(
                "speedup_numpy", entry.get("speedup_list", 0.0)
            )
            entry["results_identical"] = identical
            results[name] = entry
    finally:
        arrays.set_numpy_enabled(saved)
    return {
        "table_rows": table_rows,
        "seed": seed,
        "repeats": repeats,
        "engines": [label for label, _, _ in _engine_modes()],
        "workloads": results,
    }


def measure_corpus(seed: int = 1, count: int = 120, repeats: int = 3) -> dict:
    """The generator corpus end-to-end under each engine.

    Uses ``dialect.execute`` (prepared cache on), so the numbers are the
    campaign-shaped view: per-query wall-clock once parsing and planning
    are cache hits, i.e. the execute stage dominates.  Most corpus tables
    are tiny, so this is the workload the adaptive ``ROW_PATH_THRESHOLD``
    routing (and the ``ARRAY_MIN_ROWS`` snapshot gate) is tuned against.
    """
    import bench_campaign

    queries = bench_campaign.build_corpus(seed, count)
    saved = arrays.numpy_enabled()
    timings = {}
    executed = {}
    try:
        for label, kind, use_numpy in _engine_modes():
            arrays.set_numpy_enabled(use_numpy)
            dialect, _ = bench_campaign._build_dialect(seed)
            dialect.set_executor(kind)
            best = None
            for _ in range(repeats):
                ok = 0
                started = time.perf_counter()
                for query in queries:
                    try:
                        dialect.execute(query)
                        ok += 1
                    except Exception:
                        continue
                elapsed = time.perf_counter() - started
                if best is None or elapsed < best:
                    best = elapsed
                executed[label] = ok
            timings[label] = best
    finally:
        arrays.set_numpy_enabled(saved)
    assert len(set(executed.values())) == 1  # every engine executes the same set
    payload = {
        "corpus": {"queries": len(queries), "executed": executed["row"], "seed": seed},
        "row_path_threshold": VectorizedExecutor.ROW_PATH_THRESHOLD,
        "array_min_rows": arrays.ARRAY_MIN_ROWS,
    }
    for label in timings:
        payload[label] = {
            "seconds": timings[label],
            "queries_per_second": executed[label] / timings[label]
            if timings[label]
            else 0.0,
        }
        if label != "row":
            payload["speedup_" + label[len("vectorized_"):]] = (
                timings["row"] / timings[label] if timings[label] else 0.0
            )
    # The tracked campaign-shaped number: best engine vs the row oracle.
    payload["speedup"] = payload.get(
        "speedup_numpy", payload.get("speedup_list", 0.0)
    )
    return payload


def measure_campaign_equivalence(queries_per_dbms: int = 25, cert_pairs: int = 8) -> dict:
    """Row vs vectorized campaigns: coverage and Table V must coincide.

    Runs the same two-DBMS campaign under each engine and compares the
    structural plan-fingerprint set (the paper's coverage currency) and the
    Table V summary rows byte-for-byte.
    """
    saved = arrays.numpy_enabled()
    results = {}
    try:
        for label, kind, use_numpy in _engine_modes():
            arrays.set_numpy_enabled(use_numpy)
            campaign = TestingCampaign(
                dbms_names=["postgresql", "mysql"],
                queries_per_dbms=queries_per_dbms,
                cert_pairs_per_dbms=cert_pairs,
                executor=kind,
            )
            results[label] = campaign.run()
    finally:
        arrays.set_numpy_enabled(saved)
    reference = results["row"]
    return {
        "queries_per_dbms": queries_per_dbms,
        "cert_pairs_per_dbms": cert_pairs,
        "engines": sorted(results),
        "unique_plans": reference.unique_plans,
        "coverage_identical": all(
            result.plan_fingerprints == reference.plan_fingerprints
            for result in results.values()
        ),
        "reports_identical": all(
            result.table5_rows() == reference.table5_rows()
            for result in results.values()
        ),
    }


def collect_snapshot(quick: bool = False) -> dict:
    """The BENCH_executor.json payload."""
    if quick:
        workloads = measure_workloads(table_rows=4000, repeats=2)
        corpus = measure_corpus(count=40, repeats=1)
        campaign = measure_campaign_equivalence(queries_per_dbms=8, cert_pairs=3)
    else:
        workloads = measure_workloads()
        corpus = measure_corpus()
        campaign = measure_campaign_equivalence()
    per_workload = workloads["workloads"]
    invariants = {
        "scan_filter_at_least_2x": per_workload["scan_filter"]["speedup"] >= 2.0,
        "all_results_identical": all(
            entry["results_identical"] for entry in per_workload.values()
        ),
        "campaign_coverage_identical": campaign["coverage_identical"],
        "campaign_reports_identical": campaign["reports_identical"],
    }
    if arrays.numpy_available() and not quick:
        # The PR-6 acceptance bar; quick mode's 4k-row table is too small
        # for a stable 10x reading, so only the full run enforces it.
        invariants["scan_filter_at_least_10x"] = (
            per_workload["scan_filter"].get("speedup_numpy", 0.0) >= 10.0
        )
        # PR 8: the sort/searchsorted probe kernel must put the array path
        # ahead of (or at least level with) the plain-list build/probe loop
        # on the join microbench — before it, hash_join was the one workload
        # where numpy trailed the list engine.
        invariants["hash_join_numpy_at_least_list"] = (
            per_workload["hash_join"].get("speedup_numpy", 0.0)
            >= per_workload["hash_join"].get("speedup_list", 0.0)
        )
    return {
        "benchmark": "executor",
        "quick": quick,
        "numpy_available": arrays.numpy_available(),
        "workloads": workloads,
        "corpus_execute": corpus,
        "campaign_equivalence": campaign,
        "tracked": {
            # The campaign-shaped speedup the adaptive routing optimises;
            # regressions here mean the thresholds need re-tuning.
            "corpus_speedup": corpus["speedup"],
            "scan_filter_speedup": per_workload["scan_filter"]["speedup"],
        },
        "invariants": invariants,
    }


# -- pytest-benchmark entry points (the driver's --suite mode) ----------------


def test_scan_filter_vectorized_speedup(benchmark):
    dialect = build_database(rows=4000)
    statement = parse_sql(WORKLOADS[0][1])[0]
    plan = dialect.planner.plan_statement(statement)
    executor = VectorizedExecutor(
        dialect.database, dialect.planner, row_path_threshold=0
    )
    executor.execute(plan)  # warm the compiled-batch caches

    rows = benchmark(lambda: executor.execute(plan))
    oracle = Executor(dialect.database, dialect.planner)
    assert rows == oracle.execute(dialect.planner.plan_statement(statement))


def test_workload_results_identical():
    snapshot = measure_workloads(table_rows=2000, repeats=1)
    assert all(
        entry["results_identical"] for entry in snapshot["workloads"].values()
    )
