"""E-EXEC — row vs vectorized executor throughput (the PR-4 batch engine).

PR 3 cached the pure lex→parse→plan stages; the remaining warm-loop
wall-clock lives in the executor, which materializes one dictionary, one
evaluation context, and one closure call per row per operator.  The
vectorized executor (:mod:`repro.engine.vectorized`) processes columnar
chunks fed by cached table snapshots instead, and this benchmark measures
what that buys:

* **Operator microbenches** — scan+filter, projection arithmetic, hash
  join, group-by aggregation, and sort/distinct/limit workloads over a
  generated table, executed by both engines on identical plans.
  Acceptance: vectorized ≥ 2x row throughput on the scan+filter microbench.
* **Corpus pass** — the generator corpus end-to-end (``dialect.execute``)
  under each executor, the campaign-shaped view of the same win.
* **Equivalence** — every workload's result rows must be identical between
  the engines (the fuzz harness in tests/test_vectorized_equivalence.py
  asserts this far more broadly; the benchmark re-checks what it times).
"""

import random
import time

from repro.dialects import create_dialect
from repro.engine import Executor, VectorizedExecutor
from repro.sqlparser.parser import parse_sql

#: The microbench workloads: (name, SQL) over the tables built below.
WORKLOADS = [
    (
        "scan_filter",
        "SELECT c0, c2 FROM big WHERE c1 BETWEEN 100 AND 300",
    ),
    (
        "scan_project",
        "SELECT c0 + c1, ABS(c2), c3 * 2 FROM big WHERE c2 > 0",
    ),
    (
        "hash_join",
        "SELECT big.c0, dim.d1 FROM big JOIN dim ON big.c3 = dim.d0 WHERE dim.d1 > 10",
    ),
    (
        "aggregate",
        "SELECT c3, COUNT(*), SUM(c1), AVG(c2), MIN(c0), MAX(c0) FROM big GROUP BY c3",
    ),
    (
        "sort_distinct",
        "SELECT DISTINCT c3 FROM big ORDER BY c3 DESC LIMIT 25",
    ),
]


def build_database(rows: int = 20000, seed: int = 11):
    """A PostgreSQL dialect with a fact table and a small dimension table."""
    dialect = create_dialect("postgresql")
    dialect.execute("CREATE TABLE big (c0 INT, c1 INT, c2 INT, c3 INT)")
    dialect.execute("CREATE TABLE dim (d0 INT, d1 INT)")
    rng = random.Random(seed)
    dialect.database.insert_rows(
        "big",
        [
            {
                "c0": i,
                "c1": rng.randint(0, 2000),
                "c2": rng.randint(-500, 500),
                "c3": rng.randint(0, 50),
            }
            for i in range(rows)
        ],
    )
    dialect.database.insert_rows(
        "dim", [{"d0": i, "d1": rng.randint(0, 100)} for i in range(51)]
    )
    dialect.analyze_tables()
    return dialect


def _time_plan(executor, plan, repeats: int) -> dict:
    """Best-of-*repeats* wall-clock for one plan on one executor."""
    best = None
    rows = None
    for _ in range(repeats):
        started = time.perf_counter()
        rows = executor.execute(plan)
        elapsed = time.perf_counter() - started
        if best is None or elapsed < best:
            best = elapsed
    return {"seconds": best, "rows_out": len(rows)}, rows


def measure_workloads(table_rows: int = 20000, seed: int = 11, repeats: int = 5) -> dict:
    """Run every microbench workload under both executors."""
    dialect = build_database(rows=table_rows, seed=seed)
    row_executor = Executor(dialect.database, dialect.planner)
    vectorized_executor = VectorizedExecutor(dialect.database, dialect.planner)
    results = {}
    for name, query in WORKLOADS:
        statement = parse_sql(query)[0]
        # Each executor compiles (and caches) its closures on its own plan
        # instance, exactly as the prepared-query cache shares plans within
        # one dialect.
        row_plan = dialect.planner.plan_statement(statement)
        vectorized_plan = dialect.planner.plan_statement(statement)
        row_timing, row_rows = _time_plan(row_executor, row_plan, repeats)
        vectorized_timing, vectorized_rows = _time_plan(
            vectorized_executor, vectorized_plan, repeats
        )
        results[name] = {
            "query": query,
            "row": row_timing,
            "vectorized": vectorized_timing,
            "speedup": row_timing["seconds"] / vectorized_timing["seconds"]
            if vectorized_timing["seconds"]
            else 0.0,
            "results_identical": row_rows == vectorized_rows,
        }
    return {
        "table_rows": table_rows,
        "seed": seed,
        "repeats": repeats,
        "workloads": results,
    }


def measure_corpus(seed: int = 1, count: int = 120, repeats: int = 3) -> dict:
    """The generator corpus end-to-end under each executor.

    Uses ``dialect.execute`` (prepared cache on), so the numbers are the
    campaign-shaped view: per-query wall-clock once parsing and planning
    are cache hits, i.e. the execute stage dominates.
    """
    import bench_campaign

    queries = bench_campaign.build_corpus(seed, count)
    timings = {}
    executed = {}
    for kind in ("row", "vectorized"):
        dialect, _ = bench_campaign._build_dialect(seed)
        dialect.set_executor(kind)
        best = None
        for _ in range(repeats):
            ok = 0
            started = time.perf_counter()
            for query in queries:
                try:
                    dialect.execute(query)
                    ok += 1
                except Exception:
                    continue
            elapsed = time.perf_counter() - started
            if best is None or elapsed < best:
                best = elapsed
            executed[kind] = ok
        timings[kind] = best
    assert executed["row"] == executed["vectorized"]
    return {
        "corpus": {"queries": len(queries), "executed": executed["row"], "seed": seed},
        "row": {
            "seconds": timings["row"],
            "queries_per_second": executed["row"] / timings["row"]
            if timings["row"]
            else 0.0,
        },
        "vectorized": {
            "seconds": timings["vectorized"],
            "queries_per_second": executed["vectorized"] / timings["vectorized"]
            if timings["vectorized"]
            else 0.0,
        },
        "speedup": timings["row"] / timings["vectorized"]
        if timings["vectorized"]
        else 0.0,
    }


def collect_snapshot(quick: bool = False) -> dict:
    """The BENCH_executor.json payload."""
    if quick:
        workloads = measure_workloads(table_rows=4000, repeats=2)
        corpus = measure_corpus(count=40, repeats=1)
    else:
        workloads = measure_workloads()
        corpus = measure_corpus()
    per_workload = workloads["workloads"]
    return {
        "benchmark": "executor",
        "quick": quick,
        "workloads": workloads,
        "corpus_execute": corpus,
        "invariants": {
            "scan_filter_at_least_2x": per_workload["scan_filter"]["speedup"] >= 2.0,
            "all_results_identical": all(
                entry["results_identical"] for entry in per_workload.values()
            ),
        },
    }


# -- pytest-benchmark entry points (the driver's --suite mode) ----------------


def test_scan_filter_vectorized_speedup(benchmark):
    dialect = build_database(rows=4000)
    statement = parse_sql(WORKLOADS[0][1])[0]
    plan = dialect.planner.plan_statement(statement)
    executor = VectorizedExecutor(dialect.database, dialect.planner)
    executor.execute(plan)  # warm the compiled-batch caches

    rows = benchmark(lambda: executor.execute(plan))
    oracle = Executor(dialect.database, dialect.planner)
    assert rows == oracle.execute(dialect.planner.plan_statement(statement))


def test_workload_results_identical():
    snapshot = measure_workloads(table_rows=2000, repeats=1)
    assert all(
        entry["results_identical"] for entry in snapshot["workloads"].values()
    )
