"""E-F2 — Figure 2: one DBMS-agnostic QPG/CERT implementation over three DBMSs.

Reproduces the figure's running example: ``EXPLAIN SELECT * FROM t0 WHERE
c0 < 5`` is converted from the raw MySQL / PostgreSQL / TiDB plans into
unified plans that a single QPG/CERT implementation can consume.
"""

from repro.converters import converter_for
from repro.core import OperationCategory, structural_fingerprint
from repro.dialects import create_dialect

QUERY = "SELECT * FROM t0 WHERE c0 < 5"


def _convert_all():
    unified = {}
    for name in ("mysql", "postgresql", "tidb"):
        dialect = create_dialect(name)
        dialect.execute("CREATE TABLE t0 (c0 INT, c1 INT)")
        dialect.execute(
            "INSERT INTO t0 (c0, c1) VALUES " + ", ".join(f"({i}, {i})" for i in range(50))
        )
        dialect.analyze_tables()
        converter = converter_for(name)
        output = dialect.explain(QUERY, format=converter.formats[0])
        unified[name] = converter.convert(output.text, format=converter.formats[0])
    return unified


def test_fig2_unified_plans(benchmark):
    unified = benchmark(_convert_all)
    summary = {}
    for name, plan in unified.items():
        identifiers = [node.operation.identifier for node in plan.nodes()]
        summary[name] = identifiers
        # Every DBMS's plan contains the Producer->Full Table Scan step.
        assert "Full Table Scan" in identifiers
        assert plan.count_categories()[OperationCategory.PRODUCER] >= 1
        # Fingerprints are stable so QPG can deduplicate plans per DBMS.
        assert structural_fingerprint(plan) == structural_fingerprint(plan.copy())
    benchmark.extra_info["unified_operations"] = summary
    # TiDB additionally exposes the distributed collect step (Executor->Collect).
    assert "Collect" in summary["tidb"]
