"""E-T5 — Table V: bugs found by QPG and CERT with UPlan.

The bounded campaign against the fault-injected MySQL / PostgreSQL / TiDB
simulations must rediscover all 17 known bugs with the paper's distribution
(MySQL 7, PostgreSQL 1, TiDB 9; QPG finds the logic bugs, CERT the
performance bugs).
"""

from repro.testing import KNOWN_BUGS, TestingCampaign


def _run_campaign():
    campaign = TestingCampaign(queries_per_dbms=80, cert_pairs_per_dbms=40)
    return campaign.run()


def test_table5_bug_campaign(benchmark):
    result = benchmark.pedantic(_run_campaign, rounds=1, iterations=1)
    benchmark.extra_info["table5"] = result.table5_rows()
    benchmark.extra_info["queries_generated"] = result.queries_generated
    assert len(result.reports) == len(KNOWN_BUGS) == 17
    assert result.by_dbms() == {"mysql": 7, "postgresql": 1, "tidb": 9}
    qpg_found = sum(1 for report in result.reports if report.found_by == "QPG")
    cert_found = sum(1 for report in result.reports if report.found_by == "CERT")
    assert qpg_found == 13 and cert_found == 4
