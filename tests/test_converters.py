"""Tests for the DBMS-specific → unified plan converters (integration with dialects)."""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.converters import available_converters, converter_for
from repro.core import OperationCategory, PropertyCategory, structural_fingerprint, validate_plan
from repro.dialects import create_dialect
from repro.errors import ConversionError
from repro.storage.timeseries_store import Point

# The schema/data/query the relational conversions run over live in the
# shared ``tests/conftest.py`` (``relational_dialect`` / ``relational_query``
# fixtures), deduplicated with the pipeline corpus helpers.

RELATIONAL_FORMATS = [
    ("postgresql", "text"),
    ("postgresql", "json"),
    ("mysql", "json"),
    ("mysql", "table"),
    ("mysql", "tree"),
    ("tidb", "table"),
    ("tidb", "text"),
    ("tidb", "json"),
    ("sqlite", "text"),
    ("sqlserver", "xml"),
    ("sqlserver", "text"),
    ("sparksql", "text"),
]


class TestRegistry:
    def test_all_nine_converters_registered(self):
        assert len(available_converters()) == 9

    def test_unknown_converter(self):
        with pytest.raises(ConversionError):
            converter_for("oracle")

    def test_unsupported_format(self):
        with pytest.raises(ConversionError):
            converter_for("sqlite").convert("whatever", format="json")


class TestRelationalConversion:
    @pytest.mark.parametrize("name,format_name", RELATIONAL_FORMATS)
    def test_convert_produces_valid_plan(self, name, format_name, relational_dialect, relational_query):
        dialect = relational_dialect(name)
        serialized = dialect.explain(relational_query, format=format_name).text
        plan = converter_for(name).convert(serialized, format=format_name)
        assert plan.source_dbms == name
        assert plan.node_count() >= 2
        assert validate_plan(plan) == []

    @pytest.mark.parametrize("name,format_name", RELATIONAL_FORMATS)
    def test_conversion_finds_producers(self, name, format_name, relational_dialect, relational_query):
        dialect = relational_dialect(name)
        serialized = dialect.explain(relational_query, format=format_name).text
        plan = converter_for(name).convert(serialized, format=format_name)
        counts = plan.count_categories()
        assert counts[OperationCategory.PRODUCER] >= 1

    def test_postgresql_text_and_json_agree_structurally(self, relational_dialect, relational_query):
        dialect = relational_dialect("postgresql")
        converter = converter_for("postgresql")
        text_plan = converter.convert(dialect.explain(relational_query, format="text").text, format="text")
        json_plan = converter.convert(dialect.explain(relational_query, format="json").text, format="json")
        assert structural_fingerprint(text_plan) == structural_fingerprint(json_plan)

    def test_figure2_full_table_scan_mapping(self, relational_dialect):
        # Figure 2: EXPLAIN SELECT * FROM t0 WHERE c0 < 5 maps to a single
        # Producer->Full Table Scan for PostgreSQL/MySQL, plus an
        # Executor->Collect for TiDB's reader.
        query = "SELECT * FROM t0 WHERE c1 < 5"
        for name in ("postgresql", "mysql"):
            dialect = relational_dialect(name)
            converter = converter_for(name)
            plan = converter.convert(
                dialect.explain(query, format=converter.formats[0]).text,
                format=converter.formats[0],
            )
            names = [node.operation.identifier for node in plan.nodes()]
            assert "Full Table Scan" in names
        tidb = relational_dialect("tidb")
        tidb_plan = converter_for("tidb").convert(tidb.explain(query, format="table").text, format="table")
        identifiers = [node.operation.identifier for node in tidb_plan.nodes()]
        assert "Full Table Scan" in identifiers
        assert "Collect" in identifiers

    def test_tidb_unstable_suffix_stripped(self, relational_dialect, relational_query):
        dialect = relational_dialect("tidb")
        converter = converter_for("tidb")
        first = converter.convert(dialect.explain(relational_query, format="table").text, format="table")
        second = converter.convert(dialect.explain(relational_query, format="table").text, format="table")
        # Different runs produce different operator ids, but the structural
        # fingerprint must be identical (the original QPG parser bug).
        assert structural_fingerprint(first) == structural_fingerprint(second)
        assert any(node.operation.identifier == "Full Table Scan" for node in first.nodes())

    def test_postgresql_properties_categorised(self, relational_dialect):
        dialect = relational_dialect("postgresql")
        converter = converter_for("postgresql")
        plan = converter.convert(dialect.explain("SELECT * FROM t2 WHERE c0 < 10", format="text").text)
        scan = plan.root.walk().__next__()
        categories = {prop.category for prop in plan.all_properties()}
        assert PropertyCategory.COST in categories
        assert PropertyCategory.CARDINALITY in categories
        assert PropertyCategory.CONFIGURATION in categories
        assert PropertyCategory.STATUS in categories

    def test_sqlite_index_condition_property(self, relational_dialect):
        dialect = relational_dialect("sqlite")
        plan = converter_for("sqlite").convert(dialect.explain("SELECT c0 FROM t2 WHERE c0 < 10").text)
        producers = plan.operations_in(OperationCategory.PRODUCER)
        assert producers
        assert any(
            prop.category is PropertyCategory.CONFIGURATION
            for node in producers
            for prop in node.properties
        )

    def test_unknown_operation_falls_back_to_executor(self):
        converter = converter_for("postgresql")
        plan = converter.convert(
            "Fancy New Operator  (cost=0.00..1.00 rows=1 width=4)", format="text"
        )
        assert plan.root.operation.category is OperationCategory.EXECUTOR

    def test_garbage_input_raises(self):
        with pytest.raises(ConversionError):
            converter_for("postgresql").convert("", format="text")
        with pytest.raises(ConversionError):
            converter_for("mysql").convert("not json", format="json")
        with pytest.raises(ConversionError):
            converter_for("sqlserver").convert("<broken", format="xml")


class TestNoSQLConversion:
    def test_mongodb_explain_conversion(self):
        dialect = create_dialect("mongodb")
        dialect.insert_many("users", [{"_id": i, "age": i} for i in range(20)])
        dialect.create_index("users", "age")
        document = dialect.explain_find("users", {"age": {"$lt": 10}}, sort=[("age", 1)], limit=5)
        plan = converter_for("mongodb").convert(json.dumps(document), format="json")
        identifiers = [node.operation.identifier for node in plan.nodes()]
        assert "Index Scan" in identifiers  # IXSCAN
        assert "Document Fetch" in identifiers  # FETCH
        assert plan.count_categories()[OperationCategory.JOIN] == 0

    def test_neo4j_conversion_categories(self):
        dialect = create_dialect("neo4j")
        for i in range(5):
            node_a = dialect.store.create_node(["Item"], {"qid": f"Q{i}"})
            node_b = dialect.store.create_node(["Item"], {"qid": f"R{i}"})
            dialect.store.create_relationship(node_a.node_id, "P31", node_b.node_id)
        output = dialect.explain("MATCH (s:Item)-[r:P31]->(o:Item) RETURN s.qid, count(o.qid)", format="json")
        plan = converter_for("neo4j").convert(output.text, format="json")
        counts = plan.count_categories()
        assert counts[OperationCategory.JOIN] >= 1  # relationship scan / expand
        assert counts[OperationCategory.FOLDER] >= 1  # EagerAggregation
        assert counts[OperationCategory.PROJECTOR] >= 1  # ProduceResults

    def test_neo4j_text_conversion(self):
        dialect = create_dialect("neo4j")
        dialect.store.create_node(["Item"], {"qid": "Q1"})
        output = dialect.explain("MATCH (s:Item) RETURN s.qid", format="text")
        plan = converter_for("neo4j").convert(output.text, format="text")
        assert plan.node_count() >= 2
        assert plan.plan_property_value("Database Accesses") is not None

    def test_influxdb_plan_has_no_tree(self):
        dialect = create_dialect("influxdb")
        dialect.write_points("m", [Point(timestamp=i, fields={"v": 1.0}) for i in range(10)])
        output = dialect.explain("SELECT v FROM m")
        plan = converter_for("influxdb").convert(output.text)
        assert plan.root is None
        assert plan.node_count() == 0
        assert len(plan.properties) >= 5
        assert validate_plan(plan) == []


class TestUnknownNameFallback:
    """Every dialect converter must map unknown operations to the generic
    category without raising — the forward-compatibility guarantee of
    Section IV-B — property-based over random native names."""

    weird_names = st.text(min_size=1, max_size=40)

    @given(name=weird_names)
    @settings(max_examples=60, deadline=None)
    def test_operation_resolution_never_raises(self, name):
        from repro.core import OperationCategory

        for dbms in available_converters():
            operation = converter_for(dbms).operation(name)
            assert isinstance(operation.category, OperationCategory)
            assert operation.identifier

    @given(name=weird_names, value=st.one_of(st.none(), st.integers(), st.text(max_size=10), st.booleans()))
    @settings(max_examples=60, deadline=None)
    def test_property_resolution_never_raises(self, name, value):
        from repro.core import PropertyCategory as PC

        for dbms in available_converters():
            prop = converter_for(dbms).property(name, value)
            assert isinstance(prop.category, PC)
            assert prop.identifier

    def test_definitely_unknown_names_get_generic_category(self):
        for dbms in available_converters():
            converter = converter_for(dbms)
            operation = converter.operation("Frobnicate Quux Step 7")
            assert operation.category is OperationCategory.EXECUTOR
            prop = converter.property("Imaginary Metric Xyz", 1)
            assert prop.category is PropertyCategory.STATUS
