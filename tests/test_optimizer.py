"""The cost-based multi-join optimizer and its as-written oracle.

PR 8 gives the planner a real optimization phase: WHERE conjuncts sink
below joins to their minimal scope, multi-way inner joins are reordered by
a DP/memo enumeration over the cost model, and every operator carries a
statically proven intermediate-size bound (Chen & Schneider, arXiv
2412.13104) that caps estimates, prunes the memo, and doubles as an
EXPLAIN ANALYZE oracle.  ``optimize_joins=False`` keeps the as-written
syntactic plan; the two settings must agree on every result row while
being free to disagree on plan shape — exactly the ``decorrelate=False``
contract.  This file pins:

* pushdown plan shapes (including preserved-side pushdown under outer
  joins and the never-below-the-null-extended-side safety rule),
* the join-condition orientation contract (a DP-built ``(B ⋈ A)`` must
  re-orient ``a.x = b.x``, or both executors silently match nothing),
* the bound algebra, runtime violation judging, and the Bound campaign
  oracle (silent on correct engines, loud under injected faults),
* toggle hygiene: ``set_optimize_joins`` drops the prepared-query cache,
  and fuzzing ``optimize_joins`` x executor x cache never changes results.
"""

import pytest

from repro.dialects import create_dialect
from repro.dialects.prepared import reset_runtime
from repro.optimizer import bounds
from repro.optimizer.physical import JOIN_KINDS, OpKind, PhysicalNode, make_node
from repro.sqlparser.parser import parse_sql
from repro.testing import SizeBoundChecker
from repro.testing.bugs import FaultyDialect, KnownBug, bugs_for
from repro.testing.campaign import TestingCampaign
from repro.testing.generator import GeneratorConfig, RandomQueryGenerator


def _plan(dialect, query):
    return dialect.planner.plan_statement(parse_sql(query)[0])


def _scan_by_alias(plan, alias):
    for node in plan.walk():
        if node.kind is OpKind.SEQ_SCAN and node.info.get("alias") == alias:
            return node
    raise AssertionError(f"no SeqScan for alias {alias!r} in\n{plan.describe()}")


def _chain_dialect(tables=3, rows=5, optimize_joins=True, executor=None):
    options = {"optimize_joins": optimize_joins}
    if executor is not None:
        options["executor"] = executor
    dialect = create_dialect("postgresql", **options)
    for table in range(1, tables + 1):
        dialect.execute(f"CREATE TABLE t{table} (k INT, v INT)")
        values = ", ".join(f"({value}, {value * table})" for value in range(rows))
        dialect.execute(f"INSERT INTO t{table} (k, v) VALUES {values}")
    dialect.analyze_tables()
    return dialect


class TestPredicatePushdown:
    """WHERE conjuncts sink to their minimal safe scope."""

    SETUP = (
        "CREATE TABLE t (a INT, b INT)",
        "CREATE TABLE s (x INT, y INT)",
        "INSERT INTO t (a, b) VALUES (1, 10), (2, 20), (3, 30)",
        "INSERT INTO s (x, y) VALUES (1, 100), (3, 300)",
    )

    def _dialect(self, optimize_joins=True):
        dialect = create_dialect("postgresql", optimize_joins=optimize_joins)
        for statement in self.SETUP:
            dialect.execute(statement)
        dialect.analyze_tables()
        return dialect

    def test_single_alias_conjunct_reaches_the_scan(self):
        dialect = self._dialect()
        plan = _plan(dialect, "SELECT t.a FROM t, s WHERE t.a = s.x AND t.b > 15")
        assert _scan_by_alias(plan, "t").info.get("filter") is not None
        assert _scan_by_alias(plan, "s").info.get("filter") is None
        # The equi-conjunct became the join condition; nothing is left for
        # a residual filter above the join.
        assert not plan.find(OpKind.FILTER)

    def test_as_written_keeps_every_conjunct_above_the_joins(self):
        dialect = self._dialect(optimize_joins=False)
        plan = _plan(dialect, "SELECT t.a FROM t, s WHERE t.a = s.x AND t.b > 15")
        assert _scan_by_alias(plan, "t").info.get("filter") is None
        assert _scan_by_alias(plan, "s").info.get("filter") is None
        filters = plan.find(OpKind.FILTER)
        assert filters, "as-written plan must filter above the join"
        joins = [node for node in plan.walk() if node.kind in JOIN_KINDS]
        assert joins, "as-written plan still joins, just in written order"

    def test_preserved_side_pushdown_under_left_join(self):
        dialect = self._dialect()
        plan = _plan(
            dialect,
            "SELECT t.a FROM t LEFT JOIN s ON t.a = s.x WHERE t.b > 15",
        )
        # t is the preserved side: its conjunct may sink below the join.
        assert _scan_by_alias(plan, "t").info.get("filter") is not None

    def test_no_pushdown_below_the_null_extended_side(self):
        dialect = self._dialect()
        plan = _plan(
            dialect,
            "SELECT t.a FROM t LEFT JOIN s ON t.a = s.x WHERE s.y = 100",
        )
        # Filtering s below the join would turn unmatched-NULL rows into
        # matches-then-filtered rows; the conjunct must stay above.
        assert _scan_by_alias(plan, "s").info.get("filter") is None
        assert plan.find(OpKind.FILTER)

    @pytest.mark.parametrize("optimize_joins", [True, False])
    def test_outer_join_where_equality_not_dropped(self, optimize_joins):
        """Regression: a WHERE conjunct over both outer-join sides must apply."""
        dialect = self._dialect(optimize_joins)
        rows = dialect.execute(
            "SELECT t.a, s.y FROM t LEFT JOIN s ON t.a < 100 WHERE t.a = s.x"
        )
        assert rows == [{"t.a": 1, "s.y": 100}, {"t.a": 3, "s.y": 300}]

    @pytest.mark.parametrize("optimize_joins", [True, False])
    def test_pushdown_preserves_results(self, optimize_joins):
        dialect = self._dialect(optimize_joins)
        rows = dialect.execute(
            "SELECT t.a, s.y FROM t, s WHERE t.a = s.x AND t.b > 15 ORDER BY t.a"
        )
        assert rows == [{"t.a": 3, "s.y": 300}]


class TestJoinOrdering:
    """DP reordering is deterministic, correct, and orientation-safe."""

    CHAIN_QUERY = (
        "SELECT COUNT(*) FROM t1, t3, t2 WHERE t1.k = t2.k AND t2.k = t3.k"
    )

    @pytest.mark.parametrize("optimize_joins", [True, False])
    @pytest.mark.parametrize("executor", ["row", "vectorized", "parallel"])
    def test_condition_orientation_across_executors(self, executor, optimize_joins):
        """Regression: DP may build (B join A) from an edge written a.x = b.x.

        Both executors resolve an ``=`` conjunct's left reference against
        the left child, so a misoriented condition silently matches zero
        rows.  The planner re-orients per-conjunct; every executor and both
        toggles must agree on the count.
        """
        dialect = _chain_dialect(
            tables=3, rows=5, optimize_joins=optimize_joins, executor=executor
        )
        rows = dialect.execute(self.CHAIN_QUERY)
        assert rows[0]["COUNT(*)"] == 5

    def test_reordered_plan_avoids_the_written_cartesian(self):
        optimized = _plan(_chain_dialect(), self.CHAIN_QUERY)
        as_written = _plan(_chain_dialect(optimize_joins=False), self.CHAIN_QUERY)
        joins = [node for node in optimized.walk() if node.kind in JOIN_KINDS]
        assert all(node.info.get("condition") is not None for node in joins)
        # As written, t1 x t3 share no predicate: the first join is a pure
        # Cartesian product with the conjuncts filtered on top.
        syntactic_joins = [n for n in as_written.walk() if n.kind in JOIN_KINDS]
        assert any(n.info.get("condition") is None for n in syntactic_joins)

    def test_dp_is_deterministic(self):
        shapes = set()
        for _ in range(3):
            plan = _plan(_chain_dialect(), self.CHAIN_QUERY)
            shapes.add(plan.describe())
        assert len(shapes) == 1

    def test_prune_never_changes_the_chosen_plan(self, monkeypatch):
        """The cost prune is a pure speedup: disabling it picks the same plan."""
        from repro.optimizer.planner import Planner

        pruned = _plan(_chain_dialect(), self.CHAIN_QUERY)
        monkeypatch.setattr(
            Planner, "_prune_split", lambda self, left, right, best: False
        )
        exhaustive = _plan(_chain_dialect(), self.CHAIN_QUERY)
        assert pruned.describe() == exhaustive.describe()

    def test_five_table_chain_identical_results_across_toggles(self):
        query = (
            "SELECT t1.v, t5.v FROM t1, t3, t5, t2, t4"
            " WHERE t1.k = t2.k AND t2.k = t3.k AND t3.k = t4.k AND t4.k = t5.k"
            " ORDER BY t1.v"
        )
        results = {}
        for optimize_joins in (True, False):
            dialect = _chain_dialect(tables=5, rows=4, optimize_joins=optimize_joins)
            results[optimize_joins] = dialect.execute(query)
        assert results[True] == results[False]
        assert len(results[True]) == 4


class TestBoundAlgebra:
    """Unit coverage for the Chen & Schneider size-bound algebra."""

    def test_inner_join_bound_is_the_product(self):
        assert bounds.join_bound(10.0, 20.0) == 200.0

    def test_unique_side_caps_to_the_other_input(self):
        assert bounds.join_bound(10.0, 20.0, right_unique=True) == 10.0
        assert bounds.join_bound(10.0, 20.0, left_unique=True) == 20.0

    def test_left_join_adds_null_padding(self):
        assert bounds.join_bound(10.0, 20.0, "LEFT") == 210.0
        # A unique right side means at most one row per left row, padded or not.
        assert bounds.join_bound(10.0, 20.0, "LEFT", right_unique=True) == 10.0

    def test_full_join_pads_both_sides(self):
        assert bounds.join_bound(10.0, 20.0, "FULL") == 230.0
        assert bounds.join_bound(10.0, 20.0, "FULL", right_unique=True) == 30.0

    def test_unknown_join_type_makes_no_claim(self):
        assert bounds.join_bound(10.0, 20.0, "LATERAL") == float("inf")

    def test_row_preserving_operators_pass_the_bound_through(self):
        for kind in (OpKind.FILTER, OpKind.PROJECT, OpKind.SORT, OpKind.DISTINCT):
            assert bounds.propagated_bound(kind, [42.0]) == 42.0

    def test_global_aggregate_still_emits_its_summary_row(self):
        assert bounds.propagated_bound(OpKind.HASH_AGGREGATE, [0.0]) == 1.0
        assert bounds.propagated_bound(OpKind.HASH_AGGREGATE, [9.0]) == 9.0

    def test_limit_bounds_on_its_own(self):
        assert bounds.propagated_bound(OpKind.LIMIT, [None], limit=3.0) == 3.0
        assert bounds.propagated_bound(OpKind.LIMIT, [10.0], limit=3.0) == 3.0

    def test_missing_child_bound_poisons_most_operators(self):
        assert bounds.propagated_bound(OpKind.FILTER, [None]) is None
        assert bounds.propagated_bound(OpKind.UNION, [5.0, None]) is None
        # EXCEPT never exceeds its left input, even blind on the right.
        assert bounds.propagated_bound(OpKind.EXCEPT, [5.0, None]) == 5.0

    def test_set_operations_combine_bounds(self):
        assert bounds.propagated_bound(OpKind.UNION, [5.0, 7.0]) == 12.0
        assert bounds.propagated_bound(OpKind.INTERSECT, [5.0, 7.0]) == 5.0


class TestBoundViolations:
    """Runtime judging: actual rows beyond a proven bound, once-executed only."""

    def _node(self, bound, actual, loops=1, executed=True):
        node = make_node(OpKind.SEQ_SCAN, table="t")
        if bound is not None:
            node.info["size_bound"] = bound
        node.runtime.actual_rows = actual
        node.runtime.loops = loops
        node.runtime.executed = executed
        return node

    def test_exceeding_the_bound_is_flagged(self):
        violations = bounds.bound_violations(self._node(5.0, 7))
        assert violations == [
            {"operator": "SeqScan", "size_bound": 5.0, "actual_rows": 7}
        ]

    def test_within_bound_unbounded_and_rescanned_nodes_stay_silent(self):
        assert not bounds.bound_violations(self._node(5.0, 5))
        assert not bounds.bound_violations(self._node(None, 7))
        assert not bounds.bound_violations(self._node(5.0, 7, loops=3))
        assert not bounds.bound_violations(self._node(5.0, 7, executed=False))

    def test_planned_chain_join_carries_bounds_that_hold(self):
        dialect = _chain_dialect(tables=3, rows=5)
        query = TestJoinOrdering.CHAIN_QUERY
        plan = _plan(dialect, query)
        scans = plan.find(OpKind.SEQ_SCAN)
        assert all(node.info.get("size_bound") == 5.0 for node in scans)
        joins = [node for node in plan.walk() if node.kind in JOIN_KINDS]
        assert all(node.info.get("size_bound") is not None for node in joins)
        # Estimates are capped at the proven maximum everywhere a bound exists.
        for node in plan.walk():
            bound = node.info.get("size_bound")
            if bound is not None:
                assert node.estimated_rows <= bound
        dialect.executor.execute(reset_runtime(plan), analyze=True)
        assert bounds.bound_violations(plan) == []

    def test_explain_analyze_reports_no_violations_on_a_correct_engine(self):
        dialect = _chain_dialect(tables=3, rows=5)
        output = dialect.explain(TestJoinOrdering.CHAIN_QUERY, analyze=True)
        assert not output.bound_violations


_BOUND_BUG = KnownBug("postgresql", "Bound", "B-0001", "Injected", "Major", "bound")


class TestBoundOracle:
    """The campaign-facing checker: silent by default, loud under faults."""

    def _generator(self):
        return RandomQueryGenerator(seed=11, config=GeneratorConfig(max_tables=2))

    def test_checker_is_silent_on_a_correct_engine(self):
        dialect = create_dialect("postgresql")
        checker = SizeBoundChecker(dialect, self._generator())
        statistics = checker.run(queries=40)
        assert statistics.queries_checked == 40
        assert statistics.violations == []

    def test_checker_flags_injected_bound_faults(self):
        faulty = FaultyDialect(
            create_dialect("postgresql"), bound_bugs=[_BOUND_BUG]
        )
        checker = SizeBoundChecker(faulty, self._generator())
        statistics = checker.run(queries=80)
        assert statistics.violations, "injected bound faults went unnoticed"
        for violation in statistics.violations:
            assert violation.actual_rows > violation.size_bound
            assert violation.dbms == "postgresql"

    def test_default_campaign_reports_no_bound_bugs(self):
        campaign = TestingCampaign(
            dbms_names=["postgresql"],
            queries_per_dbms=5,
            cert_pairs_per_dbms=2,
            bound_checks_per_dbms=15,
        )
        result = campaign.run()
        assert result.bound_queries_checked == 15
        assert not [r for r in result.reports if r.found_by == "Bound"]

    def test_campaign_surfaces_injected_bound_bugs(self, monkeypatch):
        import repro.testing.campaign as campaign_module

        real_bugs_for = campaign_module.bugs_for

        def with_bound_bugs(dbms, kind=None):
            if kind == "bound":
                return [_BOUND_BUG]
            return real_bugs_for(dbms, kind)

        monkeypatch.setattr(campaign_module, "bugs_for", with_bound_bugs)
        campaign = TestingCampaign(
            dbms_names=["postgresql"],
            queries_per_dbms=5,
            cert_pairs_per_dbms=2,
            bound_checks_per_dbms=80,
        )
        result = campaign.run()
        bound_reports = [r for r in result.reports if r.found_by == "Bound"]
        assert bound_reports, "bound faults must become campaign reports"
        for report in bound_reports:
            assert report.bug_id == _BOUND_BUG.bug_id
            assert report.trigger_query


class TestToggleHygiene:
    """optimize_joins is pure plan policy: results and Table V never move."""

    def test_set_optimize_joins_clears_cached_plans(self):
        dialect = create_dialect("postgresql")
        dialect.execute("CREATE TABLE t (a INT)")
        dialect.execute("CREATE TABLE s (x INT)")
        query = "SELECT COUNT(*) FROM t, s WHERE t.a = s.x"
        dialect.execute(query)
        dialect.set_optimize_joins(False)
        plan = _plan(dialect, query)
        assert plan.find(OpKind.FILTER), "as-written plan filters above the join"
        # The cached optimized plan must not be served after the switch.
        text_key, statements = dialect.prepared.parse(query)
        cached = dialect.prepared.plan(
            text_key,
            0,
            dialect.database.version,
            lambda: dialect.planner.plan_statement(statements[0]),
        )
        assert cached.find(OpKind.FILTER)

    def test_toggle_is_idempotent_for_the_cache(self):
        dialect = create_dialect("postgresql")
        dialect.execute("CREATE TABLE t (a INT)")
        query = "SELECT a FROM t"
        dialect.execute(query)
        before = len(dialect.prepared)
        assert before > 0
        dialect.set_optimize_joins(True)  # already True: must not clear
        assert len(dialect.prepared) == before

    def test_fuzz_corpus_across_toggle_executor_and_cache(self):
        """Identical rows across every optimize_joins x executor x cache cell.

        Within one toggle setting, every executor/cache combination must
        agree byte-for-byte including row order; across toggles, join
        reordering may permute unordered output, so multisets must agree.
        """
        generator = RandomQueryGenerator(seed=3, config=GeneratorConfig(max_tables=2))
        statements = generator.schema_statements()
        queries = [generator.select_query() for _ in range(20)]
        cells = {}
        for optimize_joins in (True, False):
            for executor in ("row", "vectorized", "parallel"):
                for cache in (True, False):
                    dialect = create_dialect(
                        "postgresql",
                        optimize_joins=optimize_joins,
                        executor=executor,
                        prepared_cache=cache,
                    )
                    for statement in statements:
                        try:
                            dialect.execute(statement)
                        except Exception:
                            continue
                    dialect.analyze_tables()
                    cells[(optimize_joins, executor, cache)] = dialect
        for query in queries:
            outcomes = {}
            for key, dialect in cells.items():
                try:
                    outcomes[key] = ("ok", dialect.execute(query))
                except Exception as error:
                    outcomes[key] = ("error", type(error).__name__)
            for optimize_joins in (True, False):
                setting = [
                    outcome
                    for key, outcome in outcomes.items()
                    if key[0] is optimize_joins
                ]
                first = setting[0]
                assert all(outcome == first for outcome in setting), query
            optimized, as_written = (
                outcomes[(True, "row", True)],
                outcomes[(False, "row", True)],
            )
            assert optimized[0] == as_written[0], query
            if optimized[0] == "ok":
                assert sorted(repr(row) for row in optimized[1]) == sorted(
                    repr(row) for row in as_written[1]
                ), query

    def test_analyze_counts_agree_between_executors_per_setting(self):
        query = TestJoinOrdering.CHAIN_QUERY
        for optimize_joins in (True, False):
            plans = []
            for executor in ("row", "vectorized"):
                dialect = _chain_dialect(
                    tables=3, rows=5, optimize_joins=optimize_joins, executor=executor
                )
                plan = _plan(dialect, query)
                dialect.executor.execute(reset_runtime(plan), analyze=True)
                plans.append(plan)
            row_plan, vec_plan = plans
            for row_node, vec_node in zip(row_plan.walk(), vec_plan.walk()):
                assert row_node.kind is vec_node.kind
                assert row_node.runtime.actual_rows == vec_node.runtime.actual_rows
                assert row_node.runtime.loops == vec_node.runtime.loops

    def test_campaign_table5_identical_across_toggle(self):
        tables = {}
        for optimize_joins in (True, False):
            campaign = TestingCampaign(
                dbms_names=["postgresql", "mysql"],
                queries_per_dbms=6,
                cert_pairs_per_dbms=2,
                bound_checks_per_dbms=4,
                optimize_joins=optimize_joins,
            )
            tables[optimize_joins] = campaign.run().table5_rows()
        assert tables[True] == tables[False]
