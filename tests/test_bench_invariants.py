"""The benchmark driver must fail loudly on violated invariants.

Every BENCH_*.json snapshot carries an ``invariants`` dict of boolean
acceptance flags (speedup floors, result-equivalence checks).  A false flag
is a perf or correctness regression, so ``run_benchmarks.py`` has to exit
non-zero — CI runs the quick mode and relies on that exit code.  These
tests monkeypatch the executor snapshot collector so neither outcome
depends on machine speed.
"""

import json
import os
import sys

import pytest

_BENCHMARKS = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "benchmarks"
)
if _BENCHMARKS not in sys.path:
    sys.path.insert(0, _BENCHMARKS)

import bench_coverage  # noqa: E402
import bench_executor  # noqa: E402
import bench_optimizer  # noqa: E402
import bench_parallel  # noqa: E402
import bench_service  # noqa: E402
import bench_similarity  # noqa: E402
import run_benchmarks  # noqa: E402


def _fake_snapshot(invariants):
    """A structurally complete executor snapshot with canned numbers."""
    timing = {"seconds": 0.5, "rows_out": 10}
    return {
        "benchmark": "executor",
        "quick": True,
        "numpy_available": True,
        "workloads": {
            "engines": ["row", "vectorized_list", "vectorized_numpy"],
            "workloads": {
                "scan_filter": {
                    "query": "SELECT 1",
                    "row": timing,
                    "vectorized_numpy": timing,
                    "speedup": 12.0,
                    "speedup_numpy": 12.0,
                    "results_identical": True,
                }
            },
        },
        "corpus_execute": {
            "corpus": {"queries": 40, "executed": 40, "seed": 1},
            "row": {"seconds": 1.0, "queries_per_second": 40.0},
            "vectorized_numpy": {"seconds": 0.8, "queries_per_second": 50.0},
            "speedup": 1.25,
        },
        "campaign_equivalence": {"coverage_identical": True, "reports_identical": True},
        "tracked": {"corpus_speedup": 1.25, "scan_filter_speedup": 12.0},
        "invariants": invariants,
    }


@pytest.fixture
def run_executor_only(monkeypatch, tmp_path, capsys):
    """Run the driver's executor section against a patched collector."""

    def run(invariants):
        monkeypatch.setattr(
            bench_executor,
            "collect_snapshot",
            lambda quick=False: _fake_snapshot(invariants),
        )
        output = tmp_path / "BENCH_executor.json"
        code = run_benchmarks.main(
            ["--only", "executor", "--executor-output", str(output)]
        )
        captured = capsys.readouterr()
        return code, json.loads(output.read_text()), captured

    return run


def test_all_invariants_true_exits_zero(run_executor_only):
    code, written, captured = run_executor_only(
        {
            "scan_filter_at_least_2x": True,
            "scan_filter_at_least_10x": True,
            "all_results_identical": True,
            "campaign_coverage_identical": True,
            "campaign_reports_identical": True,
        }
    )
    assert code == 0
    assert "INVARIANTS VIOLATED" not in captured.err
    assert all(written["invariants"].values())


@pytest.mark.parametrize(
    "broken",
    [
        "scan_filter_at_least_10x",
        "all_results_identical",
        "campaign_coverage_identical",
    ],
)
def test_any_false_invariant_exits_nonzero(run_executor_only, broken):
    invariants = {
        "scan_filter_at_least_2x": True,
        "scan_filter_at_least_10x": True,
        "all_results_identical": True,
        "campaign_coverage_identical": True,
        "campaign_reports_identical": True,
    }
    invariants[broken] = False
    code, written, captured = run_executor_only(invariants)
    assert code == 1
    assert "EXECUTOR INVARIANTS VIOLATED" in captured.err
    # The snapshot is still written — the flags stay inspectable after the
    # failing run.
    assert written["invariants"][broken] is False


def test_committed_snapshot_invariants_all_hold():
    """The checked-in BENCH_executor.json must never ship with red flags."""
    path = os.path.join(os.path.dirname(_BENCHMARKS), "BENCH_executor.json")
    with open(path) as handle:
        snapshot = json.load(handle)
    assert snapshot["invariants"], "snapshot carries no invariants"
    assert all(snapshot["invariants"].values()), snapshot["invariants"]


def _fake_parallel_snapshot(invariants, cpus=1):
    """A structurally complete parallel snapshot with canned numbers."""
    timing = {"seconds": 0.5}
    return {
        "benchmark": "parallel",
        "quick": True,
        "cpus": cpus,
        "skipped_multicore": cpus < 2,
        "campaign_scaling": {
            "settings": {"seed": 7},
            "shards": 4,
            "serial": {"seconds": 2.0, "rounds": 4, "queries": 48},
            "sharded": {
                "seconds": 0.7,
                "rounds": 4,
                "queries": 48,
                "pool_active": True,
            },
            "speedup": 2.86,
            "coverage_identical": True,
            "reports_identical": True,
            "counters_identical": True,
        },
        "morsel_operators": {
            "rows": 4000,
            "queries": ["SELECT 1"],
            "vectorized": timing,
            "parallel": timing,
            "speedup": 1.0,
            "results_identical": True,
        },
        "invariants": invariants,
    }


_PARALLEL_GREEN = {
    "sharded_coverage_identical": True,
    "sharded_reports_identical": True,
    "sharded_counters_identical": True,
    "morsel_results_identical": True,
    "scaling_at_least_2_5x_on_4_cores": True,
    "scaling_gated": True,
}


@pytest.fixture
def run_parallel_only(monkeypatch, tmp_path, capsys):
    """Run the driver's parallel section against a patched collector."""

    def run(invariants):
        monkeypatch.setattr(
            bench_parallel,
            "collect_snapshot",
            lambda quick=False: _fake_parallel_snapshot(invariants),
        )
        output = tmp_path / "BENCH_parallel.json"
        code = run_benchmarks.main(
            ["--only", "parallel", "--parallel-output", str(output)]
        )
        captured = capsys.readouterr()
        return code, json.loads(output.read_text()), captured

    return run


def test_parallel_green_flags_exit_zero(run_parallel_only):
    code, written, captured = run_parallel_only(dict(_PARALLEL_GREEN))
    assert code == 0
    assert "INVARIANTS VIOLATED" not in captured.err
    assert written["skipped_multicore"] is True  # canned single-core host


def test_parallel_gated_flag_is_informational(run_parallel_only):
    # scaling_gated=False means the floor WAS judged; the flag itself must
    # never flip the exit code in either direction.
    flags = dict(_PARALLEL_GREEN, scaling_gated=False)
    code, _, captured = run_parallel_only(flags)
    assert code == 0
    assert "INVARIANTS VIOLATED" not in captured.err


@pytest.mark.parametrize(
    "broken",
    [
        "sharded_coverage_identical",
        "sharded_reports_identical",
        "morsel_results_identical",
        "scaling_at_least_2_5x_on_4_cores",
    ],
)
def test_parallel_false_invariant_exits_nonzero(run_parallel_only, broken):
    flags = dict(_PARALLEL_GREEN)
    flags[broken] = False
    code, written, captured = run_parallel_only(flags)
    assert code == 1
    assert "PARALLEL INVARIANTS VIOLATED" in captured.err
    assert written["invariants"][broken] is False


def test_parallel_snapshot_gates_scaling_by_environment(monkeypatch):
    # On this host (or any host failing the cpus/pool/quick gate) the
    # speedup floor must pass vacuously and scaling_gated must say so;
    # the correctness flags are still real measurements.
    snapshot = bench_parallel.collect_snapshot(quick=True)
    assert snapshot["skipped_multicore"] == (snapshot["cpus"] < 2)
    assert snapshot["invariants"]["scaling_gated"] is True  # quick => gated
    assert snapshot["invariants"]["scaling_at_least_2_5x_on_4_cores"] is True
    assert snapshot["invariants"]["sharded_coverage_identical"] is True
    assert snapshot["invariants"]["sharded_reports_identical"] is True
    assert snapshot["invariants"]["morsel_results_identical"] is True


def test_coverage_snapshot_reports_skipped_multicore():
    # The explicit single-core marker downstream consumers key off.
    snapshot = bench_coverage.collect_snapshot(quick=True)
    assert "skipped_multicore" in snapshot
    assert snapshot["skipped_multicore"] == (snapshot["cpus"] < 2)
    if snapshot["skipped_multicore"]:
        assert snapshot["invariants"]["process_pool_gated"] is True


def test_committed_parallel_snapshot_invariants_all_hold():
    """The checked-in BENCH_parallel.json must never ship with red flags."""
    path = os.path.join(os.path.dirname(_BENCHMARKS), "BENCH_parallel.json")
    with open(path) as handle:
        snapshot = json.load(handle)
    assert snapshot["invariants"], "snapshot carries no invariants"
    assert all(snapshot["invariants"].values()), snapshot["invariants"]
    assert "skipped_multicore" in snapshot


def test_committed_coverage_snapshot_has_multicore_flag():
    path = os.path.join(os.path.dirname(_BENCHMARKS), "BENCH_coverage.json")
    with open(path) as handle:
        snapshot = json.load(handle)
    assert "skipped_multicore" in snapshot
    assert snapshot["skipped_multicore"] == (snapshot["cpus"] < 2)


def _fake_optimizer_snapshot(invariants):
    """A structurally complete optimizer snapshot with canned numbers."""
    return {
        "benchmark": "optimizer",
        "quick": True,
        "chain_join": {
            "rows_per_table": 10,
            "tables": 5,
            "repeats": 3,
            "query": "SELECT 1",
            "optimized_seconds": 0.001,
            "as_written_seconds": 0.2,
            "speedup": 200.0,
            "count": 10,
            "results_identical": True,
        },
        "bound_oracle": {"query": "SELECT 1", "violations": [], "no_violations": True},
        "corpus_equivalence": {"seed": 1, "queries": 40, "mismatches": 0, "identical": True},
        "campaign_equivalence": {
            "queries_per_dbms": 8,
            "cert_pairs_per_dbms": 3,
            "unique_plans_optimized": 7,
            "unique_plans_as_written": 8,
            "bound_queries_checked": 10,
            "reports_identical": True,
        },
        "tracked": {"chain_join_speedup": 200.0},
        "invariants": invariants,
    }


_OPTIMIZER_GREEN = {
    "chain_join_at_least_50x": True,
    "chain_results_identical": True,
    "corpus_results_identical": True,
    "campaign_reports_identical": True,
    "no_bound_violations": True,
}


@pytest.fixture
def run_optimizer_only(monkeypatch, tmp_path, capsys):
    """Run the driver's optimizer section against a patched collector."""

    def run(invariants):
        monkeypatch.setattr(
            bench_optimizer,
            "collect_snapshot",
            lambda quick=False: _fake_optimizer_snapshot(invariants),
        )
        output = tmp_path / "BENCH_optimizer.json"
        code = run_benchmarks.main(
            ["--only", "optimizer", "--optimizer-output", str(output)]
        )
        captured = capsys.readouterr()
        return code, json.loads(output.read_text()), captured

    return run


def test_optimizer_green_flags_exit_zero(run_optimizer_only):
    code, written, captured = run_optimizer_only(dict(_OPTIMIZER_GREEN))
    assert code == 0
    assert "INVARIANTS VIOLATED" not in captured.err
    assert all(written["invariants"].values())


@pytest.mark.parametrize(
    "broken",
    [
        "chain_join_at_least_50x",
        "chain_results_identical",
        "corpus_results_identical",
        "campaign_reports_identical",
        "no_bound_violations",
    ],
)
def test_optimizer_false_invariant_exits_nonzero(run_optimizer_only, broken):
    flags = dict(_OPTIMIZER_GREEN)
    flags[broken] = False
    code, written, captured = run_optimizer_only(flags)
    assert code == 1
    assert "OPTIMIZER INVARIANTS VIOLATED" in captured.err
    assert written["invariants"][broken] is False


def _fake_service_snapshot(invariants, cpus=1):
    """A structurally complete service snapshot with canned numbers."""
    return {
        "benchmark": "service",
        "quick": True,
        "cpus": cpus,
        "concurrent_clients": 8,
        "read_throughput": {
            "clients": 8,
            "speedup": 3.1,
            "serial": {"seconds": 1.0, "ops": 240},
            "concurrent": {
                "seconds": 0.32,
                "ops": 240,
                "p50_ms": 4.0,
                "p99_ms": 11.0,
            },
            "all_clients_completed": True,
        },
        "isolation": {"consistent": True, "torn_reads": 0, "reads": 90},
        "ddl_and_leakage": {
            "ddl_linearizable": True,
            "zero_leakage": True,
            "leaks": 0,
        },
        "campaign_equivalence": {"identical": True},
        "invariants": invariants,
    }


_SERVICE_GREEN = {
    "isolation_reads_consistent": True,
    "ddl_linearizable": True,
    "zero_cross_tenant_leakage": True,
    "campaign_through_service_identical": True,
    "all_clients_completed": True,
    "concurrent_read_speedup_at_least_2_5x": True,
    "scaling_gated": True,
}


@pytest.fixture
def run_service_only(monkeypatch, tmp_path, capsys):
    """Run the driver's service section against a patched collector."""

    def run(invariants):
        monkeypatch.setattr(
            bench_service,
            "collect_snapshot",
            lambda quick=False: _fake_service_snapshot(invariants),
        )
        output = tmp_path / "BENCH_service.json"
        code = run_benchmarks.main(
            ["--only", "service", "--service-output", str(output)]
        )
        captured = capsys.readouterr()
        return code, json.loads(output.read_text()), captured

    return run


def test_service_green_flags_exit_zero(run_service_only):
    code, written, captured = run_service_only(dict(_SERVICE_GREEN))
    assert code == 0
    assert "INVARIANTS VIOLATED" not in captured.err
    assert all(written["invariants"].values())


def test_service_gated_flag_is_informational(run_service_only):
    # scaling_gated=False means the speedup floor WAS judged; the flag
    # itself must never flip the exit code in either direction.
    flags = dict(_SERVICE_GREEN, scaling_gated=False)
    code, _, captured = run_service_only(flags)
    assert code == 0
    assert "INVARIANTS VIOLATED" not in captured.err


@pytest.mark.parametrize(
    "broken",
    [
        "isolation_reads_consistent",
        "ddl_linearizable",
        "zero_cross_tenant_leakage",
        "campaign_through_service_identical",
        "all_clients_completed",
        "concurrent_read_speedup_at_least_2_5x",
    ],
)
def test_service_false_invariant_exits_nonzero(run_service_only, broken):
    flags = dict(_SERVICE_GREEN)
    flags[broken] = False
    code, written, captured = run_service_only(flags)
    assert code == 1
    assert "SERVICE INVARIANTS VIOLATED" in captured.err
    assert written["invariants"][broken] is False


def test_service_snapshot_gates_scaling_by_environment():
    # Quick mode (or a small host) gates the speedup floor; the
    # correctness flags are still real measurements and must hold.
    snapshot = bench_service.collect_snapshot(quick=True)
    assert snapshot["concurrent_clients"] >= 8
    assert snapshot["invariants"]["scaling_gated"] is True  # quick => gated
    assert snapshot["invariants"]["concurrent_read_speedup_at_least_2_5x"] is True
    assert snapshot["invariants"]["isolation_reads_consistent"] is True
    assert snapshot["invariants"]["ddl_linearizable"] is True
    assert snapshot["invariants"]["zero_cross_tenant_leakage"] is True
    assert snapshot["invariants"]["campaign_through_service_identical"] is True


def test_committed_service_snapshot_invariants_all_hold():
    """The checked-in BENCH_service.json must never ship with red flags."""
    path = os.path.join(os.path.dirname(_BENCHMARKS), "BENCH_service.json")
    with open(path) as handle:
        snapshot = json.load(handle)
    assert snapshot["invariants"], "snapshot carries no invariants"
    assert all(snapshot["invariants"].values()), snapshot["invariants"]
    assert snapshot["concurrent_clients"] >= 8
    assert snapshot["quick"] is False


def test_committed_optimizer_snapshot_invariants_all_hold():
    """The checked-in BENCH_optimizer.json must never ship with red flags."""
    path = os.path.join(os.path.dirname(_BENCHMARKS), "BENCH_optimizer.json")
    with open(path) as handle:
        snapshot = json.load(handle)
    assert snapshot["invariants"], "snapshot carries no invariants"
    assert all(snapshot["invariants"].values()), snapshot["invariants"]
    # The tentpole acceptance number: the committed (full-mode) snapshot
    # must record the ≥ 50x chain-join win, measured, not gated away.
    assert snapshot["quick"] is False
    assert snapshot["chain_join"]["speedup"] >= 50.0


def _fake_similarity_snapshot(invariants):
    """A structurally complete similarity snapshot with canned numbers."""
    return {
        "benchmark": "similarity",
        "quick": True,
        "numpy_available": True,
        "embedding": {
            "plans": 40,
            "dimensions": 40,
            "seconds": 0.05,
            "deterministic": True,
            "integer_valued": True,
        },
        "index_queries": {
            "entries": 40,
            "probes": 20,
            "k": 3,
            "seconds": 0.01,
            "queries_per_second": 2000.0,
            "numpy_available": True,
            "numpy_list_identical": True,
            "self_nearest_all_zero": True,
        },
        "merge_identity": {
            "entries": 40,
            "layouts": [[3, 16, 5], [16, 1, 3]],
            "union_exact": True,
            "order_and_layout_independent": True,
            "idempotent": True,
        },
        "campaign_modes": {
            "settings": {"queries_per_dbms": 12},
            "exact_reports": 5,
            "exact_mode_inert": True,
            "similarity_reports": 5,
            "similarity_indexed_plans": 18,
            "novelty_reward_total": 3.25,
            "similarity_deterministic": True,
            "cluster_sizes": [2, 3],
            "clusters_cover_all_reports": True,
        },
        "tracked": {"query_throughput": 2000.0, "indexed_entries": 40},
        "invariants": invariants,
    }


_SIMILARITY_GREEN = {
    "embedding_deterministic": True,
    "embedding_integer_valued": True,
    "numpy_list_identical": True,
    "self_nearest_all_zero": True,
    "merge_union_exact": True,
    "merge_order_and_layout_independent": True,
    "merge_idempotent": True,
    "exact_mode_inert": True,
    "similarity_campaign_deterministic": True,
    "clusters_cover_all_reports": True,
    "query_throughput_at_least_25_per_second": True,
}


@pytest.fixture
def run_similarity_only(monkeypatch, tmp_path, capsys):
    """Run the driver's similarity section against a patched collector."""

    def run(invariants):
        monkeypatch.setattr(
            bench_similarity,
            "collect_snapshot",
            lambda quick=False: _fake_similarity_snapshot(invariants),
        )
        output = tmp_path / "BENCH_similarity.json"
        code = run_benchmarks.main(
            ["--only", "similarity", "--similarity-output", str(output)]
        )
        captured = capsys.readouterr()
        return code, json.loads(output.read_text()), captured

    return run


def test_similarity_green_flags_exit_zero(run_similarity_only):
    code, written, captured = run_similarity_only(dict(_SIMILARITY_GREEN))
    assert code == 0
    assert "INVARIANTS VIOLATED" not in captured.err
    assert all(written["invariants"].values())


@pytest.mark.parametrize(
    "broken",
    [
        "embedding_deterministic",
        "numpy_list_identical",
        "self_nearest_all_zero",
        "merge_order_and_layout_independent",
        "exact_mode_inert",
        "similarity_campaign_deterministic",
        "query_throughput_at_least_25_per_second",
    ],
)
def test_similarity_false_invariant_exits_nonzero(run_similarity_only, broken):
    flags = dict(_SIMILARITY_GREEN)
    flags[broken] = False
    code, written, captured = run_similarity_only(flags)
    assert code == 1
    assert "SIMILARITY INVARIANTS VIOLATED" in captured.err
    assert written["invariants"][broken] is False


def test_committed_similarity_snapshot_invariants_all_hold():
    """The checked-in BENCH_similarity.json must never ship with red flags."""
    path = os.path.join(os.path.dirname(_BENCHMARKS), "BENCH_similarity.json")
    with open(path) as handle:
        snapshot = json.load(handle)
    assert snapshot["invariants"], "snapshot carries no invariants"
    assert all(snapshot["invariants"].values()), snapshot["invariants"]
    # The committed snapshot is the full-mode run: exact-mode inertness and
    # similarity determinism measured on the full campaign sizes.
    assert snapshot["quick"] is False
    assert snapshot["embedding"]["dimensions"] == 40
