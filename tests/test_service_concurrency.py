"""Threaded stress tests for the thread-safe core and the query service.

The light grids run in tier-1; the heavy grids (more sessions, more
iterations) sit behind the ``slow`` marker (``--runslow``).
"""

import threading
import time

import pytest

from repro.catalog.database import Database
from repro.catalog.schema import Column, DataType, TableSchema
from repro.core.caching import LRUCache
from repro.core.concurrency import AtomicCounter, ReadWriteGate
from repro.service import (
    QueryService,
    ServiceClient,
    StatementCancelled,
)


def _run_threads(workers):
    threads = [threading.Thread(target=worker) for worker in workers]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()


# ---------------------------------------------------------------------------
# Satellite 1: the lock-guarded LRU under concurrent readers/writers
# ---------------------------------------------------------------------------


class TestLRUCacheConcurrency:
    def test_counters_stay_exact_under_concurrent_hits(self):
        cache = LRUCache(maxsize=64)
        for key in range(32):
            cache.put(key, key * 10)
        lookups_per_thread = 2000
        threads = 8

        def reader(offset):
            def run():
                for i in range(lookups_per_thread):
                    key = (offset + i) % 32
                    assert cache.get(key) == key * 10
            return run

        _run_threads([reader(offset) for offset in range(threads)])
        stats = cache.stats
        assert stats.hits == threads * lookups_per_thread
        assert stats.misses == 0

    def test_misses_are_counted_exactly(self):
        cache = LRUCache(maxsize=8)
        misses_per_thread = 1500

        def misser(offset):
            def run():
                for i in range(misses_per_thread):
                    assert cache.get(("absent", offset, i)) is None
            return run

        _run_threads([misser(offset) for offset in range(4)])
        stats = cache.stats
        assert stats.misses == 4 * misses_per_thread
        assert stats.hits == 0

    def test_eviction_under_concurrent_get_put(self):
        cache = LRUCache(maxsize=16)
        stop = threading.Event()
        failures = []

        def writer():
            i = 0
            while not stop.is_set():
                cache.put(i % 64, i)
                i += 1

        def reader():
            try:
                for i in range(4000):
                    value = cache.get(i % 64)
                    if value is not None and value % 64 != i % 64:
                        failures.append((i % 64, value))
            except Exception as exc:  # noqa: BLE001
                failures.append(repr(exc))
            finally:
                stop.set()

        _run_threads([writer, writer, reader, reader])
        stop.set()
        assert not failures
        assert len(cache) <= 16
        stats = cache.stats
        assert stats.hits + stats.misses == 8000

    def test_contended_hit_refreshes_recency_eventually(self):
        cache = LRUCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        # A deferred hit parks in the pending queue; the next locked
        # operation folds it in, so "a" is most-recent and "b" evicts.
        cache._lock.acquire()
        assert cache.get("a") == 1  # contended path: deferred
        cache._lock.release()
        cache.put("c", 3)
        assert "a" in cache
        assert "b" not in cache
        assert cache.stats.hits == 1


# ---------------------------------------------------------------------------
# Satellite 2: atomic snapshot build in HeapTable.column_batch
# ---------------------------------------------------------------------------


class TestSnapshotBuildAtomicity:
    def _database(self, rows=64):
        database = Database("snap")
        database.create_table(
            TableSchema(
                name="t",
                columns=[
                    Column(name="a", data_type=DataType.INTEGER),
                    Column(name="b", data_type=DataType.INTEGER),
                ],
            )
        )
        database.insert_rows("t", [{"a": i, "b": i * 2} for i in range(rows)])
        return database

    def test_concurrent_builds_share_one_snapshot(self):
        database = self._database()
        table = database.table("t")
        version = database.version
        barrier = threading.Barrier(8)
        snapshots = []

        def build():
            barrier.wait()
            snapshots.append(table.column_batch(version))

        _run_threads([build] * 8)
        assert len({id(snapshot) for snapshot in snapshots}) == 1
        assert all(snapshot.version == version for snapshot in snapshots)

    def test_no_torn_snapshot_during_mutation_churn(self):
        database = self._database()
        table = database.table("t")
        stop = threading.Event()
        failures = []

        def mutator():
            i = 1000
            while not stop.is_set():
                database.insert_rows("t", [{"a": i, "b": i * 2}])
                i += 1

        def scanner():
            try:
                for _ in range(300):
                    snapshot = table.column_batch(database.version)
                    length = snapshot.length
                    for name, values in snapshot.columns.items():
                        if len(values) != length:
                            failures.append((name, len(values), length))
            except Exception as exc:  # noqa: BLE001
                failures.append(repr(exc))
            finally:
                stop.set()

        _run_threads([mutator, scanner, scanner])
        stop.set()
        assert not failures

    def test_direct_mutation_still_invalidates_same_version_snapshot(self):
        # The PR-4 rule survives the locking: direct table mutation clears
        # the cache, so a same-version rebuild serves the new data.
        database = self._database(rows=4)
        table = database.table("t")
        version = database.version
        before = table.column_batch(version)
        assert before.length == 4
        table.insert({"a": 99, "b": 198})
        after = table.column_batch(version)
        assert after is not before
        assert after.length == 5


# ---------------------------------------------------------------------------
# The readers-writer gate
# ---------------------------------------------------------------------------


class TestReadWriteGate:
    def test_readers_are_concurrent(self):
        gate = ReadWriteGate()
        active = AtomicCounter()
        peak = []
        barrier = threading.Barrier(4)

        def reader():
            barrier.wait()
            with gate.read_locked():
                peak.append(active.increment())
                time.sleep(0.02)
                active.increment(-1)

        _run_threads([reader] * 4)
        assert max(peak) > 1

    def test_writer_excludes_readers_and_writers(self):
        gate = ReadWriteGate()
        log = []

        def writer(tag):
            def run():
                with gate.write_locked():
                    log.append((tag, "in"))
                    time.sleep(0.01)
                    log.append((tag, "out"))
            return run

        _run_threads([writer("w1"), writer("w2")])
        # Writers serialized: in/out pairs never interleave.
        assert [entry[1] for entry in log] == ["in", "out", "in", "out"]

    def test_waiting_writer_blocks_new_readers(self):
        gate = ReadWriteGate()
        order = []
        reader_released = threading.Event()
        writer_waiting = threading.Event()

        def first_reader():
            with gate.read_locked():
                writer_waiting.wait(timeout=5)
                time.sleep(0.01)
                order.append("reader1-done")

        def writer():
            thread = threading.Thread(target=lambda: None)
            del thread
            writer_waiting.set()
            with gate.write_locked():
                order.append("writer-done")
            reader_released.set()

        def late_reader():
            writer_waiting.wait(timeout=5)
            time.sleep(0.005)  # let the writer reach its wait first
            with gate.read_locked():
                order.append("reader2-done")

        _run_threads([first_reader, writer, late_reader])
        # Writer preference: the late reader cannot overtake the writer.
        assert order.index("writer-done") < order.index("reader2-done")


# ---------------------------------------------------------------------------
# Satellite 3: service-level stress — sessions, leakage, cancellation
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def service():
    with QueryService(max_workers=8) as running:
        yield running


def _session_workload(service, tenant, position, cycles, failures):
    """One session's private mixed DDL/DML/SELECT loop with a local oracle."""
    try:
        with ServiceClient(service.address) as client:
            session = client.open_session("postgresql", tenant=tenant)
            table = f"w{position}"
            session.execute(f"CREATE TABLE {table} (k INT PRIMARY KEY, v INT)")
            expected = {}
            for cycle in range(cycles):
                session.execute(f"INSERT INTO {table} VALUES ({cycle}, {cycle * 7})")
                expected[cycle] = cycle * 7
                if cycle % 3 == 2:
                    session.execute(
                        f"UPDATE {table} SET v = {cycle * 100} WHERE k = {cycle - 1}"
                    )
                    expected[cycle - 1] = cycle * 100
                if cycle % 4 == 3:
                    session.execute(f"DELETE FROM {table} WHERE k = {cycle - 3}")
                    del expected[cycle - 3]
                rows = session.execute(f"SELECT k, v FROM {table} ORDER BY k")
                observed = {row["k"]: row["v"] for row in rows}
                if observed != expected:
                    failures.append((position, cycle, observed, expected))
                    return
            session.close()
    except Exception as exc:  # noqa: BLE001
        failures.append((position, repr(exc)))


class TestServiceConcurrency:
    def test_mixed_workload_sessions_have_consistent_oracles(self, service):
        failures = []
        workers = [
            (lambda p: (lambda: _session_workload(service, "mixed", p, 8, failures)))(p)
            for p in range(4)
        ]
        _run_threads(workers)
        assert not failures, failures[:3]

    @pytest.mark.slow
    def test_mixed_workload_heavy_grid(self, service):
        failures = []
        workers = [
            (lambda p: (lambda: _session_workload(service, "mixed-heavy", p, 40, failures)))(p)
            for p in range(10)
        ]
        _run_threads(workers)
        assert not failures, failures[:3]

    def test_shared_tenant_readers_never_see_torn_state(self, service):
        failures = []
        with ServiceClient(service.address) as writer_client:
            writer = writer_client.open_session("postgresql", tenant="torn")
            writer.execute("CREATE TABLE torn (id INT PRIMARY KEY, val INT)")
            writer.execute(
                "INSERT INTO torn VALUES " + ", ".join(f"({i}, 0)" for i in range(40))
            )
            stop = threading.Event()

            def writer_main():
                generation = 1
                try:
                    while not stop.is_set():
                        writer.execute(f"UPDATE torn SET val = {generation}")
                        generation += 1
                except Exception as exc:  # noqa: BLE001
                    failures.append(repr(exc))

            def reader_main():
                try:
                    with ServiceClient(service.address) as client:
                        session = client.open_session("postgresql", tenant="torn")
                        for _ in range(30):
                            rows = session.execute("SELECT val FROM torn")
                            observed = {row["val"] for row in rows}
                            if len(observed) != 1:
                                failures.append(("torn read", observed))
                except Exception as exc:  # noqa: BLE001
                    failures.append(repr(exc))
                finally:
                    stop.set()

            _run_threads([writer_main, reader_main, reader_main])
            stop.set()
        assert not failures, failures[:3]

    def test_cross_tenant_leakage_probe(self, service):
        failures = []

        def tenant_main(tenant, marker):
            def run():
                try:
                    with ServiceClient(service.address) as client:
                        session = client.open_session("postgresql", tenant=tenant)
                        session.execute("CREATE TABLE leak_probe (who INT)")
                        session.execute(f"INSERT INTO leak_probe VALUES ({marker})")
                        for _ in range(25):
                            rows = session.execute("SELECT who FROM leak_probe")
                            values = {row["who"] for row in rows}
                            if values != {marker}:
                                failures.append((tenant, values))
                except Exception as exc:  # noqa: BLE001
                    failures.append((tenant, repr(exc)))
            return run

        _run_threads([tenant_main("leak-a", 1), tenant_main("leak-b", 2)])
        assert not failures, failures[:3]

    def test_cancellation_mid_statement(self, service):
        with ServiceClient(service.address) as client:
            session = client.open_session("mysql", tenant="cancel")
            session.execute("CREATE TABLE c (a INT)")
            session.execute("INSERT INTO c VALUES (1)")
            outcome = {}

            def run():
                try:
                    session.execute("SELECT * FROM c", delay_ms=5000)
                    outcome["status"] = "completed"
                except StatementCancelled:
                    outcome["status"] = "cancelled"

            thread = threading.Thread(target=run)
            started = time.monotonic()
            thread.start()
            delivered = False
            while not delivered and time.monotonic() - started < 4:
                delivered = session.cancel_from_new_connection()
                time.sleep(0.01)
            thread.join()
            assert delivered
            assert outcome["status"] == "cancelled"
            assert time.monotonic() - started < 4
            # The session is still usable after cancellation.
            assert session.execute("SELECT a FROM c") == [{"a": 1}]
            session.close()

    def test_cancel_without_inflight_statement_is_not_delivered(self, service):
        with ServiceClient(service.address) as client:
            session = client.open_session("mysql", tenant="cancel-idle")
            assert session.cancel_from_new_connection() is False
            session.close()

    @pytest.mark.slow
    def test_ddl_churn_with_concurrent_readers_heavy(self, service):
        failures = []

        def churn(position):
            def run():
                try:
                    with ServiceClient(service.address) as client:
                        session = client.open_session("postgresql", tenant="churn-heavy")
                        table = f"h{position}"
                        for cycle in range(30):
                            session.execute(f"CREATE TABLE {table} (x INT)")
                            session.execute(f"INSERT INTO {table} VALUES ({cycle})")
                            rows = session.execute(f"SELECT x FROM {table}")
                            if rows != [{"x": cycle}]:
                                failures.append((position, cycle, rows))
                            session.execute(f"DROP TABLE {table}")
                except Exception as exc:  # noqa: BLE001
                    failures.append((position, repr(exc)))
            return run

        _run_threads([churn(position) for position in range(8)])
        assert not failures, failures[:3]
