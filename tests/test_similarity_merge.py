"""Algebraic property tests for :meth:`PlanIndex.merge`.

The similarity layer's sharded-campaign handoff rests on the same argument
as the coverage store's (tests/test_merge_properties.py): merging indexes
is an **exact set union** over fingerprints, first write wins, so the
parent can fold per-round index payloads in any completion order, re-merge
after a crash, and merge across mismatched shard layouts, always landing
on the same index.  These fuzz that algebra with hypothesis-generated
fingerprint → integer-vector maps (integer-valued vectors, like real
embeddings, so distances stay exact).
"""

from hypothesis import given, settings, strategies as st

from repro.similarity import PlanIndex

_WIDTH = 6

#: Hex-ish fingerprints: realistic shard routing (leading hex digits) plus
#: the occasional non-hex key exercising the hash fallback.
_FINGERPRINTS = st.one_of(
    st.text(alphabet="0123456789abcdef", min_size=4, max_size=40),
    st.text(alphabet="ghxyz-", min_size=1, max_size=12),
)

#: Integer-valued vectors, like real embeddings.
_VECTORS = st.lists(
    st.integers(min_value=0, max_value=9).map(float),
    min_size=_WIDTH,
    max_size=_WIDTH,
).map(tuple)

_ENTRIES = st.dictionaries(_FINGERPRINTS, _VECTORS, max_size=25)

_SHARDS = st.sampled_from([1, 2, 3, 5, 16])


def _build(entries, shard_count):
    index = PlanIndex(shard_count=shard_count)
    for fingerprint, vector in entries.items():
        index.add(fingerprint, vector)
    return index


def _observable(index):
    """The order- and layout-independent observable state of an index."""
    return frozenset(
        (fingerprint, index.get(fingerprint)) for fingerprint in index
    )


@settings(max_examples=40, deadline=None)
@given(a=_ENTRIES, b=_ENTRIES, sa=_SHARDS, sb=_SHARDS, st_=_SHARDS)
def test_merge_commutes(a, b, sa, sb, st_):
    left = _build(a, st_)
    left.merge(_build(b, sb))
    right = _build(b, st_)
    right.merge(_build(a, sa))
    # First-wins can keep different vectors for a shared fingerprint only
    # if the two sides disagree on it — real embeddings cannot (they are
    # content-derived) — so restrict the claim to the fingerprint sets
    # plus the value-agreeing entries, exactly like the store's metadata.
    assert frozenset(left) == frozenset(right)
    for fingerprint in left:
        if a.get(fingerprint) == b.get(fingerprint) or (
            fingerprint in a
        ) != (fingerprint in b):
            assert left.get(fingerprint) == right.get(fingerprint)


@settings(max_examples=40, deadline=None)
@given(a=_ENTRIES, b=_ENTRIES, c=_ENTRIES, sa=_SHARDS, sb=_SHARDS, sc=_SHARDS)
def test_merge_associates(a, b, c, sa, sb, sc):
    # (A ∪ B) ∪ C
    left = _build(a, sa)
    left.merge(_build(b, sb))
    left.merge(_build(c, sc))
    # A ∪ (B ∪ C)
    inner = _build(b, sb)
    inner.merge(_build(c, sc))
    right = _build(a, sa)
    right.merge(inner)
    assert _observable(left) == _observable(right)


@settings(max_examples=40, deadline=None)
@given(entries=_ENTRIES, sa=_SHARDS, sb=_SHARDS)
def test_merge_idempotent(entries, sa, sb):
    index = _build(entries, sa)
    before = _observable(index)
    assert index.merge(_build(entries, sb)) == 0  # nothing is new
    assert _observable(index) == before
    # Self-merge via payload is equally a no-op.
    assert index.merge_payload(index.to_payload()) == 0
    assert _observable(index) == before


@settings(max_examples=40, deadline=None)
@given(a=_ENTRIES, b=_ENTRIES, sa=_SHARDS, sb=_SHARDS, st_=_SHARDS)
def test_merge_counts_exact_union(a, b, sa, sb, st_):
    # The return value is |B \ A|, independent of either shard layout.
    target = _build(a, st_)
    added = target.merge(_build(b, sb))
    assert added == len(set(b) - set(a))
    assert set(target.fingerprints()) == set(a) | set(b)


@settings(max_examples=40, deadline=None)
@given(a=_ENTRIES, b=_ENTRIES, sa=_SHARDS, sb=_SHARDS, st_=_SHARDS)
def test_payload_merge_equals_index_merge(a, b, sa, sb, st_):
    via_index = _build(a, st_)
    other = _build(b, sb)
    count_index = via_index.merge(other)
    via_payload = _build(a, st_)
    count_payload = via_payload.merge_payload(other.to_payload())
    assert count_index == count_payload
    assert _observable(via_index) == _observable(via_payload)


@settings(max_examples=25, deadline=None)
@given(
    parts=st.lists(_ENTRIES, min_size=1, max_size=5),
    shards=st.lists(_SHARDS, min_size=5, max_size=5),
    st_=_SHARDS,
)
def test_any_merge_order_reaches_the_same_union(parts, shards, st_):
    # The sharded parent may receive round payloads in any completion
    # order; first-wins disagreements aside (see test_merge_commutes),
    # the fingerprint set must be order-independent — and with disjoint
    # or agreeing parts (the realistic case) the vectors too.
    import itertools

    expected = None
    orders = list(itertools.permutations(range(len(parts))))[:6]
    for order in orders:
        target = PlanIndex(shard_count=st_)
        for position in order:
            target.merge_payload(_build(parts[position], shards[position]).to_payload())
        fingerprint_set = frozenset(target)
        if expected is None:
            expected = fingerprint_set
        else:
            assert fingerprint_set == expected


@settings(max_examples=25, deadline=None)
@given(entries=_ENTRIES, sa=_SHARDS, sb=_SHARDS, probe=_VECTORS)
def test_queries_independent_of_shard_layout_and_build_order(
    entries, sa, sb, probe
):
    # Same entries, different layouts and insertion orders: every query
    # must answer identically, bit for bit.
    forward = _build(entries, sa)
    backward = PlanIndex(shard_count=sb)
    for fingerprint in reversed(list(entries)):
        backward.add(fingerprint, entries[fingerprint])
    k = max(1, min(3, len(entries)))
    assert forward.query(probe, k=k) == backward.query(probe, k=k)
