"""Tests for catalog, storage, expression evaluation, planner, and executor."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.catalog import Column, Database, DataType, TableSchema
from repro.catalog.statistics import collect_column_statistics
from repro.engine import EvaluationContext, Executor, evaluate, evaluate_predicate
from repro.errors import CatalogError, ExecutionError, StorageError
from repro.optimizer import OpKind, Planner, PlannerOptions, estimate_selectivity
from repro.sqlparser import parse_one
from repro.sqlparser.parser import Parser
from repro.storage import HeapTable, OrderedIndex
from repro.storage.index import sortable
from repro.catalog.schema import Index


@pytest.fixture
def database():
    db = Database()
    planner = Planner(db)
    executor = Executor(db, planner)

    def run(sql):
        statement = parse_one(sql)
        plan = planner.plan_statement(statement)
        return executor.execute(plan), plan

    run("CREATE TABLE t0 (c0 INT, c1 INT)")
    run("CREATE TABLE t1 (c0 INT PRIMARY KEY, name TEXT)")
    run(
        "INSERT INTO t0 (c0, c1) VALUES "
        + ", ".join(f"({i}, {i % 5})" for i in range(1, 101))
    )
    run("INSERT INTO t1 (c0, name) VALUES " + ", ".join(f"({i}, 'n{i}')" for i in range(1, 21)))
    db.analyze()
    return db, run


class TestCatalogAndStorage:
    def test_duplicate_table_rejected(self, database):
        db, _ = database
        with pytest.raises(CatalogError):
            db.create_table(TableSchema("t0", [Column("x")]))

    def test_unknown_table(self, database):
        db, _ = database
        with pytest.raises(CatalogError):
            db.table("missing")

    def test_primary_key_gets_index(self, database):
        db, _ = database
        assert any(index.definition.primary for index in db.indexes_for("t1"))

    def test_create_index_populates_existing_rows(self, database):
        db, _ = database
        db.create_index("i_c1", "t0", ["c1"])
        index = db.index("i_c1")
        assert index.entry_count == 100
        assert len(index.lookup((3,))) == 20

    def test_heap_rejects_unknown_column(self):
        table = HeapTable(TableSchema("t", [Column("a")]))
        with pytest.raises(StorageError):
            table.insert({"b": 1})

    def test_heap_update_delete(self):
        table = HeapTable(TableSchema("t", [Column("a")]))
        row_id = table.insert({"a": 1})
        table.update(row_id, {"a": 2})
        assert table.get(row_id)["a"] == 2
        table.delete(row_id)
        with pytest.raises(StorageError):
            table.get(row_id)

    def test_unique_index_rejects_duplicates(self):
        index = OrderedIndex(Index("u", "t", ["a"], unique=True))
        index.insert((1,), 1)
        with pytest.raises(StorageError):
            index.insert((1,), 2)

    def test_index_range_scan(self):
        index = OrderedIndex(Index("i", "t", ["a"]))
        for value in (5, 1, 3, None, 9):
            index.insert((value,), value or 0)
        values = [key[0] for key, _ in index.range_scan(2, 8)]
        assert values == [3, 5]

    def test_sortable_handles_mixed_types(self):
        keys = [sortable((v,)) for v in (None, 3, "a", 1.5, True)]
        assert sorted(keys)  # no TypeError

    def test_statistics_collection(self):
        statistics = collect_column_statistics("c", [1, 2, 2, None, 10], is_numeric=True)
        assert statistics.distinct_values == 3
        assert statistics.null_fraction == pytest.approx(0.2)
        assert statistics.minimum == 1 and statistics.maximum == 10
        assert 0 < statistics.range_selectivity(low=2, high=5) <= 1

    def test_database_clone_isolated(self, database):
        db, _ = database
        clone = db.clone()
        clone.table("t0").truncate()
        assert db.table("t0").row_count == 100


class TestExpressionEvaluation:
    def _eval(self, text, row=None):
        expression = Parser(f"SELECT {text}").parse_statements()[0].body.items[0].expression
        return evaluate(expression, EvaluationContext(row=row or {}))

    def test_arithmetic(self):
        assert self._eval("1 + 2 * 3") == 7
        assert self._eval("10 / 4") == 2.5
        assert self._eval("10 % 3") == 1

    def test_division_by_zero_is_null(self):
        assert self._eval("1 / 0") is None

    def test_three_valued_logic(self):
        assert self._eval("NULL AND FALSE") is False
        assert self._eval("NULL AND TRUE") is None
        assert self._eval("NULL OR TRUE") is True
        assert self._eval("NOT NULL") is None

    def test_comparisons_with_null(self):
        assert self._eval("1 < NULL") is None
        assert self._eval("NULL = NULL") is None

    def test_in_list_null_semantics(self):
        assert self._eval("1 IN (1, 2)") is True
        assert self._eval("3 IN (1, NULL)") is None
        assert self._eval("3 NOT IN (1, 2)") is True

    def test_between_and_like(self):
        assert self._eval("5 BETWEEN 1 AND 10") is True
        assert self._eval("'hello' LIKE 'he%'") is True
        assert self._eval("'hello' LIKE 'h_llo'") is True
        assert self._eval("'hello' NOT LIKE 'x%'") is True

    def test_case_expression(self):
        assert self._eval("CASE WHEN 1 > 2 THEN 'a' ELSE 'b' END") == "b"

    def test_functions(self):
        assert self._eval("GREATEST(0.1, 0.2)") == 0.2
        assert self._eval("LEAST(3, 1, 2)") == 1
        assert self._eval("COALESCE(NULL, 5)") == 5
        assert self._eval("ABS(-3)") == 3
        assert self._eval("LENGTH('abc')") == 3
        assert self._eval("UPPER('ab')") == "AB"
        assert self._eval("CAST('3' AS INT)") == 3

    def test_column_resolution(self):
        row = {"t0.c0": 7, "other": 1}
        assert self._eval("t0.c0", row) == 7
        assert self._eval("c0", row) == 7

    def test_unknown_column_raises(self):
        with pytest.raises(ExecutionError):
            self._eval("missing_column", {"t0.c0": 1})

    def test_unknown_function_raises(self):
        with pytest.raises(ExecutionError):
            self._eval("NOT_A_FUNCTION(1)")

    def test_evaluate_predicate_none_is_true(self):
        assert evaluate_predicate(None, EvaluationContext()) is True


class TestPlannerAndExecutor:
    def test_filter_pushdown_on_seq_scan(self, database):
        _, run = database
        _, plan = run("SELECT * FROM t0 WHERE c0 < 10")
        scans = plan.find(OpKind.SEQ_SCAN)
        assert scans and scans[0].info["filter"] is not None

    def test_index_scan_chosen_for_pk_equality(self, database):
        _, run = database
        rows, plan = run("SELECT * FROM t1 WHERE c0 = 5")
        kinds = {node.kind for node in plan.walk()}
        assert OpKind.INDEX_SCAN in kinds or OpKind.INDEX_ONLY_SCAN in kinds
        assert len(rows) == 1

    def test_join_produces_correct_rows(self, database):
        _, run = database
        rows, plan = run(
            "SELECT t1.name FROM t0 INNER JOIN t1 ON t0.c0 = t1.c0 WHERE t0.c0 <= 3"
        )
        assert len(rows) == 3
        assert any(node.kind in (OpKind.HASH_JOIN, OpKind.NESTED_LOOP_JOIN, OpKind.MERGE_JOIN) for node in plan.walk())

    def test_left_join_keeps_unmatched(self, database):
        _, run = database
        rows, _ = run("SELECT t0.c0 FROM t0 LEFT JOIN t1 ON t0.c0 = t1.c0 WHERE t1.c0 IS NULL")
        assert len(rows) == 80

    def test_aggregation(self, database):
        _, run = database
        rows, _ = run("SELECT c1, COUNT(*) AS cnt, SUM(c0) AS total FROM t0 GROUP BY c1")
        assert len(rows) == 5
        assert sum(row["cnt"] for row in rows) == 100

    def test_aggregate_without_group_by_on_empty_input(self, database):
        _, run = database
        rows, _ = run("SELECT COUNT(*) AS cnt, SUM(c0) AS total FROM t0 WHERE c0 > 1000")
        assert rows[0]["cnt"] == 0
        assert rows[0]["total"] is None

    def test_having(self, database):
        _, run = database
        rows, _ = run("SELECT c1, COUNT(*) FROM t0 GROUP BY c1 HAVING COUNT(*) > 19")
        assert len(rows) == 5

    def test_order_by_and_limit(self, database):
        _, run = database
        rows, _ = run("SELECT c0 FROM t0 ORDER BY c0 DESC LIMIT 3")
        assert [row["c0"] for row in rows] == [100, 99, 98]

    def test_distinct(self, database):
        _, run = database
        rows, _ = run("SELECT DISTINCT c1 FROM t0")
        assert len(rows) == 5

    def test_union_and_union_all(self, database):
        _, run = database
        union_rows, _ = run("SELECT c1 FROM t0 UNION SELECT c1 FROM t0")
        union_all_rows, _ = run("SELECT c1 FROM t0 UNION ALL SELECT c1 FROM t0")
        assert len(union_rows) == 5
        assert len(union_all_rows) == 200

    def test_intersect_and_except(self, database):
        _, run = database
        intersect_rows, _ = run("SELECT c0 FROM t0 INTERSECT SELECT c0 FROM t1")
        except_rows, _ = run("SELECT c0 FROM t1 EXCEPT SELECT c0 FROM t0 WHERE c0 <= 10")
        assert len(intersect_rows) == 20
        assert len(except_rows) == 10

    def test_in_subquery(self, database):
        _, run = database
        rows, _ = run("SELECT c0 FROM t0 WHERE c0 IN (SELECT c0 FROM t1 WHERE c0 < 4)")
        assert sorted(row["c0"] for row in rows) == [1, 2, 3]

    def test_scalar_subquery(self, database):
        _, run = database
        rows, _ = run("SELECT c0 FROM t0 WHERE c0 > (SELECT MAX(c0) FROM t1)")
        assert len(rows) == 80

    def test_subquery_in_from(self, database):
        _, run = database
        rows, plan = run("SELECT sub.c1 FROM (SELECT c1 FROM t0 WHERE c0 < 11) AS sub GROUP BY sub.c1")
        assert len(rows) == 5
        assert plan.find(OpKind.SUBQUERY_SCAN)

    def test_update_and_delete(self, database):
        _, run = database
        rows, _ = run("UPDATE t0 SET c1 = 99 WHERE c0 <= 10")
        assert rows[0]["updated"] == 10
        rows, _ = run("DELETE FROM t0 WHERE c1 = 99")
        assert rows[0]["deleted"] == 10
        rows, _ = run("SELECT COUNT(*) FROM t0")
        assert rows[0]["COUNT(*)"] == 90

    def test_cross_join_cardinality(self, database):
        _, run = database
        rows, _ = run("SELECT COUNT(*) FROM t1 a, t1 b")
        assert rows[0]["COUNT(*)"] == 400

    def test_select_without_from(self, database):
        _, run = database
        rows, plan = run("SELECT 1 + 1 AS two")
        assert rows == [{"two": 2}]
        assert plan.find(OpKind.RESULT) or plan.kind is OpKind.RESULT

    def test_analyze_records_runtime(self, database):
        db, _ = database
        planner = Planner(db)
        executor = Executor(db, planner)
        plan = planner.plan_statement(parse_one("SELECT COUNT(*) FROM t0"))
        executor.execute(plan, analyze=True)
        assert plan.runtime.executed
        assert plan.runtime.actual_rows == 1

    def test_top_n_plan(self, database):
        _, run = database
        _, plan = run("SELECT c0 FROM t0 ORDER BY c0 LIMIT 5")
        kinds = {node.kind for node in plan.walk()}
        assert OpKind.TOP_N in kinds or OpKind.LIMIT in kinds

    def test_planner_options_disable_hash_join(self, database):
        db, _ = database
        planner = Planner(db, options=PlannerOptions(enable_hash_join=False, enable_merge_join=False))
        plan = planner.plan_statement(parse_one("SELECT * FROM t0 JOIN t1 ON t0.c0 = t1.c0"))
        assert not plan.find(OpKind.HASH_JOIN)

    def test_selectivity_estimates_are_probabilities(self, database):
        db, _ = database
        statement = parse_one("SELECT * FROM t0 WHERE c0 < 50 AND c1 = 3")
        resolver = lambda ref: db.statistics("t0").column(ref.column)
        selectivity = estimate_selectivity(statement.body.where, resolver)
        assert 0.0 <= selectivity <= 1.0


class TestExecutorProperties:
    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.integers(min_value=-50, max_value=50), min_size=0, max_size=40),
           st.integers(min_value=-50, max_value=50))
    def test_filter_matches_python_semantics(self, values, threshold):
        db = Database()
        planner = Planner(db)
        executor = Executor(db, planner)
        db.create_table(TableSchema("t", [Column("a", DataType.INTEGER)]))
        db.insert_rows("t", [{"a": value} for value in values])
        db.analyze()
        plan = planner.plan_statement(parse_one(f"SELECT a FROM t WHERE a < {threshold}"))
        rows = executor.execute(plan)
        assert sorted(row["a"] for row in rows) == sorted(v for v in values if v < threshold)

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=9), min_size=1, max_size=60))
    def test_group_by_count_total(self, values):
        db = Database()
        planner = Planner(db)
        executor = Executor(db, planner)
        db.create_table(TableSchema("t", [Column("a", DataType.INTEGER)]))
        db.insert_rows("t", [{"a": value} for value in values])
        db.analyze()
        plan = planner.plan_statement(parse_one("SELECT a, COUNT(*) AS c FROM t GROUP BY a"))
        rows = executor.execute(plan)
        assert sum(row["c"] for row in rows) == len(values)
        assert len(rows) == len(set(values))
