"""Tests for the nine simulated DBMS dialects."""

import json

import pytest

from repro.dialects import (
    DIALECTS,
    RELATIONAL_DIALECTS,
    available_dialects,
    create_dialect,
)
from repro.errors import DialectError, UnsupportedFormatError
from repro.storage.timeseries_store import Point
from repro.study import FORMAT_SUPPORT, PROFILES

SETUP = [
    "CREATE TABLE t0 (c0 INT, c1 INT)",
    "CREATE TABLE t1 (c0 INT)",
    "CREATE TABLE t2 (c0 INT PRIMARY KEY)",
    "INSERT INTO t0 (c0, c1) VALUES " + ", ".join(f"({i}, {i % 7})" for i in range(1, 301)),
    "INSERT INTO t1 (c0) VALUES " + ", ".join(f"({i})" for i in range(1, 41)),
    "INSERT INTO t2 (c0) VALUES " + ", ".join(f"({i})" for i in range(1, 101)),
]

LISTING1_QUERY = (
    "SELECT t1.c0 FROM t0 INNER JOIN t1 ON t0.c0 = t1.c0 WHERE t0.c0 < 100 "
    "GROUP BY t1.c0 UNION SELECT c0 FROM t2 WHERE c0 < 10"
)


def relational(name):
    dialect = create_dialect(name)
    for statement in SETUP:
        dialect.execute(statement)
    dialect.analyze_tables()
    return dialect


class TestRegistry:
    def test_all_nine_dialects_available(self):
        assert len(available_dialects()) == 9
        assert set(available_dialects()) == set(PROFILES)

    def test_unknown_dialect(self):
        with pytest.raises(KeyError):
            create_dialect("oracle")

    def test_versions_match_table1(self):
        for name in available_dialects():
            assert create_dialect(name).version == PROFILES[name].version

    def test_data_models_match_table1(self):
        for name in available_dialects():
            assert create_dialect(name).data_model == PROFILES[name].data_model


class TestRelationalDialects:
    @pytest.mark.parametrize("name", RELATIONAL_DIALECTS)
    def test_execute_returns_rows(self, name):
        dialect = relational(name)
        rows = dialect.execute("SELECT COUNT(*) FROM t0 WHERE c0 < 50")
        assert list(rows[0].values())[0] == 49

    @pytest.mark.parametrize("name", RELATIONAL_DIALECTS)
    def test_explain_listing1_query(self, name):
        dialect = relational(name)
        output = dialect.explain(LISTING1_QUERY)
        assert output.dbms == name
        assert len(output.text) > 40

    @pytest.mark.parametrize("name", RELATIONAL_DIALECTS)
    def test_all_declared_formats_serializable(self, name):
        dialect = relational(name)
        for format_name in dialect.supported_formats():
            output = dialect.explain("SELECT * FROM t0 WHERE c0 < 5", format=format_name)
            assert output.text

    @pytest.mark.parametrize("name", RELATIONAL_DIALECTS)
    def test_unsupported_format_rejected(self, name):
        dialect = relational(name)
        with pytest.raises(UnsupportedFormatError):
            dialect.explain("SELECT 1", format="protobuf")

    @pytest.mark.parametrize("name", RELATIONAL_DIALECTS)
    def test_results_identical_across_dialects(self, name):
        dialect = relational(name)
        rows = dialect.execute("SELECT c1, COUNT(*) AS c FROM t0 GROUP BY c1 ORDER BY c1")
        assert len(rows) == 7

    def test_explain_statement_prefix(self):
        dialect = relational("postgresql")
        rows = dialect.execute("EXPLAIN SELECT * FROM t0 WHERE c0 < 5")
        assert "Seq Scan" in rows[0]["QUERY PLAN"] or "Index" in rows[0]["QUERY PLAN"]

    def test_paper_format_support_is_available(self):
        # Every officially supported format of Table III that is relational
        # must be offered by the simulated dialect.
        for name in RELATIONAL_DIALECTS:
            dialect = create_dialect(name)
            for format_name in FORMAT_SUPPORT[name]:
                assert format_name in dialect.supported_formats()


class TestPostgreSQL:
    def test_text_plan_structure(self):
        dialect = relational("postgresql")
        text = dialect.explain(LISTING1_QUERY, format="text").text
        assert "HashAggregate" in text
        assert "Append" in text
        assert "Seq Scan on t0" in text
        assert "Index Only Scan" in text
        assert "Planning Time" in text

    def test_hash_join_has_hash_child(self):
        dialect = relational("postgresql")
        text = dialect.explain("SELECT * FROM t0 JOIN t1 ON t0.c0 = t1.c0", format="text").text
        assert "Hash Join" in text and "->  Hash " in text

    def test_json_plan_structure(self):
        dialect = relational("postgresql")
        document = json.loads(dialect.explain("SELECT * FROM t0 WHERE c0 < 3", format="json").text)
        assert document[0]["Plan"]["Node Type"] in ("Seq Scan", "Index Scan")
        assert "Planning Time" in document[0]

    def test_analyze_adds_actuals(self):
        dialect = relational("postgresql")
        text = dialect.explain("SELECT COUNT(*) FROM t1", format="text", analyze=True).text
        assert "actual" in text and "Execution Time" in text

    def test_parallel_plan_for_large_table(self):
        dialect = create_dialect("postgresql")
        dialect.execute("CREATE TABLE big (c0 INT)")
        dialect.execute("INSERT INTO big (c0) VALUES " + ", ".join(f"({i})" for i in range(500)))
        dialect.database.analyze()
        # Pretend the table is huge by dropping the threshold.
        dialect.parallel_threshold = 100
        text = dialect.explain("SELECT * FROM big", format="text").text
        assert "Gather" in text and "Parallel Seq Scan" in text
        assert "Workers Planned" in text


class TestMySQL:
    def test_table_format_lists_tables(self):
        dialect = relational("mysql")
        text = dialect.explain(LISTING1_QUERY, format="table").text
        assert "select_type" in text
        assert "| t0" in text and "| t2" in text

    def test_json_format(self):
        dialect = relational("mysql")
        document = json.loads(dialect.explain("SELECT * FROM t0 WHERE c0 < 5", format="json").text)
        assert "query_block" in document

    def test_tree_format(self):
        dialect = relational("mysql")
        text = dialect.explain("SELECT * FROM t0 JOIN t1 ON t0.c0 = t1.c0", format="tree").text
        assert text.startswith("->") and "join" in text.lower()


class TestTiDB:
    def test_operator_identifiers_are_numbered(self):
        dialect = relational("tidb")
        text = dialect.explain("SELECT * FROM t0 WHERE c0 < 5", format="table").text
        assert "TableReader_" in text or "IndexLookUp_" in text or "IndexReader_" in text
        assert "TableFullScan_" in text or "IndexRangeScan_" in text

    def test_reader_wrapping(self):
        dialect = relational("tidb")
        text = dialect.explain("SELECT * FROM t0 WHERE c0 < 5", format="table").text
        assert "Selection_" in text
        assert "cop[tikv]" in text

    def test_identifiers_change_between_plans(self):
        dialect = relational("tidb")
        first = dialect.explain("SELECT * FROM t1", format="table").text
        second = dialect.explain("SELECT * FROM t1", format="table").text
        assert first != second  # auto-generated suffixes are unstable


class TestSQLite:
    def test_text_is_only_format(self):
        dialect = relational("sqlite")
        assert dialect.supported_formats() == ["text"]

    def test_compound_query_markers(self):
        dialect = relational("sqlite")
        text = dialect.explain(LISTING1_QUERY).text
        assert "COMPOUND QUERY" in text
        assert "UNION USING TEMP B-TREE" in text
        assert "SCAN t" in text

    def test_group_by_temp_btree(self):
        dialect = relational("sqlite")
        text = dialect.explain("SELECT c1, COUNT(*) FROM t0 GROUP BY c1").text
        assert "USE TEMP B-TREE FOR GROUP BY" in text


class TestSQLServerAndSpark:
    def test_sqlserver_xml(self):
        dialect = relational("sqlserver")
        text = dialect.explain("SELECT * FROM t0 JOIN t1 ON t0.c0 = t1.c0", format="xml").text
        assert "ShowPlanXML" in text and "RelOp" in text

    def test_sqlserver_operator_names(self):
        dialect = relational("sqlserver")
        text = dialect.explain(LISTING1_QUERY, format="text").text
        assert "Hash Match" in text
        assert "Table Scan" in text

    def test_sparksql_physical_plan(self):
        dialect = relational("sparksql")
        text = dialect.explain("SELECT c1, COUNT(*) FROM t0 GROUP BY c1", format="text").text
        assert text.startswith("== Physical Plan ==")
        assert "HashAggregate" in text and "Exchange" in text


class TestMongoDB:
    def test_find_and_explain(self):
        dialect = create_dialect("mongodb")
        dialect.insert_many("users", [{"_id": i, "age": 20 + i % 10} for i in range(50)])
        dialect.create_index("users", "age")
        rows = dialect.find("users", {"age": {"$gte": 25}})
        assert all(row["age"] >= 25 for row in rows)
        explained = dialect.explain_find("users", {"age": {"$gte": 25}})
        assert explained["queryPlanner"]["winningPlan"]["stage"] == "FETCH"
        assert explained["queryPlanner"]["winningPlan"]["inputStage"]["stage"] == "IXSCAN"

    def test_collscan_without_index(self):
        dialect = create_dialect("mongodb")
        dialect.insert_many("users", [{"x": 1}])
        explained = dialect.explain_find("users", {"x": 1})
        assert explained["queryPlanner"]["winningPlan"]["stage"] == "COLLSCAN"

    def test_aggregate_pipeline(self):
        dialect = create_dialect("mongodb")
        dialect.insert_many("orders", [{"k": i % 3, "v": i} for i in range(30)])
        rows = dialect.aggregate(
            "orders",
            [{"$match": {"v": {"$gte": 0}}}, {"$group": {"_id": "$k", "total": {"$sum": "$v"}}}],
        )
        assert len(rows) == 3

    def test_execute_json_command(self):
        dialect = create_dialect("mongodb")
        dialect.execute(json.dumps({"insert": "c", "documents": [{"a": 1}, {"a": 2}]}))
        rows = dialect.execute(json.dumps({"find": "c", "filter": {"a": 2}}))
        assert rows == [{"a": 2}]

    def test_no_join_operations(self):
        # MongoDB has no Join category operations (Table II / VI).
        from repro.study import OPERATION_COUNTS
        from repro.core import OperationCategory

        assert OPERATION_COUNTS["mongodb"][OperationCategory.JOIN] == 0


class TestNeo4j:
    def _graph(self):
        dialect = create_dialect("neo4j")
        store = dialect.store
        people = [store.create_node(["Person"], {"name": f"p{i}", "age": 20 + i}) for i in range(10)]
        for i in range(9):
            store.create_relationship(
                people[i].node_id, "KNOWS", people[i + 1].node_id, {"title": "developer" if i % 2 else "qa"}
            )
        return dialect

    def test_node_query(self):
        dialect = self._graph()
        rows = dialect.execute("MATCH (p:Person) WHERE p.age > 25 RETURN p.name")
        assert len(rows) == 4

    def test_relationship_query_plan_figure1(self):
        dialect = self._graph()
        text = dialect.explain(
            "MATCH ()-[r]->() WHERE r.title ENDS WITH 'developer' RETURN r", format="text"
        ).text
        assert "ProduceResults" in text
        assert "UndirectedRelationshipIndexContainsScan" in text
        assert "Total database accesses" in text

    def test_aggregation(self):
        dialect = self._graph()
        rows = dialect.execute("MATCH (p:Person) RETURN count(*)")
        assert rows[0]["count(*)"] == 10

    def test_json_plan(self):
        dialect = self._graph()
        document = json.loads(dialect.explain("MATCH (p:Person) RETURN p.name", format="json").text)
        operators = [operator["Operator"] for operator in document["plan"]]
        assert "NodeByLabelScan" in operators
        assert operators[0] == "ProduceResults"

    def test_unsupported_cypher(self):
        dialect = self._graph()
        with pytest.raises(DialectError):
            dialect.execute("CREATE (n:Person)")


class TestInfluxDB:
    def _loaded(self):
        dialect = create_dialect("influxdb")
        points = [
            Point(timestamp=i * 10, tags={"host": f"h{i % 3}"}, fields={"cpu": float(i)})
            for i in range(100)
        ]
        dialect.write_points("metrics", points)
        return dialect

    def test_plan_has_only_properties(self):
        dialect = self._loaded()
        text = dialect.explain("SELECT cpu FROM metrics").text
        assert "NUMBER OF SERIES" in text
        assert "EXPRESSION" in text

    def test_series_and_shards_counted(self):
        dialect = self._loaded()
        properties = dialect.explain_properties("SELECT cpu FROM metrics")
        assert properties["NUMBER OF SERIES"] == 3
        assert properties["NUMBER OF SHARDS"] >= 1

    def test_execute_returns_points(self):
        dialect = self._loaded()
        rows = dialect.execute("SELECT cpu FROM metrics")
        assert len(rows) == 100

    def test_text_is_only_format(self):
        dialect = create_dialect("influxdb")
        assert dialect.supported_formats() == ["text"]
