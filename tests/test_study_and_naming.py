"""Tests for the case-study artefacts (Tables I–IV) and the naming registry."""

import pytest

from repro.core import OperationCategory, PropertyCategory, clean_identifier, default_registry
from repro.core.naming import NameRegistry
from repro.errors import NamingError
from repro.study import (
    FORMAT_SUPPORT,
    OPERATION_CATALOGUE,
    OPERATION_COUNTS,
    PROPERTY_CATALOGUE,
    PROPERTY_COUNTS,
    catalogued_operation_counts,
    catalogued_property_counts,
    commercial_fraction,
    format_counts,
    format_matrix,
    profile,
    studied_dbms_names,
    table1_rows,
    table4_rows,
)


class TestTable1:
    def test_nine_dbms_studied(self):
        assert len(studied_dbms_names()) == 9
        assert len(table1_rows()) == 9

    def test_data_models_cover_four_kinds(self):
        models = {profile(name).data_model for name in studied_dbms_names()}
        assert models == {"relational", "document", "graph", "time-series"}

    def test_specific_profiles(self):
        assert profile("postgresql").version == "14.7"
        assert profile("sqlserver").development == "commercial"
        assert profile("sqlite").architecture == "embedded"
        assert profile("tidb").rank == 79


class TestTable2:
    @pytest.mark.parametrize("dbms", sorted(OPERATION_COUNTS))
    def test_operation_counts_match_paper(self, dbms):
        assert catalogued_operation_counts(dbms) == OPERATION_COUNTS[dbms]

    @pytest.mark.parametrize("dbms", sorted(PROPERTY_COUNTS))
    def test_property_counts_match_paper(self, dbms):
        assert catalogued_property_counts(dbms) == PROPERTY_COUNTS[dbms]

    def test_totals_match_paper_sums(self):
        totals = {dbms: sum(counts.values()) for dbms, counts in OPERATION_COUNTS.items()}
        assert totals["neo4j"] == 111
        assert totals["influxdb"] == 0
        assert totals["postgresql"] == 42
        assert totals["tidb"] == 56
        property_totals = {dbms: sum(counts.values()) for dbms, counts in PROPERTY_COUNTS.items()}
        assert property_totals["postgresql"] == 107
        assert property_totals["sqlite"] == 3

    def test_average_operations_is_about_48(self):
        averages = sum(sum(c.values()) for c in OPERATION_COUNTS.values()) / len(OPERATION_COUNTS)
        assert 47 <= averages <= 49

    def test_mongodb_has_no_join_operations(self):
        assert OPERATION_COUNTS["mongodb"][OperationCategory.JOIN] == 0

    def test_neo4j_has_most_operations(self):
        totals = {dbms: sum(counts.values()) for dbms, counts in OPERATION_COUNTS.items()}
        assert max(totals, key=totals.get) == "neo4j"

    def test_catalogue_entries_unique_per_dbms(self):
        for dbms, entries in OPERATION_CATALOGUE.items():
            names = [native.lower() for native, _, _ in entries]
            assert len(names) == len(set(names)), dbms


class TestTable3:
    def test_matrix_has_nine_rows(self):
        assert len(format_matrix()) == 9

    def test_postgresql_supports_all_structured_formats(self):
        assert FORMAT_SUPPORT["postgresql"] == ("text", "table", "json", "xml", "yaml")

    def test_sqlite_and_influxdb_text_only(self):
        assert FORMAT_SUPPORT["sqlite"] == ("text",)
        assert FORMAT_SUPPORT["influxdb"] == ("text",)

    def test_json_most_supported_structured_format(self):
        counts = format_counts()
        assert counts["json"] > counts["xml"] >= counts["yaml"]

    def test_natural_more_supported_than_structured(self):
        counts = format_counts()
        natural = counts["graph"] + counts["text"] + counts["table"]
        structured = counts["json"] + counts["xml"] + counts["yaml"]
        assert natural > structured


class TestTable4:
    def test_seven_tools(self):
        assert len(table4_rows()) == 7

    def test_six_of_seven_commercial(self):
        assert commercial_fraction() == pytest.approx(6 / 7)


class TestNamingRegistry:
    def test_default_registry_covers_all_dbms(self):
        registry = default_registry()
        assert set(registry.dbms_names()) >= set(studied_dbms_names()) - {"influxdb"}

    def test_known_mapping(self):
        registry = default_registry()
        for dbms, native in (
            ("postgresql", "Seq Scan"),
            ("sqlserver", "Table Scan"),
            ("tidb", "TableFullScan"),
        ):
            category, unified = registry.resolve_operation(dbms, native)
            assert category is OperationCategory.PRODUCER
            assert unified == "Full Table Scan"

    def test_unknown_operation_fallback(self):
        registry = default_registry()
        category, unified = registry.resolve_operation("postgresql", "LLM Join 2030")
        assert category is OperationCategory.EXECUTOR
        assert unified.startswith("LLM")

    def test_strict_mode_raises(self):
        registry = NameRegistry()
        with pytest.raises(NamingError):
            registry.resolve_operation("postgresql", "Whatever", strict=True)
        with pytest.raises(NamingError):
            registry.resolve_property("postgresql", "Whatever", strict=True)

    def test_extensibility_llm_join_example(self):
        # Section IV-B: adding a new operation is one registration call.
        registry = NameRegistry()
        registry.register_operation("postgresql", "LLM Join", OperationCategory.JOIN)
        category, unified = registry.resolve_operation("postgresql", "LLM Join")
        assert category is OperationCategory.JOIN
        assert unified == "LLM Join"

    def test_property_resolution(self):
        registry = default_registry()
        category, unified = registry.resolve_property("postgresql", "Planning Time")
        assert category is PropertyCategory.STATUS
        category, unified = registry.resolve_property("mysql", "attached_condition")
        assert category is PropertyCategory.CONFIGURATION
        assert unified == "Filter"

    def test_counts_via_registry(self):
        registry = default_registry()
        assert registry.operation_count("sqlite") == sum(OPERATION_COUNTS["sqlite"].values())
        assert registry.operation_count("sqlite", OperationCategory.PRODUCER) == 3

    def test_clean_identifier(self):
        assert clean_identifier("TableFullScan") == "Table Full Scan"
        assert clean_identifier("hash-join!") == "hash join"
        assert clean_identifier("42") == "Op 42"
        assert clean_identifier("") == "Unknown"
