"""Tests for the plan pipeline: canonicalization, fingerprints, the converter
hub, and the batched ingestion service."""

import json
import os
import subprocess
import sys

import pytest

from repro.converters import ConverterHub, available_converters, converter_for, default_hub
from repro.core import (
    Operation,
    OperationCategory,
    PlanBuilder,
    PlanNode,
    Property,
    PropertyCategory,
    UnifiedPlan,
    identifier_pool,
    plans_equal,
    structural_fingerprint,
)
from repro.core.caching import LRUCache
from repro.dialects import create_dialect
from repro.pipeline import PlanIngestService, PlanSource


def sample_plan(flag="a") -> UnifiedPlan:
    return (
        PlanBuilder(source_dbms="mysql")
        .operation(OperationCategory.COMBINATOR, "Sort")
        .cost("Total Cost", 9.5)
        .configuration("Sort Key", flag)
        .child(OperationCategory.PRODUCER, "Full Table Scan")
        .configuration("name object", "t0")
        .end()
        .plan_prop(PropertyCategory.STATUS, "Planner", "v1")
        .build()
    )


class TestCanonicalization:
    def test_property_order_does_not_affect_fingerprint(self):
        left = sample_plan()
        right = sample_plan()
        right.root.properties.reverse()
        right.properties.reverse()
        assert left.root.properties != right.root.properties
        assert left.fingerprint() == right.fingerprint()

    def test_canonicalize_orders_properties_by_category_order(self):
        node = PlanNode(Operation(OperationCategory.PRODUCER, "Index Scan"))
        node.add_property(PropertyCategory.STATUS, "Actual Time", 1.0)
        node.add_property(PropertyCategory.CARDINALITY, "Estimated Rows", 5)
        node.add_property(PropertyCategory.COST, "Total Cost", 2.5)
        canonical = node.canonicalize()
        categories = [prop.category for prop in canonical.properties]
        assert categories == [
            PropertyCategory.CARDINALITY,
            PropertyCategory.COST,
            PropertyCategory.STATUS,
        ]

    def test_canonicalize_preserves_fingerprint_and_child_order(self):
        plan = sample_plan()
        canonical = plan.canonicalize()
        assert canonical.fingerprint() == plan.fingerprint()
        assert canonical.is_canonical()
        assert [n.operation for n in canonical.nodes()] == [
            n.operation for n in plan.nodes()
        ]

    def test_sort_children_normalizes_sibling_order(self):
        def two_children(order):
            root = PlanNode(Operation(OperationCategory.JOIN, "Hash Join"))
            for name in order:
                root.add_child(PlanNode(Operation(OperationCategory.PRODUCER, name)))
            return UnifiedPlan(root=root)

        forward = two_children(["Full Table Scan", "Index Scan"])
        backward = two_children(["Index Scan", "Full Table Scan"])
        assert forward.fingerprint() != backward.fingerprint()
        assert (
            forward.canonicalize(sort_children=True).fingerprint()
            == backward.canonicalize(sort_children=True).fingerprint()
        )


class TestFingerprintCache:
    def test_mutation_through_helpers_invalidates(self):
        plan = sample_plan()
        before = plan.fingerprint()
        plan.root.add_child(PlanNode(Operation(OperationCategory.EXECUTOR, "Gather")))
        assert plan.fingerprint() != before

    def test_direct_list_mutation_invalidates_owner(self):
        plan = sample_plan()
        before = plan.fingerprint()
        plan.root.children.append(
            PlanNode(Operation(OperationCategory.EXECUTOR, "Gather"))
        )
        assert plan.fingerprint() != before

    def test_root_reassignment_invalidates(self):
        plan = sample_plan()
        before = plan.fingerprint()
        plan.root = PlanNode(Operation(OperationCategory.EXECUTOR, "Result"))
        assert plan.fingerprint() != before

    def test_plan_property_mutation_invalidates(self):
        plan = sample_plan()
        before = plan.fingerprint()
        plan.add_property(PropertyCategory.STATUS, "Workers Planned", 2)
        assert plan.fingerprint() != before

    def test_copy_carries_cache_and_equality(self):
        plan = sample_plan()
        original = plan.fingerprint()
        twin = plan.copy()
        assert twin.fingerprint() == original
        assert plans_equal(plan, twin)
        assert hash(plan) == hash(twin)

    def test_source_dbms_and_query_do_not_affect_identity(self):
        left = sample_plan()
        right = sample_plan()
        right.source_dbms = "tidb"
        right.query = "SELECT 1"
        assert plans_equal(left, right)

    def test_fingerprint_stable_across_processes(self):
        plan = sample_plan()
        script = (
            "import sys; sys.path.insert(0, sys.argv[1])\n"
            "from tests.test_pipeline import sample_plan\n"
            "from repro.core.compare import structural_fingerprint\n"
            "plan = sample_plan()\n"
            "print(plan.fingerprint()); print(structural_fingerprint(plan))\n"
        )
        repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(repo_root, "src")
        output = subprocess.check_output(
            [sys.executable, "-c", script, repo_root], env=env, text=True
        ).split()
        assert output[0] == plan.fingerprint()
        assert output[1] == structural_fingerprint(plan)

    def test_plans_usable_as_dict_keys(self):
        index = {sample_plan(): "first"}
        assert index[sample_plan().copy()] == "first"


class TestInterning:
    def test_identifiers_share_one_string_object(self):
        a = Operation(OperationCategory.PRODUCER, "Full" + " Table Scan")
        b = Operation(OperationCategory.PRODUCER, "Full Table " + "Scan")
        assert a.identifier is b.identifier

    def test_property_identifiers_interned(self):
        a = Property(PropertyCategory.COST, "Total" + " Cost", 1)
        b = Property(PropertyCategory.COST, "Total Cost", 2)
        assert a.identifier is b.identifier
        assert "Total Cost" in identifier_pool()


class TestLRUCache:
    def test_eviction_and_stats(self):
        cache = LRUCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refreshes "a"
        cache.put("c", 3)  # evicts "b"
        assert cache.get("b") is None
        assert cache.get("c") == 3
        assert cache.stats.hits == 2
        assert cache.stats.misses == 1
        assert cache.stats.evictions == 1
        assert 0.0 < cache.stats.hit_rate < 1.0


class TestConverterHub:
    def test_alias_resolution(self, hub):
        assert hub.resolve_name("postgres") == "postgresql"
        assert hub.resolve_name("PG") == "postgresql"
        assert hub.resolve_name("mssql") == "sqlserver"
        assert converter_for("mongo").dbms == "mongodb"

    def test_conversion_cached_by_source_hash(self, hub, pg_raw):
        first = hub.convert("postgresql", pg_raw, "json")
        second = hub.convert("postgresql", pg_raw, "json")
        assert first is second  # shared frozen plan
        assert hub.cache_stats.hits == 1
        assert hub.cache_stats.misses == 1
        assert hub.is_cached("postgresql", pg_raw, "json")

    def test_copy_on_hit_returns_independent_plans(self, pg_raw):
        hub = ConverterHub(copy_on_hit=True)
        first = hub.convert("postgresql", pg_raw, "json")
        second = hub.convert("postgresql", pg_raw, "json")
        assert first is not second
        assert plans_equal(first, second)

    def test_cached_plans_have_precomputed_fingerprints(self, hub, pg_raw):
        plan = hub.convert("postgresql", pg_raw, "json")
        assert plan._fp_cache  # fingerprint computed at conversion time

    def test_put_cached_seeds_external_conversions(self, hub, pg_raw):
        plan = ConverterHub().convert("postgresql", pg_raw, "json")
        key = hub.cache_key("postgresql", pg_raw, "json")
        assert not hub.contains_key(key)
        hub.put_cached(key, plan)
        assert hub.contains_key(key)
        seeded, parsed = hub.convert_traced("postgresql", pg_raw, "json")
        assert seeded is plan and not parsed

    def test_shared_converter_instances(self, hub):
        assert hub.converter("postgresql") is hub.converter("postgres")

    def test_default_hub_is_shared(self):
        assert default_hub() is default_hub()
        assert set(ConverterHub.dbms_names()) == set(available_converters())


class TestIngestService:
    def test_batch_converts_only_unique_sources(self, sample_sources):
        service = PlanIngestService(hub=ConverterHub())
        sources = sample_sources(1000)
        unique_texts = len({source.text for source in sources})
        report = service.ingest_batch(sources)
        assert len(report.entries) == 1000
        assert report.conversions == unique_texts
        assert report.cache_hits == 1000 - unique_texts
        assert service.stats.conversions == unique_texts
        assert service.stats.cache_hits == 1000 - unique_texts
        assert report.errors == 0

    def test_fingerprint_dedup_within_batch(self, sample_sources):
        service = PlanIngestService(hub=ConverterHub())
        report = service.ingest_batch(sample_sources(50))
        firsts = [e for e in report.entries if e.duplicate_of is None]
        duplicates = [e for e in report.entries if e.duplicate_of is not None]
        assert len(firsts) == report.unique_fingerprints
        assert duplicates
        for entry in duplicates:
            original = report.entries[entry.duplicate_of]
            assert original.fingerprint == entry.fingerprint
            assert original.plan is entry.plan  # shared representative

    def test_dedup_across_batches(self, sample_sources):
        service = PlanIngestService(hub=ConverterHub())
        first = service.ingest_batch(sample_sources(40))
        second = service.ingest_batch(sample_sources(40))
        assert first.new_fingerprints > 0
        assert second.new_fingerprints == 0
        assert second.conversions == 0  # conversion cache already warm
        assert service.unique_plan_count() == first.unique_fingerprints

    def test_report_plans_are_deduplicated(self, sample_sources):
        service = PlanIngestService(hub=ConverterHub())
        report = service.ingest_batch(sample_sources(30))
        plans = report.plans()
        assert len(plans) == report.unique_fingerprints
        assert len({plan.fingerprint() for plan in plans}) == len(plans)

    def test_per_dbms_stats(self, sample_sources):
        service = PlanIngestService(hub=ConverterHub())
        report = service.ingest_batch(sample_sources(20))
        stats = report.per_dbms["postgresql"]
        assert stats.sources == 20
        assert stats.conversions + stats.cache_hits == 20
        assert stats.unique_plans == report.unique_fingerprints
        assert service.per_dbms_stats()["postgresql"].sources == 20

    def test_conversion_errors_are_captured(self, sample_sources):
        service = PlanIngestService(hub=ConverterHub())
        good = sample_sources(2)
        bad = PlanSource("postgresql", "definitely { not json", "json")
        report = service.ingest_batch(good + [bad])
        assert report.errors == 1
        assert report.entries[2].error
        assert not report.entries[2].ok
        assert report.entries[0].ok
        assert report.per_dbms["postgresql"].errors == 1

    def test_unknown_dbms_is_an_entry_error(self):
        service = PlanIngestService(hub=ConverterHub())
        report = service.ingest_batch([PlanSource("oracle", "whatever")])
        assert report.errors == 1
        assert "no converter registered" in report.entries[0].error

    def test_single_ingest(self, sample_sources):
        service = PlanIngestService(hub=ConverterHub())
        entry = service.ingest(sample_sources(1)[0])
        assert entry.ok and entry.converted
        again = service.ingest(entry.source)
        assert again.ok and not again.converted
        assert again.fingerprint == entry.fingerprint

    def test_threaded_batch_matches_sequential(self, sample_sources):
        sources = sample_sources(64)
        sequential = PlanIngestService(hub=ConverterHub(), max_workers=1)
        threaded = PlanIngestService(
            hub=ConverterHub(), max_workers=4, parallel_threshold=2
        )
        left = sequential.ingest_batch(sources)
        right = threaded.ingest_batch(sources)
        assert left.conversions == right.conversions
        assert left.unique_fingerprints == right.unique_fingerprints
        assert [e.fingerprint for e in left.entries] == [
            e.fingerprint for e in right.entries
        ]

    def test_process_pool_batch_matches_sequential(self, sample_sources):
        sources = sample_sources(64)
        sequential = PlanIngestService(hub=ConverterHub(), max_workers=1)
        with PlanIngestService(
            hub=ConverterHub(),
            executor="process",
            max_workers=2,
            process_threshold=2,
        ) as pooled:
            left = sequential.ingest_batch(sources)
            right = pooled.ingest_batch(sources)
            assert left.conversions == right.conversions
            assert left.unique_fingerprints == right.unique_fingerprints
            assert [e.fingerprint for e in left.entries] == [
                e.fingerprint for e in right.entries
            ]
            # The parent hub was seeded with the pool's conversions, so a
            # second batch is served without parsing anywhere.
            again = pooled.ingest_batch(sources)
            assert again.conversions == 0

    def test_process_pool_captures_conversion_errors(self, sample_sources):
        with PlanIngestService(
            hub=ConverterHub(),
            executor="process",
            max_workers=2,
            process_threshold=1,
        ) as service:
            bad = PlanSource("postgresql", "definitely { not json", "json")
            report = service.ingest_batch(sample_sources(4) + [bad])
            assert report.errors == 1
            assert not report.entries[4].ok

    def test_mixed_dbms_batch(self, pg_dialect):
        pg = pg_dialect
        sqlite = create_dialect("sqlite")
        sqlite.execute("CREATE TABLE t0 (c0 INT, c1 INT)")
        sqlite.execute("INSERT INTO t0 (c0, c1) VALUES (1, 2)")
        sources = [
            PlanSource(
                "postgresql",
                pg.explain("SELECT c0 FROM t0 WHERE c1 < 2", format="json").text,
                "json",
            ),
            PlanSource("sqlite", sqlite.explain("SELECT c0 FROM t0 WHERE c1 < 2").text),
        ] * 3
        service = PlanIngestService(hub=ConverterHub())
        report = service.ingest_batch(sources)
        assert set(report.per_dbms) == {"postgresql", "sqlite"}
        assert report.conversions == 2
        assert report.per_dbms["postgresql"].conversions == 1
        assert report.per_dbms["sqlite"].conversions == 1


class TestFrozenPlanContract:
    """The documented frozen-plan invariant, tested as behaviour.

    Plans returned by the hub/service are shared — between duplicate batch
    entries, with the conversion cache, and with the service's coverage
    index.  The contract (see ``repro/pipeline/ingest.py``): mutating a
    returned plan without ``copy()`` invalidates its cached fingerprints,
    so the recomputed fingerprint diverges from the index key the plan is
    filed under, corrupting deduplication for every sharer.  Consumers that
    need to mutate must ``copy()`` first.
    """

    def test_mutation_invalidates_the_returned_fingerprint(self, tiny_corpus):
        service = PlanIngestService(hub=ConverterHub())
        entry = service.ingest(tiny_corpus[0])
        assert entry.plan.fingerprint() == entry.fingerprint
        entry.plan.root.add_child(
            PlanNode(Operation(OperationCategory.EXECUTOR, "Gather"))
        )
        # The invariant: in-place mutation does not go unnoticed — the
        # plan's identity visibly diverges from the fingerprint it was
        # ingested under (rather than silently keeping the stale digest).
        assert entry.plan.fingerprint() != entry.fingerprint

    def test_mutation_without_copy_corrupts_shared_state(self, tiny_corpus):
        service = PlanIngestService(hub=ConverterHub())
        entry = service.ingest(tiny_corpus[0])
        shared = service.plan_for(entry.fingerprint)
        assert shared is entry.plan  # the index holds the same object
        entry.plan.root.add_child(
            PlanNode(Operation(OperationCategory.EXECUTOR, "Gather"))
        )
        # The corruption the contract warns about: the indexed plan no
        # longer hashes to the fingerprint it is filed under, and the
        # conversion cache now returns the mutated object for the original
        # raw text.
        assert service.plan_for(entry.fingerprint).fingerprint() != entry.fingerprint
        resurfaced = service.ingest(tiny_corpus[0])
        assert resurfaced.plan is entry.plan

    def test_copy_isolates_mutation(self, tiny_corpus):
        service = PlanIngestService(hub=ConverterHub())
        entry = service.ingest(tiny_corpus[0])
        twin = entry.plan.copy()
        twin.root.add_child(
            PlanNode(Operation(OperationCategory.EXECUTOR, "Gather"))
        )
        assert twin.fingerprint() != entry.fingerprint
        # The shared original (and therefore the index) is untouched.
        assert entry.plan.fingerprint() == entry.fingerprint
        assert service.plan_for(entry.fingerprint).fingerprint() == entry.fingerprint

    def test_mutation_below_fingerprinted_ancestor_needs_invalidate(self, tiny_corpus):
        service = PlanIngestService(hub=ConverterHub())
        plan = service.ingest(tiny_corpus[0]).plan.copy()
        before = plan.fingerprint()
        leaf = plan.leaf_nodes()[0]
        # Mutating a descendant clears only the descendant's cache; the
        # already-fingerprinted ancestors keep their digests until
        # invalidate_fingerprints() is called on the outermost tree.
        leaf.add_property(PropertyCategory.CONFIGURATION, "Extra Flag", True)
        assert plan.fingerprint() == before  # documented staleness
        plan.invalidate_fingerprints()
        assert plan.fingerprint() != before


class TestQPGIntegration:
    def test_qpg_uses_shared_ingest_service(self):
        from repro.testing.generator import GeneratorConfig, RandomQueryGenerator
        from repro.testing.qpg import QPGConfig, QueryPlanGuidance

        service = PlanIngestService(hub=ConverterHub())
        dialect = create_dialect("postgresql")
        generator = RandomQueryGenerator(seed=7, config=GeneratorConfig(max_tables=2))
        qpg = QueryPlanGuidance(
            dialect,
            generator,
            config=QPGConfig(queries_per_round=40, run_tlp=False),
            ingest_service=service,
        )
        statistics = qpg.run()
        assert statistics.queries_generated == 40
        assert statistics.unique_plans == len(qpg.seen_fingerprints)
        assert service.stats.sources > 0
        assert service.stats.conversions <= service.stats.sources

    def test_campaign_reports_union_coverage_and_cache_stats(self):
        from repro.testing.campaign import TestingCampaign

        campaign = TestingCampaign(
            dbms_names=["postgresql"], queries_per_dbms=40, cert_pairs_per_dbms=10
        )
        result = campaign.run()
        assert result.unique_plans == len(result.plan_fingerprints)
        assert result.conversions > 0
        assert result.conversions + result.conversion_cache_hits >= result.queries_generated


class TestReviewRegressions:
    """Regressions for issues found in review: pickle/deepcopy staleness,
    alias-canonical dedup, bounded interning, XML value fidelity."""

    def test_deepcopy_does_not_carry_stale_fingerprints(self):
        import copy

        plan = sample_plan()
        original = plan.fingerprint()
        clone = copy.deepcopy(plan)
        assert clone.fingerprint() == original
        clone.root.properties.append(
            Property(PropertyCategory.STATUS, "Workers Planned", 2)
        )
        assert clone.fingerprint() != original
        assert plan.fingerprint() == original  # original untouched

    def test_pickle_round_trip_rewraps_lists(self):
        import pickle

        plan = sample_plan()
        original = plan.fingerprint()
        restored = pickle.loads(pickle.dumps(plan))
        assert restored.fingerprint() == original
        restored.root.children.append(
            PlanNode(Operation(OperationCategory.EXECUTOR, "Gather"))
        )
        assert restored.fingerprint() != original

    def test_alias_variants_dedupe_to_one_conversion(self, pg_raw):
        service = PlanIngestService(hub=ConverterHub())
        report = service.ingest_batch(
            [
                PlanSource("postgresql", pg_raw, "json"),
                PlanSource("postgres", pg_raw, "json"),
                PlanSource("PG", pg_raw, "json"),
            ]
        )
        assert report.conversions == 1
        assert report.cache_hits == 2
        assert set(report.per_dbms) == {"postgresql"}
        assert report.per_dbms["postgresql"].unique_plans == 1
        assert service.per_dbms_stats()["postgresql"].unique_plans == 1

    def test_intern_pool_is_bounded(self):
        from repro.core import IdentifierPool

        pool = IdentifierPool(max_size=2)
        a = pool.intern("Alpha")
        b = pool.intern("Beta")
        c = pool.intern("Gamma")  # pool full: passes through un-pooled
        assert a == "Alpha" and b == "Beta" and c == "Gamma"
        assert len(pool) == 2
        assert "Gamma" not in pool
        assert pool.intern("Alpha") is a  # existing entries still shared

    def test_xml_preserves_padded_strings_and_inf(self):
        from repro.core import formats

        plan = UnifiedPlan()
        plan.add_property(PropertyCategory.CONFIGURATION, "Filter", "  padded  ")
        plan.add_property(PropertyCategory.COST, "Total Cost", float("inf"))
        restored = formats.deserialize(formats.serialize(plan, "xml"), "xml")
        values = {p.identifier: p.value for p in restored.properties}
        assert values["Filter"] == "  padded  "
        assert values["Total Cost"] == float("inf")
        assert restored.fingerprint() == plan.fingerprint()

    def test_fingerprint_separator_injection_has_no_collision(self):
        # A value embedding the framing marker and a forged property line
        # must not collide with the plan that really has two properties.
        forged = PlanNode(Operation(OperationCategory.PRODUCER, "Scan"))
        forged.add_property(
            PropertyCategory.COST, "A", "v\x01Cost->B=s:w"
        )
        real = PlanNode(Operation(OperationCategory.PRODUCER, "Scan"))
        real.add_property(PropertyCategory.COST, "A", "v")
        real.add_property(PropertyCategory.COST, "B", "w")
        assert forged.fingerprint() != real.fingerprint()

    def test_qpg_raises_conversion_error_for_unparsable_plans(self):
        from repro.errors import ConversionError
        from repro.testing.generator import GeneratorConfig, RandomQueryGenerator
        from repro.testing.qpg import QueryPlanGuidance

        class BrokenDialect:
            name = "postgresql"

            def explain(self, query, format=None):
                class Output:
                    text = "{{{ not a plan"

                return Output()

        qpg = QueryPlanGuidance(
            BrokenDialect(),
            RandomQueryGenerator(seed=1, config=GeneratorConfig(max_tables=1)),
            ingest_service=PlanIngestService(hub=ConverterHub()),
        )
        with pytest.raises(ConversionError):
            qpg.observe_plan("SELECT 1")

    def test_extension_converter_wins_over_builtin_alias(self):
        from repro.converters.base import PlanConverter

        class SparkConverter(PlanConverter):
            dbms = "spark"
            formats = ("text",)

        assert ConverterHub.resolve_name("spark") == "sparksql"  # alias today
        ConverterHub.register(SparkConverter)
        try:
            assert ConverterHub.resolve_name("spark") == "spark"
            assert converter_for("spark").__class__ is SparkConverter
        finally:
            del ConverterHub._classes["spark"]
            ConverterHub._alias_names["spark"] = "sparksql"
            default_hub()._instances.pop("spark", None)
        assert ConverterHub.resolve_name("spark") == "sparksql"

    def test_campaign_counters_are_per_run(self):
        from repro.testing.campaign import TestingCampaign

        def run():
            return TestingCampaign(
                dbms_names=["postgresql"], queries_per_dbms=15, cert_pairs_per_dbms=5
            ).run()

        first, second = run(), run()
        assert first.conversions > 0
        # A fresh hub per campaign: the second run parses for itself instead
        # of inheriting the first run's warm process-wide cache.
        assert second.conversions == first.conversions

    def test_exotic_line_terminators_round_trip_all_formats(self):
        from repro.core import formats

        plan = UnifiedPlan()
        for index, value in enumerate(
            ["a\rb", "a\x0bb", "line1\nline2", "u v", "tab\there"]
        ):
            plan.add_property(PropertyCategory.CONFIGURATION, f"Weird {index}", value)
        for name in formats.parseable_formats():
            restored = formats.deserialize(formats.serialize(plan, name), name)
            assert restored.fingerprint() == plan.fingerprint(), name
            assert [p.value for p in restored.properties] == [
                p.value for p in plan.properties
            ], name

    def test_inplace_repeat_invalidates_fingerprint(self):
        node = PlanNode(Operation(OperationCategory.PRODUCER, "Scan"))
        node.add_child(PlanNode(Operation(OperationCategory.PRODUCER, "Index Scan")))
        before = node.fingerprint()
        children = node.children
        children *= 2
        assert len(node.children) == 2
        assert node.fingerprint() != before
