"""The prepared-query cache: hits, version invalidation, and invisibility.

Three properties are asserted:

* **Versioning** — every mutation class (DDL, insert/update/delete,
  ``analyze_tables``) bumps the database's catalog version, so cached plans
  for the old state become unreachable and a schema change is reflected by
  the very next EXPLAIN.
* **Reuse** — repeated statement texts hit the AST cache, repeated texts
  against an unmutated database hit the plan cache, and QPG's
  explain+execute of one query plans it exactly once.
* **Invisibility** — a campaign (QPG + TLP + CERT over seeded faults) run
  with the cache off produces the identical coverage set and identical
  Table V rows as the same campaign with the cache on.
"""

import json

from repro.dialects import create_dialect
from repro.dialects.prepared import PreparedQueryCache, normalize_sql
from repro.testing.campaign import TestingCampaign
from repro.testing.generator import GeneratorConfig, RandomQueryGenerator
from repro.testing.qpg import QPGConfig, QueryPlanGuidance
from repro.pipeline import PlanIngestService
from repro.converters import ConverterHub


class TestCatalogVersion:
    """Every mutating operation advances Database.version."""

    def _versions_around(self, dialect, statement):
        before = dialect.database.version
        dialect.execute(statement)
        return before, dialect.database.version

    def test_create_table_bumps(self):
        dialect = create_dialect("postgresql")
        before, after = self._versions_around(dialect, "CREATE TABLE t (a INT)")
        assert after > before

    def test_insert_bumps(self):
        dialect = create_dialect("postgresql")
        dialect.execute("CREATE TABLE t (a INT)")
        before, after = self._versions_around(dialect, "INSERT INTO t (a) VALUES (1)")
        assert after > before

    def test_update_bumps(self):
        dialect = create_dialect("postgresql")
        dialect.execute("CREATE TABLE t (a INT)")
        dialect.execute("INSERT INTO t (a) VALUES (1)")
        before, after = self._versions_around(dialect, "UPDATE t SET a = 2")
        assert after > before

    def test_delete_bumps(self):
        dialect = create_dialect("postgresql")
        dialect.execute("CREATE TABLE t (a INT)")
        dialect.execute("INSERT INTO t (a) VALUES (1)")
        before, after = self._versions_around(dialect, "DELETE FROM t")
        assert after > before

    def test_create_index_bumps(self):
        dialect = create_dialect("postgresql")
        dialect.execute("CREATE TABLE t (a INT)")
        before, after = self._versions_around(dialect, "CREATE INDEX i ON t (a)")
        assert after > before

    def test_drop_table_bumps(self):
        dialect = create_dialect("postgresql")
        dialect.execute("CREATE TABLE t (a INT)")
        before, after = self._versions_around(dialect, "DROP TABLE t")
        assert after > before

    def test_analyze_tables_bumps(self):
        dialect = create_dialect("postgresql")
        dialect.execute("CREATE TABLE t (a INT)")
        before = dialect.database.version
        dialect.analyze_tables()
        assert dialect.database.version > before

    def test_empty_update_still_consistent(self):
        dialect = create_dialect("postgresql")
        dialect.execute("CREATE TABLE t (a INT)")
        # Updating zero rows changes nothing — bumping is allowed but a
        # cached plan for the unchanged state must still be correct either
        # way; what matters is that results stay right.
        dialect.execute("UPDATE t SET a = 1 WHERE a = 99")
        assert dialect.execute("SELECT * FROM t") == []


class TestNormalization:
    def test_whitespace_insensitive_when_safe(self):
        assert normalize_sql("SELECT  1  FROM   t") == normalize_sql(
            "SELECT 1\nFROM t"
        )

    def test_string_literals_block_collapsing(self):
        left = normalize_sql("SELECT 'a  b'")
        right = normalize_sql("SELECT 'a b'")
        assert left != right

    def test_quoted_identifiers_block_collapsing(self):
        assert normalize_sql('SELECT "a  b" FROM t') == 'SELECT "a  b" FROM t'

    def test_comments_block_collapsing(self):
        text = "SELECT 1 -- c\n, 2"
        assert normalize_sql(text) == text.strip()


class TestPlanReuse:
    def test_repeated_query_hits_both_caches(self):
        dialect = create_dialect("postgresql")
        dialect.execute("CREATE TABLE t (a INT)")
        dialect.execute("INSERT INTO t (a) VALUES (1), (2), (3)")
        dialect.analyze_tables()
        dialect.prepared.clear(reset_stats=True)
        for _ in range(5):
            dialect.execute("SELECT * FROM t WHERE a < 3")
        assert dialect.prepared.ast_stats.hits == 4
        assert dialect.prepared.ast_stats.misses == 1
        assert dialect.prepared.plan_stats.hits == 4
        assert dialect.prepared.plan_stats.misses == 1

    def test_whitespace_variants_share_one_ast(self):
        dialect = create_dialect("postgresql")
        dialect.execute("CREATE TABLE t (a INT)")
        dialect.prepared.clear(reset_stats=True)
        dialect.execute("SELECT * FROM t")
        dialect.execute("SELECT  *  FROM  t")
        assert dialect.prepared.ast_stats.hits == 1

    def test_explain_then_execute_plans_once(self):
        dialect = create_dialect("postgresql")
        dialect.execute("CREATE TABLE t (a INT)")
        dialect.execute("INSERT INTO t (a) VALUES (1)")
        dialect.analyze_tables()
        dialect.prepared.clear(reset_stats=True)
        query = "SELECT * FROM t WHERE a = 1"
        dialect.explain(query, format="json")
        dialect.execute(query)
        assert dialect.prepared.plan_stats.misses == 1
        assert dialect.prepared.plan_stats.hits == 1

    def test_mutation_invalidates_cached_plan(self):
        dialect = create_dialect("postgresql")
        dialect.execute("CREATE TABLE t (a INT, b INT)")
        dialect.execute(
            "INSERT INTO t (a, b) VALUES "
            + ", ".join(f"({i}, {i % 5})" for i in range(200))
        )
        dialect.analyze_tables()
        query = "SELECT * FROM t WHERE a = 7"
        before = dialect.explain(query, format="json").text
        # A new index must show up in the very next plan: the catalog
        # version bump makes the cached pre-index plan unreachable.
        dialect.execute("CREATE INDEX t_a ON t (a)")
        dialect.analyze_tables()
        after = dialect.explain(query, format="json").text
        assert "Index" in after
        assert before != after

    def test_stale_results_never_served(self):
        dialect = create_dialect("postgresql")
        dialect.execute("CREATE TABLE t (a INT)")
        query = "SELECT * FROM t"
        assert dialect.execute(query) == []
        dialect.execute("INSERT INTO t (a) VALUES (41)")
        assert dialect.execute(query) == [{"t.a": 41}]
        dialect.execute("UPDATE t SET a = 42")
        assert dialect.execute(query) == [{"t.a": 42}]
        dialect.execute("DELETE FROM t")
        assert dialect.execute(query) == []

    def test_multi_statement_scripts_plan_per_version(self):
        dialect = create_dialect("postgresql")
        script = (
            "CREATE TABLE s (a INT); "
            "INSERT INTO s (a) VALUES (1); "
            "SELECT * FROM s; "
            "DROP TABLE s"
        )
        # Executing the identical script twice re-plans each statement at
        # its execution-time catalog version; a stale CREATE/SELECT plan
        # from the first run would make the second run fail or lie.
        for _ in range(2):
            dialect.execute(script)
        assert not dialect.database.has_table("s")

    def test_explain_analyze_loops_do_not_accumulate(self):
        dialect = create_dialect("postgresql")
        dialect.execute("CREATE TABLE t (a INT)")
        dialect.execute("INSERT INTO t (a) VALUES (1), (2)")
        dialect.analyze_tables()
        query = "SELECT * FROM t"
        loops = []
        for _ in range(3):
            text = dialect.explain(query, format="json", analyze=True).text
            document = json.loads(text)[0]["Plan"]
            loops.append(document["Actual Loops"])
        # The cached physical tree is shared across the three calls; each
        # EXPLAIN ANALYZE must still report exactly one loop.
        assert loops == [1, 1, 1]

    def test_disabled_cache_stores_nothing(self):
        dialect = create_dialect("postgresql")
        dialect.prepared.enabled = False
        dialect.execute("CREATE TABLE t (a INT)")
        for _ in range(3):
            dialect.execute("SELECT * FROM t")
        assert len(dialect.prepared) == 0
        assert dialect.prepared.ast_stats.lookups == 0

    def test_cache_object_standalone(self):
        cache = PreparedQueryCache(ast_size=2, plan_size=2)
        key, statements = cache.parse("SELECT 1")
        assert cache.parse("SELECT 1")[1] is statements
        sentinel = object()
        assert cache.plan(key, 0, 0, lambda: sentinel) is sentinel
        assert cache.plan(key, 0, 0, lambda: object()) is sentinel
        # A different version misses and re-plans.
        other = object()
        assert cache.plan(key, 0, 1, lambda: other) is other


class TestQPGFastPath:
    def test_repeated_plan_text_takes_fast_path(self):
        generator = RandomQueryGenerator(seed=3, config=GeneratorConfig(max_tables=2))
        dialect = create_dialect("postgresql")
        qpg = QueryPlanGuidance(
            dialect,
            generator,
            config=QPGConfig(queries_per_round=60, run_tlp=False),
            ingest_service=PlanIngestService(hub=ConverterHub()),
        )
        qpg.run()
        # Generated campaigns repeat plan shapes; repeats of an identical
        # raw text must resolve through the hub pre-check without building
        # PlanSource objects.
        assert qpg.statistics.fast_path_hits > 0
        assert qpg.statistics.queries_generated == 60

    def test_fast_path_and_slow_path_agree(self):
        generator = RandomQueryGenerator(seed=4, config=GeneratorConfig(max_tables=2))
        dialect = create_dialect("postgresql")
        qpg = QueryPlanGuidance(
            dialect,
            generator,
            config=QPGConfig(run_tlp=False),
            ingest_service=PlanIngestService(hub=ConverterHub()),
        )
        for statement in generator.schema_statements():
            dialect.execute(statement)
        dialect.analyze_tables()
        query = "SELECT * FROM t0"
        first = qpg.observe_plan(query)   # slow path: converts + registers
        second = qpg.observe_plan(query)  # fast path: hub + coverage hit
        assert first is True
        assert second is False
        assert qpg.statistics.fast_path_hits == 1
        assert len(qpg.seen_fingerprints) == 1


class TestCacheInvisibility:
    def _campaign(self, prepared_cache):
        campaign = TestingCampaign(
            dbms_names=["postgresql", "mysql"],
            queries_per_dbms=30,
            cert_pairs_per_dbms=8,
            prepared_cache=prepared_cache,
        )
        return campaign.run()

    def test_campaign_identical_with_cache_off(self):
        on = self._campaign(True)
        off = self._campaign(False)
        assert on.plan_fingerprints == off.plan_fingerprints
        assert on.unique_plans == off.unique_plans
        assert on.table5_rows() == off.table5_rows()
        assert [report.trigger_query for report in on.reports] == [
            report.trigger_query for report in off.reports
        ]
        assert on.queries_generated == off.queries_generated
        assert on.cert_pairs_checked == off.cert_pairs_checked

    def test_qpg_round_identical_with_cache_off(self):
        def round_coverage(enabled):
            generator = RandomQueryGenerator(
                seed=7, config=GeneratorConfig(max_tables=2)
            )
            dialect = create_dialect("postgresql")
            dialect.prepared.enabled = enabled
            qpg = QueryPlanGuidance(
                dialect,
                generator,
                config=QPGConfig(queries_per_round=80),
                ingest_service=PlanIngestService(hub=ConverterHub()),
            )
            statistics = qpg.run()
            return qpg.seen_fingerprints, statistics.mutations_applied

        on_cov, on_mutations = round_coverage(True)
        off_cov, off_mutations = round_coverage(False)
        assert on_cov == off_cov
        assert on_mutations == off_mutations
