"""Tests for grammar, serialization formats, validation, and comparison."""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    OperationCategory,
    PlanBuilder,
    PlanNode,
    Operation,
    Property,
    PropertyCategory,
    UnifiedPlan,
    formats,
    grammar,
    diff_plans,
    is_valid_plan,
    plan_similarity,
    structural_fingerprint,
    structural_signature,
    tree_edit_distance,
    validate_plan,
)
from repro.core.compare import strip_unstable_suffix
from repro.errors import FormatError, GrammarError, PlanValidationError


def sample_plan() -> UnifiedPlan:
    return (
        PlanBuilder(source_dbms="tidb")
        .operation(OperationCategory.EXECUTOR, "Collect")
        .cost("Total Cost", 12.5)
        .child(OperationCategory.PRODUCER, "Full Table Scan")
        .configuration("name object", "partsupp")
        .cardinality("Estimated Rows", 800)
        .end()
        .plan_prop(PropertyCategory.STATUS, "Task Type", "root")
        .build()
    )


class TestGrammar:
    def test_serialize_contains_categories(self):
        text = grammar.serialize(sample_plan())
        assert "Operation: Executor->Collect" in text
        assert "--children-->" in text
        assert "Producer->Full_Table_Scan" in text

    def test_roundtrip_structure(self):
        plan = sample_plan()
        restored = grammar.parse(grammar.serialize(plan))
        assert restored.node_count() == plan.node_count()
        assert restored.root.operation == plan.root.operation

    def test_parse_values(self):
        plan = grammar.parse(
            'Operation: Producer->Scan Cost->Total_Cost: 3.5, Status->Flag: true, '
            'Configuration->Filter: "x < 1", Status->Oops: null'
        )
        values = {prop.identifier: prop.value for prop in plan.root.properties}
        assert values["Total Cost"] == 3.5
        assert values["Flag"] is True
        assert values["Filter"] == "x < 1"
        assert values["Oops"] is None

    def test_parse_plan_without_tree(self):
        plan = grammar.parse('Cardinality->Series_Count: 10, Status->Shards_Queried: 2')
        assert plan.root is None
        assert len(plan.properties) == 2

    def test_parse_errors(self):
        with pytest.raises(GrammarError):
            grammar.parse("Operation: Nonsense->X")
        with pytest.raises(GrammarError):
            grammar.parse('Operation: Producer->Scan Cost->x "unterminated')
        with pytest.raises(GrammarError):
            grammar.parse("Operation Producer->Scan")

    def test_nested_children(self):
        plan = (
            PlanBuilder()
            .operation(OperationCategory.JOIN, "Hash Join")
            .child(OperationCategory.PRODUCER, "Full Table Scan")
            .end()
            .child(OperationCategory.PRODUCER, "Index Scan")
            .end()
            .build()
        )
        restored = grammar.parse(grammar.serialize(plan))
        assert len(restored.root.children) == 2

    def test_roundtrip_helper(self):
        plan = sample_plan()
        restored = grammar.roundtrip(plan)
        assert restored.source_dbms == "tidb"


# Underscores are excluded: the grammar text form encodes spaces as
# underscores, so identifiers containing literal underscores are not
# round-trippable by design (unified names never contain them).
_identifier = st.from_regex(r"[A-Za-z][A-Za-z0-9]{0,10}", fullmatch=True)
_value = st.one_of(
    st.integers(min_value=-10_000, max_value=10_000),
    st.booleans(),
    st.none(),
    st.text(alphabet=st.characters(whitelist_categories=("Lu", "Ll", "Nd"), whitelist_characters=" "), max_size=12),
)


@st.composite
def plan_trees(draw, depth=2):
    operation = Operation(
        draw(st.sampled_from(list(OperationCategory))), draw(_identifier)
    )
    properties = [
        Property(draw(st.sampled_from(list(PropertyCategory))), draw(_identifier), draw(_value))
        for _ in range(draw(st.integers(min_value=0, max_value=3)))
    ]
    children = []
    if depth > 0:
        children = [
            draw(plan_trees(depth=depth - 1))
            for _ in range(draw(st.integers(min_value=0, max_value=2)))
        ]
    return PlanNode(operation, properties, children)


class TestPropertyBased:
    @settings(max_examples=60, deadline=None)
    @given(plan_trees())
    def test_json_roundtrip_lossless(self, root):
        plan = UnifiedPlan(root=root, source_dbms="test")
        restored = formats.deserialize(formats.serialize(plan, "json"), "json")
        assert restored.to_dict() == plan.to_dict()

    @settings(max_examples=60, deadline=None)
    @given(plan_trees())
    def test_grammar_roundtrip_preserves_structure(self, root):
        plan = UnifiedPlan(root=root)
        restored = grammar.parse(grammar.serialize(plan))
        assert restored.node_count() == plan.node_count()
        assert tree_edit_distance(restored.root, plan.root) == 0

    @settings(max_examples=60, deadline=None)
    @given(plan_trees())
    def test_fingerprint_is_stable_under_cost_changes(self, root):
        plan = UnifiedPlan(root=root)
        modified = plan.copy()
        modified.root.properties.append(
            Property(PropertyCategory.COST, "Total Cost", 123456)
        )
        assert structural_fingerprint(plan) == structural_fingerprint(modified)

    @settings(max_examples=40, deadline=None)
    @given(plan_trees())
    def test_validate_generated_plans(self, root):
        plan = UnifiedPlan(root=root)
        assert is_valid_plan(plan)

    @settings(max_examples=40, deadline=None)
    @given(plan_trees())
    def test_edit_distance_self_is_zero(self, root):
        assert tree_edit_distance(root, root.copy()) == 0


class TestFormats:
    def test_supported_formats(self):
        names = formats.supported_formats()
        for expected in ("json", "text", "table", "xml", "yaml", "grammar"):
            assert expected in names

    def test_unknown_format_raises(self):
        with pytest.raises(FormatError):
            formats.serialize(sample_plan(), "protobuf")
        with pytest.raises(FormatError):
            formats.deserialize("{}", "xml")

    def test_json_document_shape(self):
        document = json.loads(formats.serialize(sample_plan(), "json"))
        assert document["source_dbms"] == "tidb"
        assert document["tree"]["operation"]["identifier"] == "Collect"

    def test_json_rejects_bad_documents(self):
        with pytest.raises(FormatError):
            formats.deserialize("not json", "json")
        with pytest.raises(FormatError):
            formats.deserialize("[1, 2]", "json")

    def test_text_roundtrip(self):
        plan = sample_plan()
        restored = formats.deserialize(formats.serialize(plan, "text"), "text")
        assert restored.node_count() == plan.node_count()
        assert len(restored.properties) == len(plan.properties)

    def test_table_contains_all_operations(self):
        rendered = formats.serialize(sample_plan(), "table")
        assert "Executor->Collect" in rendered
        assert "Producer->Full Table Scan" in rendered

    def test_xml_output(self):
        rendered = formats.serialize(sample_plan(), "xml")
        assert "<unifiedPlan" in rendered
        assert 'identifier="Full Table Scan"' in rendered

    def test_yaml_output(self):
        rendered = formats.serialize(sample_plan(), "yaml")
        assert "source_dbms: tidb" in rendered

    def test_register_custom_format(self):
        formats.register_format("opcount", lambda plan: str(plan.node_count()))
        assert formats.serialize(sample_plan(), "opcount") == "2"


class TestValidation:
    def test_valid_plan(self):
        assert validate_plan(sample_plan()) == []

    def test_empty_plan_is_invalid(self):
        findings = validate_plan(UnifiedPlan(), raise_on_error=False)
        assert findings

    def test_shared_node_detected(self):
        shared = PlanNode(Operation(OperationCategory.PRODUCER, "Full Table Scan"))
        root = PlanNode(Operation(OperationCategory.JOIN, "Hash Join"), children=[shared, shared])
        findings = validate_plan(UnifiedPlan(root=root), raise_on_error=False)
        assert any("more than once" in finding for finding in findings)

    def test_raises_by_default(self):
        with pytest.raises(PlanValidationError):
            validate_plan(UnifiedPlan())


class TestComparison:
    def test_strip_unstable_suffix(self):
        assert strip_unstable_suffix("TableFullScan_5") == "TableFullScan"
        assert strip_unstable_suffix("HashJoin 12") == "HashJoin"
        assert strip_unstable_suffix("Sort") == "Sort"

    def test_fingerprint_differs_for_different_structures(self):
        left = sample_plan()
        right = sample_plan()
        right.root.children[0] = PlanNode(
            Operation(OperationCategory.PRODUCER, "Index Scan")
        )
        assert structural_fingerprint(left) != structural_fingerprint(right)

    def test_signature_readable(self):
        assert "Full Table Scan" in structural_signature(sample_plan())

    def test_tree_edit_distance(self):
        left = sample_plan()
        right = sample_plan()
        assert tree_edit_distance(left.root, right.root) == 0
        right.root.children.append(PlanNode(Operation(OperationCategory.EXECUTOR, "Gather")))
        assert tree_edit_distance(left.root, right.root) == 1
        assert tree_edit_distance(None, None) == 0
        assert tree_edit_distance(left.root, None) == left.root.size()

    def test_plan_similarity_bounds(self):
        left = sample_plan()
        right = sample_plan()
        assert plan_similarity(left, right) == 1.0
        empty = UnifiedPlan()
        assert 0.0 <= plan_similarity(left, empty) <= 1.0

    def test_diff_plans(self):
        left = sample_plan()
        right = sample_plan()
        right.root.children.append(PlanNode(Operation(OperationCategory.EXECUTOR, "Gather")))
        diff = diff_plans(left, right)
        assert not diff.identical_structure
        assert "Executor->Gather" in diff.only_in_right
        assert diff.category_delta[OperationCategory.EXECUTOR] == -1


#: Every DBMS with a registered converter; the round-trip matrix below runs
#: each one's example plan through each parseable format.
def _dialect_names():
    from repro.converters import available_converters

    return available_converters()


class TestRoundTripMatrix:
    """serialize -> parse -> fingerprint over the full dialect×format matrix.

    The pipeline's round-trip invariant — ``fingerprint()`` and
    ``structural_fingerprint()`` depend only on plan content, so every
    parseable serialization format must preserve both — is asserted for a
    *real converted plan from every registered DBMS* (relational and NoSQL,
    tree-less plans included) rather than for hand-picked builder plans.
    """

    PARSEABLE = ("json", "text", "xml", "yaml", "grammar")

    def test_matrix_covers_every_parseable_format(self):
        assert set(self.PARSEABLE) == set(formats.parseable_formats())

    @pytest.mark.parametrize("format_name", PARSEABLE)
    @pytest.mark.parametrize("dialect_name", _dialect_names())
    def test_fingerprint_invariant_under_round_trip(
        self, dialect_name, format_name, dialect_example_plans
    ):
        plan = dialect_example_plans[dialect_name]
        restored = formats.deserialize(
            formats.serialize(plan, format_name), format_name
        )
        assert restored.fingerprint() == plan.fingerprint()
        # The structural fingerprint (QPG's coverage identity) survives too,
        # in both modes.
        assert structural_fingerprint(restored) == structural_fingerprint(plan)
        assert structural_fingerprint(
            restored, include_configuration=True
        ) == structural_fingerprint(plan, include_configuration=True)

    @pytest.mark.parametrize("dialect_name", _dialect_names())
    def test_round_trip_preserves_node_count(
        self, dialect_name, dialect_example_plans
    ):
        plan = dialect_example_plans[dialect_name]
        for format_name in self.PARSEABLE:
            restored = formats.deserialize(
                formats.serialize(plan, format_name), format_name
            )
            assert restored.node_count() == plan.node_count(), format_name
            assert len(restored.properties) == len(plan.properties), format_name


class TestRoundTripFingerprints:
    """Value-fidelity spot checks riding on one hand-built rich plan.

    Fingerprint invariance itself is covered exhaustively by
    :class:`TestRoundTripMatrix`; these tests pin down *value typing*
    subtleties (string-vs-number, None, booleans) that converted plans do
    not always exercise.
    """

    PARSEABLE = ("json", "text", "xml", "yaml", "grammar")

    def rich_plan(self) -> UnifiedPlan:
        return (
            PlanBuilder(source_dbms="postgresql")
            .operation(OperationCategory.COMBINATOR, "Sort")
            .configuration("Sort Key", "c0")
            .cost("Total Cost", 17.25)
            .child(OperationCategory.JOIN, "Hash Join")
            .configuration("Join Condition", 'x = "quoted" AND y < 3')
            .cardinality("Estimated Rows", 42)
            .child(OperationCategory.PRODUCER, "Full Table Scan")
            .configuration("name object", "t0")
            .status("Flag", True)
            .end()
            .child(OperationCategory.PRODUCER, "Index Scan")
            .configuration("index name", "i0")
            .end()
            .end()
            .plan_prop(PropertyCategory.STATUS, "Planning Time", 0.125)
            .plan_prop(PropertyCategory.STATUS, "Version String", "5")
            .plan_prop(PropertyCategory.STATUS, "Nothing", None)
            .build()
        )

    @pytest.mark.parametrize("format_name", PARSEABLE)
    def test_round_trip_preserves_value_types(self, format_name):
        plan = self.rich_plan()
        restored = formats.deserialize(formats.serialize(plan, format_name), format_name)
        values = {p.identifier: p.value for p in restored.properties}
        assert values["Planning Time"] == 0.125
        assert values["Version String"] == "5"  # string, not the number 5
        assert values["Nothing"] is None

    @pytest.mark.parametrize("format_name", PARSEABLE)
    def test_round_trip_treeless_plan(self, format_name):
        plan = UnifiedPlan(source_dbms="influxdb")
        plan.add_property(PropertyCategory.COST, "Estimated Cost", 3)
        restored = formats.deserialize(formats.serialize(plan, format_name), format_name)
        assert restored.fingerprint() == plan.fingerprint()

    def test_plan_property_flag_round_trips(self):
        plan = self.rich_plan()
        for format_name in self.PARSEABLE:
            restored = formats.deserialize(
                formats.serialize(plan, format_name), format_name
            )
            node = restored.root.children[0].children[0]
            assert node.property_value("Flag") is True
