"""Unit tests for the NumPy-backed column kernels (repro.engine.arrays).

Every kernel is checked against the row oracle's scalar helpers
(``_compare`` / ``_arithmetic`` / ``_to_bool``) element for element, and the
module contract — dtype inference, the 2**53 exactness cap, validity
bitmaps, bail-over-guess — is pinned by targeted cases.  The whole module
skips when numpy is absent; the no-numpy behaviour (constructors return the
list, kernels return ``None``) is asserted via the runtime toggle, which
exercises the identical code path.
"""

import random

import pytest

from repro.catalog.schema import Column, DataType, TableSchema
from repro.engine import arrays
from repro.engine.expressions import _arithmetic, _compare, _to_bool
from repro.storage.table import HeapTable

np = pytest.importorskip("numpy")

pytestmark = pytest.mark.skipif(
    not arrays.numpy_enabled(), reason="array kernels disabled in this job"
)


@pytest.fixture(autouse=True)
def _restore_kernel_state():
    saved = arrays.numpy_enabled()
    yield
    arrays.set_numpy_enabled(saved)


def _column(values):
    column = arrays.make_column(list(values))
    assert isinstance(column, arrays.ArrayColumn), values
    return column


INTS = [3, -7, None, 0, 12, None, -2, 9, 5, -1]
FLOATS = [1.5, -0.25, None, 0.0, 3.75, 2.5, None, -9.0, 0.5, 7.25]


class TestDtypeInference:
    def test_pure_int_column(self):
        column = _column([1, 2, 3])
        assert column.kind == "i"
        assert column.validity is None
        assert column.tolist() == [1, 2, 3]

    def test_int_with_nulls(self):
        column = _column([1, None, 3])
        assert column.kind == "i"
        assert list(column.validity) == [True, False, True]
        assert column.tolist() == [1, None, 3]

    def test_float_with_nulls(self):
        column = _column([1.5, None])
        assert column.kind == "f"
        assert column.tolist() == [1.5, None]

    @pytest.mark.parametrize(
        "values",
        [
            [1, 2.5],  # mixed int/float would silently coerce — refuse
            [True, False],  # bool ordering/arithmetic quirks stay on oracle
            ["a", "b"],
            [1, "a"],
            [None, None],  # no type evidence at all
            [],
            [2 ** 53 + 1, 0],  # beyond the float64-exact range
            [-(2 ** 53) - 1],
            [2 ** 70],
        ],
    )
    def test_untyped_columns_stay_lists(self, values):
        assert arrays.make_column(list(values)) is not None
        assert not isinstance(arrays.make_column(list(values)), arrays.ArrayColumn)

    def test_cap_boundary_is_inclusive(self):
        assert isinstance(
            arrays.make_column([2 ** 53, -(2 ** 53)]), arrays.ArrayColumn
        )

    def test_nan_is_a_value_not_a_null(self):
        column = _column([float("nan"), 1.0])
        assert column.validity is None
        assert column.tolist()[0] != column.tolist()[0]  # NaN survives


class TestSequenceProtocol:
    def test_len_iter_index_and_equality(self):
        column = _column([1, None, 3])
        assert len(column) == 3
        assert list(column) == [1, None, 3]
        assert column[1] is None
        assert column[2] == 3
        assert column == [1, None, 3]

    def test_scalars_are_python_types(self):
        column = _column([1, 2])
        assert type(column[0]) is int
        assert type(_column([1.5])[0]) is float

    def test_slicing_is_a_zero_copy_view(self):
        column = _column(list(range(100)))
        view = column[10:20]
        assert isinstance(view, arrays.ArrayColumn)
        assert view.values.base is not None  # a view, not a copy
        assert view.tolist() == list(range(10, 20))

    def test_take_gathers_positions(self):
        column = _column([10, None, 30, 40])
        assert arrays.take_column(column, [3, 0, 1]).tolist() == [40, 10, None]
        assert arrays.take_column([10, None, 30, 40], [3, 0, 1]) == [40, 10, None]


class TestRuntimeToggle:
    def test_disable_reverts_to_lists_and_bumps_token(self):
        column = _column([1, 2, 3])
        before = arrays.state_token()
        assert arrays.set_numpy_enabled(False) is False
        assert arrays.state_token() != before
        assert arrays.make_column([1, 2, 3]) == [1, 2, 3]
        assert not isinstance(arrays.make_column([1, 2, 3]), arrays.ArrayColumn)
        # Kernels refuse even array inputs while disabled.
        assert arrays.compare("=", column, 1) is None
        assert arrays.arithmetic("+", column, 1) is None
        assert arrays.set_numpy_enabled(True) is True
        assert isinstance(arrays.make_column([1, 2, 3]), arrays.ArrayColumn)

    def test_noop_toggle_keeps_token(self):
        token = arrays.state_token()
        arrays.set_numpy_enabled(arrays.numpy_enabled())
        assert arrays.state_token() == token

    def test_toggle_invalidates_columnar_snapshots(self):
        table = HeapTable(
            TableSchema(
                name="t", columns=[Column(name="a", data_type=DataType.INTEGER)]
            )
        )
        table.insert_many([{"a": i} for i in range(arrays.ARRAY_MIN_ROWS)])
        snapshot = table.column_batch(version=1)
        assert isinstance(snapshot.columns["a"], arrays.ArrayColumn)
        arrays.set_numpy_enabled(False)
        downgraded = table.column_batch(version=1)
        assert downgraded is not snapshot
        assert downgraded.columns["a"] == list(range(arrays.ARRAY_MIN_ROWS))
        assert not isinstance(downgraded.columns["a"], arrays.ArrayColumn)

    def test_tiny_tables_keep_list_snapshots(self):
        table = HeapTable(
            TableSchema(
                name="t", columns=[Column(name="a", data_type=DataType.INTEGER)]
            )
        )
        table.insert_many([{"a": i} for i in range(arrays.ARRAY_MIN_ROWS - 1)])
        assert not isinstance(
            table.column_batch(version=1).columns["a"], arrays.ArrayColumn
        )


class TestCompareKernel:
    OPERATORS = ("=", "<>", "<", "<=", ">", ">=")

    @pytest.mark.parametrize("operator", OPERATORS)
    def test_column_vs_column_matches_oracle(self, operator):
        left, right = _column(INTS), _column(FLOATS)
        result = arrays.compare(operator, left, right)
        expected = [_compare(operator, a, b) for a, b in zip(INTS, FLOATS)]
        assert [None if v is None else bool(v) for v in result] == expected

    @pytest.mark.parametrize("operator", OPERATORS)
    @pytest.mark.parametrize("scalar", [4, -2.5, True, float("nan"), None])
    def test_column_vs_scalar_matches_oracle(self, operator, scalar):
        column = _column(INTS)
        result = arrays.compare(operator, column, scalar)
        expected = [_compare(operator, value, scalar) for value in INTS]
        assert [None if v is None else bool(v) for v in result] == expected
        flipped = arrays.compare(operator, scalar, column)
        expected = [_compare(operator, scalar, value) for value in INTS]
        assert [None if v is None else bool(v) for v in flipped] == expected

    def test_huge_int_scalar_exact_against_int_column(self):
        # 2**53 + 1 == float(2**53) after rounding; the int64 kernel must
        # not fall into that trap.
        column = _column([2 ** 53, 123])
        result = arrays.compare("=", column, 2 ** 53 + 1)
        assert list(result) == [False, False]
        assert list(arrays.compare("<", column, 2 ** 53 + 1)) == [True, True]

    def test_huge_int_scalar_bails_against_float_column(self):
        assert arrays.compare("=", _column([1.0, 2.0]), 2 ** 53 + 1) is None

    def test_int64_overflow_scalar_bails(self):
        assert arrays.compare("<", _column([1, 2]), 2 ** 63) is None

    def test_string_operand_bails(self):
        assert arrays.compare("=", _column([1, 2]), "x") is None


class TestArithmeticKernel:
    OPERATORS = ("+", "-", "*", "/", "%")

    @pytest.mark.parametrize("operator", OPERATORS)
    def test_int_columns_match_oracle(self, operator):
        left, right = _column(INTS), _column([2, 0, 5, -3, None, 4, 1, 0, -6, 7])
        result = arrays.arithmetic(operator, left, right)
        assert result is not None
        expected = [
            _arithmetic(operator, a, b)
            for a, b in zip(left.tolist(), right.tolist())
        ]
        assert list(result) == expected

    @pytest.mark.parametrize("operator", OPERATORS)
    def test_float_columns_match_oracle(self, operator):
        left, right = _column(FLOATS), _column([2.0, 0.0, 1.5, -0.5, None, 4.0, 1.0, 0.0, -2.0, 8.0])
        result = arrays.arithmetic(operator, left, right)
        assert result is not None
        assert list(result) == [
            _arithmetic(operator, a, b)
            for a, b in zip(left.tolist(), right.tolist())
        ]

    def test_division_by_zero_scalar_is_all_null(self):
        for zero in (0, 0.0):
            for operator in ("/", "%"):
                result = arrays.arithmetic(operator, _column([1, 2]), zero)
                assert list(result) == [None, None]

    def test_modulo_matches_python_sign_convention(self):
        left, right = _column([7, -7, 7, -7]), _column([3, 3, -3, -3])
        assert list(arrays.arithmetic("%", left, right)) == [1, 2, -2, -1]

    def test_overflowing_sum_is_rematerialized_exactly(self):
        big = 2 ** 53 - 1
        result = arrays.arithmetic("+", _column([big, 1, None]), _column([5, 1, 2]))
        assert not isinstance(result, arrays.ArrayColumn)  # back to a list
        assert result == [big + 5, 2, None]

    def test_multiplication_overflow_bails_pre_kernel(self):
        column = _column([2 ** 40])
        assert arrays.arithmetic("*", column, column) is None

    def test_concatenation_bails(self):
        assert arrays.arithmetic("||", _column([1]), _column([2])) is None


class TestKleeneKernels:
    CASES = [True, False, None]

    def _bool_column(self, values):
        # Bool columns arrive as comparison outputs, never via make_column.
        return arrays.ArrayColumn(
            np.array([bool(v) for v in values], dtype=bool),
            np.array([v is not None for v in values], dtype=bool),
        )

    def test_and_or_truth_tables(self):
        lefts = [a for a in self.CASES for _ in self.CASES]
        rights = self.CASES * 3
        left, right = self._bool_column(lefts), self._bool_column(rights)

        def oracle(op, a, b):
            known_a, known_b = _to_bool(a), _to_bool(b)
            if op == "AND":
                if known_a is False or known_b is False:
                    return False
                if known_a is None or known_b is None:
                    return None
                return True
            if known_a is True or known_b is True:
                return True
            if known_a is None or known_b is None:
                return None
            return False

        assert [
            None if v is None else bool(v) for v in arrays.kleene_and(left, right)
        ] == [oracle("AND", a, b) for a, b in zip(lefts, rights)]
        assert [
            None if v is None else bool(v) for v in arrays.kleene_or(left, right)
        ] == [oracle("OR", a, b) for a, b in zip(lefts, rights)]

    def test_not_flips_known_keeps_unknown(self):
        column = self._bool_column(self.CASES)
        assert [
            None if v is None else bool(v) for v in arrays.kleene_not(column)
        ] == [False, True, None]

    def test_numeric_truth_matches_to_bool(self):
        column = _column([0, 3, None, -1])
        assert list(arrays.selection_vector(column)) == [
            i for i, v in enumerate(column.tolist()) if _to_bool(v)
        ]

    def test_nan_is_truthy_like_python(self):
        column = _column([float("nan"), 0.0, 1.0])
        assert list(arrays.selection_vector(column)) == [0, 2]

    def test_is_null_is_two_valued(self):
        column = _column([1, None, 3])
        assert list(arrays.is_null(column, negated=False)) == [False, True, False]
        assert list(arrays.is_null(column, negated=True)) == [True, False, True]


class TestSortOrder:
    def test_nulls_first_and_desc_flip(self):
        column = _column([3, None, 1, None, 2])
        ascending = arrays.sort_order([(column, False)])
        assert list(ascending) == [1, 3, 2, 4, 0]  # NULLs first, then values
        descending = arrays.sort_order([(column, True)])
        assert list(descending) == [0, 4, 2, 1, 3]  # values desc, NULLs last

    def test_ties_break_by_position(self):
        column = _column([1, 1, 0, 1])
        assert list(arrays.sort_order([(column, False)])) == [2, 0, 1, 3]
        assert list(arrays.sort_order([(column, True)])) == [0, 1, 3, 2]

    def test_multi_key_priority(self):
        first = _column([1, 1, 0, 0])
        second = _column([5, 3, 9, 7])
        assert list(arrays.sort_order([(first, False), (second, True)])) == [
            2,
            3,
            0,
            1,
        ]

    def test_nan_bails(self):
        assert arrays.sort_order([(_column([1.0, float("nan")]), False)]) is None

    def test_non_array_key_bails(self):
        assert arrays.sort_order([([1, 2], False)]) is None


class TestGroupedAggregate:
    def _oracle(self, keys, values, name):
        groups = {}
        for key, value in zip(keys, values):
            groups.setdefault(key, []).append(value)
        output = []
        for key, members in groups.items():  # insertion == first appearance
            valid = [v for v in members if v is not None]
            if name == "COUNT*":
                output.append(len(members))
            elif name == "COUNT":
                output.append(len(valid))
            elif not valid:
                output.append(None)
            elif name == "SUM":
                output.append(sum(valid))
            elif name == "AVG":
                output.append(sum(valid) / len(valid))
            elif name == "MIN":
                output.append(min(valid))
            else:
                output.append(max(valid))
        return output

    @pytest.mark.parametrize("name", ["COUNT*", "COUNT", "SUM", "AVG", "MIN", "MAX"])
    def test_matches_insertion_ordered_oracle(self, name):
        rng = random.Random(7)
        keys = [rng.randrange(5) for _ in range(200)]
        values = [rng.randrange(-50, 50) if rng.random() > 0.2 else None for _ in keys]
        spec_name = "COUNT" if name == "COUNT*" else name
        star = name == "COUNT*"
        count, firsts, results = arrays.grouped_aggregate(
            [_column(keys)],
            [(spec_name, star, None if star else _column(values))],
            len(keys),
        )
        assert count == len(set(keys))
        assert firsts == sorted(firsts)  # first-appearance order
        assert results[0] == self._oracle(keys, values, name)

    def test_global_aggregate_without_keys(self):
        column = _column([5, None, 1])
        count, firsts, results = arrays.grouped_aggregate(
            [], [("SUM", False, column), ("COUNT", True, None)], 3
        )
        assert (count, firsts) == (1, [0])
        assert results == [[6], [3]]

    def test_avg_is_exact_python_division(self):
        column = _column([1, 2])
        _, _, results = arrays.grouped_aggregate(
            [_column([0, 0])], [("AVG", False, column)], 2
        )
        assert results[0] == [1.5]

    def test_nan_argument_bails(self):
        keys = _column([0, 1])
        assert (
            arrays.grouped_aggregate(
                [keys], [("MIN", False, _column([1.0, float("nan")]))], 2
            )
            is None
        )

    def test_sum_overflow_bails(self):
        keys = _column([0] * 600)
        column = _column([2 ** 53] * 600)
        assert (
            arrays.grouped_aggregate([keys], [("SUM", False, column)], 600) is None
        )


class TestConcatColumns:
    def test_same_dtype_arrays_concatenate(self):
        merged = arrays.concat_columns([_column([1, None]), _column([3])])
        assert isinstance(merged, arrays.ArrayColumn)
        assert merged.tolist() == [1, None, 3]

    def test_mixed_representation_degrades_to_list(self):
        merged = arrays.concat_columns([_column([1, 2]), ["a"]])
        assert merged == [1, 2, "a"]

    def test_single_part_is_returned_unchanged(self):
        column = _column([1, 2])
        assert arrays.concat_columns([column]) is column


class TestRandomizedOracleParity:
    """Randomized kernels-vs-oracle sweep over mixed null densities."""

    def _random_values(self, rng, kind, length, null_rate):
        output = []
        for _ in range(length):
            if rng.random() < null_rate:
                output.append(None)
            elif kind is int:
                output.append(rng.randrange(-10 ** 6, 10 ** 6))
            else:
                output.append(round(rng.uniform(-1000, 1000), 3))
        return output

    @pytest.mark.parametrize("seed", range(5))
    def test_compare_and_arithmetic(self, seed):
        rng = random.Random(seed)
        for kind in (int, float):
            for null_rate in (0.0, 0.3, 0.9):
                raw_left = self._random_values(rng, kind, 64, null_rate)
                raw_right = self._random_values(rng, kind, 64, null_rate)
                left = arrays.make_column(list(raw_left))
                right = arrays.make_column(list(raw_right))
                if not isinstance(left, arrays.ArrayColumn) or not isinstance(
                    right, arrays.ArrayColumn
                ):
                    continue  # all-NULL draw: untyped by contract
                for operator in ("=", "<", ">="):
                    result = arrays.compare(operator, left, right)
                    assert [
                        None if v is None else bool(v) for v in result
                    ] == [
                        _compare(operator, a, b)
                        for a, b in zip(raw_left, raw_right)
                    ]
                for operator in ("+", "*", "/", "%"):
                    result = arrays.arithmetic(operator, left, right)
                    if result is None:
                        continue  # overflow pre-guard bailed; oracle path covers
                    assert list(result) == [
                        _arithmetic(operator, a, b)
                        for a, b in zip(raw_left, raw_right)
                    ]


class TestHashJoinProbeParity:
    """The hash-join probe over array columns vs the row oracle.

    ROADMAP notes the probe is still hash-per-row (``_key_at`` walks
    positions); these tests pin its semantics on typed columns before any
    kernelization: NULL keys never match (and LEFT-pad exactly once),
    normalised keys collide across int/float representations but the exact
    join condition re-check decides, and the 2**53 exactness boundary —
    where one side is a typed int64 array and the other bailed to a plain
    list — keeps oracle parity.
    """

    ROWS = 2 * arrays.ARRAY_MIN_ROWS

    def _dialects(self, left_rows, right_rows):
        from repro.dialects import create_dialect

        dialects = []
        for kind in ("row", "vectorized", "parallel"):
            dialect = create_dialect("postgresql")
            dialect.set_executor(kind)
            dialect.execute("CREATE TABLE lt (k INT, v INT)")
            dialect.execute("CREATE TABLE rt (k INT, w INT)")
            dialect.database.insert_rows("lt", left_rows)
            dialect.database.insert_rows("rt", right_rows)
            dialect.analyze_tables()
            dialects.append((kind, dialect))
        return dialects

    def _run(self, dialect, query):
        try:
            return ("ok", dialect.execute(query))
        except Exception as error:  # noqa: BLE001
            return ("error", type(error).__name__)

    def _assert_parity(self, dialects, query):
        (_, oracle), *rest = dialects
        expected = self._run(oracle, query)
        for kind, dialect in rest:
            assert self._run(dialect, query) == expected, (kind, query)
        return expected

    def test_null_keys_never_match(self):
        left = [
            {"k": i % 11 if i % 5 else None, "v": i} for i in range(self.ROWS)
        ]
        right = [
            {"k": i % 7 if i % 3 else None, "w": i} for i in range(self.ROWS)
        ]
        dialects = self._dialects(left, right)
        # The snapshot columns really are typed arrays with validity bitmaps.
        snapshot = dialects[1][1].database.table("lt").column_batch(
            dialects[1][1].database.version
        )
        assert isinstance(snapshot.columns["k"], arrays.ArrayColumn)
        assert snapshot.columns["k"].has_nulls()
        status, rows = self._assert_parity(
            dialects,
            "SELECT lt.v, rt.w FROM lt JOIN rt ON lt.k = rt.k "
            "ORDER BY lt.v, rt.w",
        )
        assert status == "ok"
        # No NULL key on either side ever joins.
        null_left = {row["v"] for row in left if row["k"] is None}
        assert not null_left.intersection(row["lt.v"] for row in rows)

    def test_left_join_pads_null_keys_once(self):
        left = [
            {"k": None if i % 4 == 0 else i % 9, "v": i}
            for i in range(self.ROWS)
        ]
        right = [{"k": i % 9, "w": i} for i in range(self.ROWS)]
        dialects = self._dialects(left, right)
        status, rows = self._assert_parity(
            dialects,
            "SELECT lt.v, rt.w FROM lt LEFT JOIN rt ON lt.k = rt.k "
            "ORDER BY lt.v, rt.w",
        )
        assert status == "ok"
        # Each NULL-key left row appears exactly once, padded with NULL.
        for row in left:
            if row["k"] is None:
                padded = [r for r in rows if r["lt.v"] == row["v"]]
                assert len(padded) == 1 and padded[0]["rt.w"] is None

    def test_2pow53_boundary_cross_representation(self):
        # Left k stays a typed int64 array (all |values| <= 2**53); right k
        # bails to a plain list (it holds 2**53 + 1, outside the exactness
        # cap).  The probe crosses representations; normalised float keys
        # collide at the boundary (2**53 == float(2**53 + 1)) but the exact
        # condition re-check must keep 2**53+1 out of 2**53's matches —
        # identically to the row oracle.
        boundary = 2 ** 53
        left = [{"k": i, "v": i} for i in range(self.ROWS - 2)]
        left += [{"k": boundary, "v": 10_001}, {"k": -boundary, "v": 10_002}]
        right = [{"k": i, "w": i} for i in range(self.ROWS - 3)]
        right += [
            {"k": boundary, "w": 20_001},
            {"k": boundary + 1, "w": 20_002},
            {"k": -boundary, "w": 20_003},
        ]
        dialects = self._dialects(left, right)
        db = dialects[1][1].database
        snapshot_left = db.table("lt").column_batch(db.version)
        snapshot_right = db.table("rt").column_batch(db.version)
        assert isinstance(snapshot_left.columns["k"], arrays.ArrayColumn)
        assert not isinstance(snapshot_right.columns["k"], arrays.ArrayColumn)
        status, rows = self._assert_parity(
            dialects,
            "SELECT lt.v, rt.w FROM lt JOIN rt ON lt.k = rt.k "
            "ORDER BY lt.v, rt.w",
        )
        assert status == "ok"
        boundary_matches = [r for r in rows if r["lt.v"] == 10_001]
        assert [r["rt.w"] for r in boundary_matches] == [20_001]
        assert [r["rt.w"] for r in rows if r["lt.v"] == 10_002] == [20_003]

    def test_int_float_keys_share_equality_classes(self):
        # 1 joins 1.0: numeric keys normalise into one equality class on
        # both executors (the row oracle's _hash_key contract).
        left = [{"k": i % 10, "v": i} for i in range(self.ROWS)]
        right_rows = [{"k": float(i % 10), "w": i} for i in range(self.ROWS)]
        from repro.dialects import create_dialect

        dialects = []
        for kind in ("row", "vectorized", "parallel"):
            dialect = create_dialect("postgresql")
            dialect.set_executor(kind)
            dialect.execute("CREATE TABLE lt (k INT, v INT)")
            dialect.execute("CREATE TABLE rt (k REAL, w INT)")
            dialect.database.insert_rows("lt", left)
            dialect.database.insert_rows("rt", right_rows)
            dialect.analyze_tables()
            dialects.append((kind, dialect))
        status, rows = self._assert_parity(
            dialects,
            "SELECT lt.v, rt.w FROM lt JOIN rt ON lt.k = rt.k "
            "ORDER BY lt.v, rt.w",
        )
        assert status == "ok"
        from collections import Counter

        left_counts = Counter(row["k"] for row in left)
        right_counts = Counter(int(row["k"]) for row in right_rows)
        assert len(rows) == sum(
            count * right_counts[key] for key, count in left_counts.items()
        )

    def test_probe_runs_under_a_hash_join_plan(self):
        # Guard the guard: these parity tests only mean something while the
        # planner actually picks a hash join for this shape.
        left = [{"k": i % 11, "v": i} for i in range(self.ROWS)]
        right = [{"k": i % 7, "w": i} for i in range(self.ROWS)]
        dialects = self._dialects(left, right)
        for kind, dialect in dialects[1:]:
            plan = dialect.explain(
                "SELECT lt.v, rt.w FROM lt JOIN rt ON lt.k = rt.k"
            ).text
            assert "Hash Join" in plan, (kind, plan)
