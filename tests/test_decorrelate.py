"""The decorrelation oracle-equivalence harness.

PR 5 rewrites uncorrelated ``IN`` / ``EXISTS`` WHERE conjuncts into hash
semi/anti joins.  The undecorrelated per-row path stays behind
``decorrelate=False`` as the correctness oracle: both settings must produce
identical result rows, row order, and rejections for every query, and — for
queries the rewrite does not touch — identical serialized plans and unified
fingerprints.  At campaign level, executor and prepared-cache choices remain
byte-identical *within* a decorrelate setting, while flipping decorrelation
changes only the plans (coverage), never the results (Table V).

The NOT IN + inner-NULL trap is covered explicitly: under three-valued
logic, any NULL in the inner relation makes ``x NOT IN (…)`` unsatisfiable,
so the anti join must return nothing.
"""

import pytest

from repro.converters import ConverterHub
from repro.core.compare import structural_fingerprint
from repro.dialects import create_dialect
from repro.dialects.prepared import reset_runtime
from repro.optimizer.physical import OpKind
from repro.sqlparser.parser import parse_sql
from repro.testing.campaign import TestingCampaign
from repro.testing.generator import GeneratorConfig, RandomQueryGenerator


def _run(dialect, statement):
    """Execute through the dialect, normalising failures for comparison."""
    try:
        return ("ok", dialect.execute(statement))
    except Exception as exc:
        return ("error", type(exc).__name__)


def _contains_subquery_text(query):
    upper = query.upper()
    return " IN (SELECT" in upper or "EXISTS (SELECT" in upper


def _paired_dialects(seed, executor):
    """Two PostgreSQL dialects over identical generated databases: the
    decorrelating default and the per-row oracle."""
    on_dialect = create_dialect("postgresql")
    on_dialect.set_executor(executor)
    assert on_dialect.planner.decorrelate
    off_dialect = create_dialect("postgresql", decorrelate=False)
    off_dialect.set_executor(executor)
    generator = RandomQueryGenerator(seed=seed, config=GeneratorConfig(max_tables=2))
    for statement in generator.schema_statements():
        assert _run(on_dialect, statement) == _run(off_dialect, statement)
    on_dialect.analyze_tables()
    off_dialect.analyze_tables()
    return on_dialect, off_dialect, generator


class TestGeneratorCorpusFuzz:
    """Every generated query through both planner modes, in lockstep."""

    SEEDS = (1, 2, 3, 5)
    QUERIES_PER_SEED = 50
    MUTATE_EVERY = 15

    @pytest.mark.parametrize("executor", ["row", "vectorized"])
    @pytest.mark.parametrize("seed", SEEDS)
    def test_results_identical(self, seed, executor):
        on_dialect, off_dialect, generator = _paired_dialects(seed, executor)
        hub = ConverterHub()
        compared = 0
        subquery_queries = 0
        for position in range(self.QUERIES_PER_SEED):
            query = generator.select_query()
            on_result = _run(on_dialect, query)
            off_result = _run(off_dialect, query)
            # Identical rows in identical order — or the same rejection.
            assert on_result == off_result, query
            if on_result[0] == "ok":
                compared += 1
                if _contains_subquery_text(query):
                    subquery_queries += 1
                elif position % 7 == 0:
                    # Queries the rewrite does not touch keep byte-identical
                    # plans and unified fingerprints.
                    on_plan = on_dialect.explain(query, format="json")
                    off_plan = off_dialect.explain(query, format="json")
                    assert on_plan.text == off_plan.text, query
                    converted = hub.convert(
                        "postgresql", on_plan.text, "json", use_cache=False
                    )
                    reference = hub.convert(
                        "postgresql", off_plan.text, "json", use_cache=False
                    )
                    assert converted.fingerprint() == reference.fingerprint()
            if position and position % self.MUTATE_EVERY == 0:
                mutation = generator.mutation_statement()
                assert _run(on_dialect, mutation) == _run(off_dialect, mutation)
                on_dialect.analyze_tables()
                off_dialect.analyze_tables()
        # The corpus must exercise the engine and the new shapes.
        assert compared >= self.QUERIES_PER_SEED // 3

    def test_generator_emits_subquery_shapes(self):
        generator = RandomQueryGenerator(seed=1, config=GeneratorConfig(max_tables=2))
        generator.schema_statements()
        queries = [generator.select_query() for _ in range(300)]
        assert any(" IN (SELECT" in query for query in queries)
        assert any("NOT IN (SELECT" in query for query in queries)
        assert any("EXISTS (SELECT" in query for query in queries)


class TestSemiAntiSemantics:
    """Hand-picked three-valued-logic cases, exact expected rows."""

    @pytest.fixture(params=["row", "vectorized"])
    def executor(self, request):
        return request.param

    @pytest.fixture(params=[True, False], ids=["decorrelate", "per-row"])
    def dialect(self, request, executor):
        dialect = create_dialect("postgresql", decorrelate=request.param)
        dialect.set_executor(executor)
        dialect.execute("CREATE TABLE t (a INT, b INT)")
        dialect.execute("CREATE TABLE s (x INT)")
        dialect.execute(
            "INSERT INTO t (a, b) VALUES (1, 10), (2, 20), (3, NULL), (NULL, 40)"
        )
        return dialect

    def _values(self, rows):
        return [row["a"] for row in rows]

    def test_in_matches_and_null_probe_filtered(self, dialect):
        dialect.execute("INSERT INTO s (x) VALUES (1), (3)")
        rows = dialect.execute("SELECT a FROM t WHERE a IN (SELECT x FROM s)")
        assert self._values(rows) == [1, 3]

    def test_in_with_inner_null_still_matches(self, dialect):
        dialect.execute("INSERT INTO s (x) VALUES (NULL), (2)")
        rows = dialect.execute("SELECT a FROM t WHERE a IN (SELECT x FROM s)")
        assert self._values(rows) == [2]

    def test_not_in_excludes_matches_and_null_probe(self, dialect):
        dialect.execute("INSERT INTO s (x) VALUES (1), (3)")
        rows = dialect.execute("SELECT a FROM t WHERE a NOT IN (SELECT x FROM s)")
        assert self._values(rows) == [2]

    def test_not_in_inner_null_trap_empties_result(self, dialect):
        dialect.execute("INSERT INTO s (x) VALUES (1), (NULL)")
        rows = dialect.execute("SELECT a FROM t WHERE a NOT IN (SELECT x FROM s)")
        assert rows == []

    def test_not_in_empty_inner_keeps_everything(self, dialect):
        rows = dialect.execute("SELECT a FROM t WHERE a NOT IN (SELECT x FROM s)")
        # Even the NULL probe row: x NOT IN (empty) is TRUE for every x.
        assert len(rows) == 4

    def test_in_empty_inner_keeps_nothing(self, dialect):
        rows = dialect.execute("SELECT a FROM t WHERE a IN (SELECT x FROM s)")
        assert rows == []

    def test_exists_is_an_emptiness_test(self, dialect):
        dialect.execute("INSERT INTO s (x) VALUES (7)")
        rows = dialect.execute("SELECT a FROM t WHERE EXISTS (SELECT x FROM s)")
        assert len(rows) == 4
        rows = dialect.execute(
            "SELECT a FROM t WHERE EXISTS (SELECT x FROM s WHERE x > 100)"
        )
        assert rows == []

    def test_not_exists(self, dialect):
        dialect.execute("INSERT INTO s (x) VALUES (7)")
        rows = dialect.execute("SELECT a FROM t WHERE NOT EXISTS (SELECT x FROM s)")
        assert rows == []
        rows = dialect.execute(
            "SELECT a FROM t WHERE NOT EXISTS (SELECT x FROM s WHERE x > 100)"
        )
        assert len(rows) == 4

    def test_combined_with_plain_predicates(self, dialect):
        dialect.execute("INSERT INTO s (x) VALUES (1), (2)")
        rows = dialect.execute(
            "SELECT a FROM t WHERE b >= 20 AND a IN (SELECT x FROM s)"
        )
        assert self._values(rows) == [2]

    def test_double_negation_folds_back_to_semi(self, dialect):
        dialect.execute("INSERT INTO s (x) VALUES (1)")
        rows = dialect.execute(
            "SELECT a FROM t WHERE NOT (a NOT IN (SELECT x FROM s))"
        )
        assert self._values(rows) == [1]


class TestPlanShapes:
    """The rewrite fires exactly when it is sound."""

    def _planner(self, decorrelate=True):
        dialect = create_dialect("postgresql", decorrelate=decorrelate)
        dialect.execute("CREATE TABLE t (a INT, b INT)")
        dialect.execute("CREATE TABLE s (x INT, y INT)")
        return dialect.planner

    def _plan(self, planner, query):
        return planner.plan_statement(parse_sql(query)[0])

    def test_in_becomes_semi_join(self):
        plan = self._plan(
            self._planner(), "SELECT a FROM t WHERE a IN (SELECT x FROM s)"
        )
        assert plan.find(OpKind.SEMI_JOIN)
        assert not plan.find(OpKind.FILTER)

    def test_not_exists_becomes_anti_join(self):
        plan = self._plan(
            self._planner(), "SELECT a FROM t WHERE NOT EXISTS (SELECT x FROM s)"
        )
        assert plan.find(OpKind.ANTI_JOIN)

    def test_decorrelate_off_keeps_filter(self):
        plan = self._plan(
            self._planner(decorrelate=False),
            "SELECT a FROM t WHERE a IN (SELECT x FROM s)",
        )
        assert not plan.find(OpKind.SEMI_JOIN)
        assert plan.find(OpKind.FILTER)

    def test_correlated_subquery_keeps_per_row_path(self):
        plan = self._plan(
            self._planner(),
            "SELECT a FROM t WHERE a IN (SELECT x FROM s WHERE s.y = t.b)",
        )
        assert not plan.find(OpKind.SEMI_JOIN)
        assert plan.find(OpKind.FILTER)

    def test_unresolvable_unqualified_reference_keeps_per_row_path(self):
        # ``b`` is a column of t, not of s: the subquery is correlated.
        plan = self._plan(
            self._planner(), "SELECT a FROM t WHERE a IN (SELECT b FROM s)"
        )
        assert not plan.find(OpKind.SEMI_JOIN)

    def test_nested_derived_table_scope_is_not_flattened(self):
        # ``b`` is visible only *inside* the derived table, not at the
        # subquery level (only d2.x is), so it correlates to the outer t.b;
        # a flattened alias map would wrongly decorrelate.
        plan = self._plan(
            self._planner(),
            "SELECT a FROM t WHERE a IN "
            "(SELECT x FROM (SELECT x FROM s) AS d2 WHERE b > 5)",
        )
        assert not plan.find(OpKind.SEMI_JOIN)

    def test_nested_derived_table_results_identical(self):
        for decorrelate in (True, False):
            dialect = create_dialect("postgresql", decorrelate=decorrelate)
            dialect.execute("CREATE TABLE t (a INT, b INT)")
            dialect.execute("CREATE TABLE u (x INT, b INT)")
            dialect.execute("INSERT INTO t (a, b) VALUES (1, 10)")
            dialect.execute("INSERT INTO u (x, b) VALUES (1, 99)")
            rows = dialect.execute(
                "SELECT a FROM t WHERE a IN "
                "(SELECT x FROM (SELECT x FROM u) AS d2 WHERE b > 5)"
            )
            assert [row["a"] for row in rows] == [1], decorrelate

    def test_correlated_group_by_still_plans_and_executes(self):
        # GROUP BY inside a predicate subquery may reference outer columns;
        # the plan-time unknown-column validation must not reject it.
        for decorrelate in (True, False):
            dialect = create_dialect("postgresql", decorrelate=decorrelate)
            dialect.execute("CREATE TABLE t (a INT)")
            dialect.execute("CREATE TABLE s (x INT)")
            dialect.execute("INSERT INTO t (a) VALUES (1), (2)")
            dialect.execute("INSERT INTO s (x) VALUES (5)")
            rows = dialect.execute(
                "SELECT a FROM t WHERE EXISTS (SELECT x FROM s GROUP BY x, a)"
            )
            assert [row["a"] for row in rows] == [1, 2], decorrelate

    def test_large_integer_keys_stay_exact(self):
        # 2**53 and 2**53 + 1 collide as floats; the semi-join key set must
        # follow _compare's exact == like the per-row oracle.
        for decorrelate in (True, False):
            dialect = create_dialect("postgresql", decorrelate=decorrelate)
            dialect.execute("CREATE TABLE t (a INT)")
            dialect.execute("CREATE TABLE s (x INT)")
            dialect.execute("INSERT INTO t (a) VALUES (9007199254740993)")
            dialect.execute("INSERT INTO s (x) VALUES (9007199254740992)")
            rows = dialect.execute("SELECT a FROM t WHERE a IN (SELECT x FROM s)")
            assert rows == [], decorrelate

    def test_correlated_results_still_identical(self):
        for decorrelate in (True, False):
            dialect = create_dialect("postgresql", decorrelate=decorrelate)
            dialect.execute("CREATE TABLE t (a INT, b INT)")
            dialect.execute("CREATE TABLE s (x INT, y INT)")
            dialect.execute("INSERT INTO t (a, b) VALUES (1, 1), (2, 9)")
            dialect.execute("INSERT INTO s (x, y) VALUES (1, 1), (2, 2)")
            rows = dialect.execute(
                "SELECT a FROM t WHERE a IN (SELECT x FROM s WHERE s.y = t.b)"
            )
            assert [row["a"] for row in rows] == [1]

    def test_set_decorrelate_clears_cached_plans(self):
        dialect = create_dialect("postgresql")
        dialect.execute("CREATE TABLE t (a INT)")
        dialect.execute("CREATE TABLE s (x INT)")
        query = "SELECT a FROM t WHERE a IN (SELECT x FROM s)"
        dialect.execute(query)
        dialect.set_decorrelate(False)
        plan = dialect.planner.plan_statement(parse_sql(query)[0])
        assert not plan.find(OpKind.SEMI_JOIN)
        # The cached decorrelated plan must not be served after the switch.
        text_key, statements = dialect.prepared.parse(query)
        cached = dialect.prepared.plan(
            text_key,
            0,
            dialect.database.version,
            lambda: dialect.planner.plan_statement(statements[0]),
        )
        assert not cached.find(OpKind.SEMI_JOIN)


class TestAnalyzeParity:
    """EXPLAIN ANALYZE row counts agree between executors for semi/anti."""

    QUERIES = (
        "SELECT a FROM t WHERE a IN (SELECT x FROM s)",
        "SELECT a FROM t WHERE a NOT IN (SELECT x FROM s)",
        "SELECT a FROM t WHERE EXISTS (SELECT x FROM s WHERE x > 1)",
        "SELECT a FROM t WHERE NOT EXISTS (SELECT x FROM s WHERE x > 1)",
    )

    @pytest.mark.parametrize("query", QUERIES)
    def test_runtime_counts_match(self, query):
        dialects = []
        for executor in ("row", "vectorized"):
            dialect = create_dialect("postgresql")
            dialect.set_executor(executor)
            dialect.execute("CREATE TABLE t (a INT)")
            dialect.execute("CREATE TABLE s (x INT)")
            dialect.execute("INSERT INTO t (a) VALUES (1), (2), (3)")
            dialect.execute("INSERT INTO s (x) VALUES (1), (3)")
            dialects.append(dialect)
        row_dialect, vec_dialect = dialects
        statement = parse_sql(query)[0]
        row_plan = row_dialect.planner.plan_statement(statement)
        vec_plan = vec_dialect.planner.plan_statement(statement)
        row_rows = row_dialect.executor.execute(reset_runtime(row_plan), analyze=True)
        vec_rows = vec_dialect.executor.execute(reset_runtime(vec_plan), analyze=True)
        assert row_rows == vec_rows
        for row_node, vec_node in zip(row_plan.walk(), vec_plan.walk()):
            assert row_node.kind is vec_node.kind
            assert row_node.runtime.actual_rows == vec_node.runtime.actual_rows
            assert row_node.runtime.loops == vec_node.runtime.loops


class TestOperatorUniverse:
    """Semi/anti operators surface through converters and grow coverage."""

    SETUP = (
        "CREATE TABLE t (a INT, b INT)",
        "CREATE TABLE s (x INT)",
        "INSERT INTO t (a, b) VALUES (1, 10), (2, 20)",
        "INSERT INTO s (x) VALUES (1)",
    )
    QUERIES = (
        "SELECT a FROM t WHERE a IN (SELECT x FROM s)",
        "SELECT a FROM t WHERE a NOT IN (SELECT x FROM s)",
        "SELECT a FROM t WHERE EXISTS (SELECT x FROM s)",
        "SELECT a FROM t",
    )

    def _operator_names(self, dbms, decorrelate):
        dialect = create_dialect(dbms, decorrelate=decorrelate)
        for statement in self.SETUP:
            dialect.execute(statement)
        hub = ConverterHub()
        converter = hub.converter(dbms)
        names = set()
        for query in self.QUERIES:
            output = dialect.explain(query, format=converter.formats[0])
            plan = hub.convert(dbms, output.text, converter.formats[0])
            for node in plan.root.walk():
                names.add(node.operation.identifier)
        return names

    @pytest.mark.parametrize("dbms", ["postgresql", "mysql"])
    def test_semi_and_anti_join_names_appear(self, dbms):
        names = self._operator_names(dbms, decorrelate=True)
        assert "Semi Join" in names
        assert "Anti Join" in names

    @pytest.mark.parametrize(
        "dbms", ["postgresql", "mysql", "tidb", "sqlite", "sqlserver", "sparksql"]
    )
    def test_every_relational_dialect_shapes_and_converts(self, dbms):
        # No dialect may crash shaping the new operators, and every plan
        # must convert into the unified representation.
        names = self._operator_names(dbms, decorrelate=True)
        assert names

    def test_operator_universe_strictly_grows(self):
        decorrelated = self._operator_names("postgresql", decorrelate=True)
        per_row = self._operator_names("postgresql", decorrelate=False)
        assert decorrelated > per_row

    def test_structural_fingerprints_differ_for_subquery_plans(self):
        hub = ConverterHub()
        fingerprints = {}
        for decorrelate in (True, False):
            dialect = create_dialect("postgresql", decorrelate=decorrelate)
            for statement in self.SETUP:
                dialect.execute(statement)
            output = dialect.explain(self.QUERIES[0], format="json")
            plan = hub.convert("postgresql", output.text, "json", use_cache=False)
            fingerprints[decorrelate] = structural_fingerprint(plan)
        assert fingerprints[True] != fingerprints[False]


class TestCampaignEquivalence:
    """Coverage/Table V identical across executor × cache within a
    decorrelate setting; Table V identical across decorrelate settings."""

    CONFIG = dict(
        dbms_names=["postgresql", "mysql"],
        queries_per_dbms=20,
        cert_pairs_per_dbms=6,
        seed=5,
    )

    @pytest.fixture(scope="class")
    def baseline(self):
        return TestingCampaign(**self.CONFIG).run()

    @pytest.fixture(scope="class")
    def per_row_baseline(self):
        return TestingCampaign(**self.CONFIG, decorrelate=False).run()

    @pytest.mark.parametrize(
        "options",
        [
            {"executor": "row"},
            {"prepared_cache": False},
            {"executor": "row", "prepared_cache": False},
        ],
        ids=["row", "cache-off", "row-cache-off"],
    )
    def test_decorrelated_campaigns_byte_identical(self, baseline, options):
        result = TestingCampaign(**self.CONFIG, **options).run()
        assert result.plan_fingerprints == baseline.plan_fingerprints
        assert result.unique_plans == baseline.unique_plans
        assert result.table5_rows() == baseline.table5_rows()
        assert result.queries_generated == baseline.queries_generated
        assert result.cert_pairs_checked == baseline.cert_pairs_checked

    @pytest.mark.parametrize(
        "options",
        [
            {"executor": "row"},
            {"prepared_cache": False},
        ],
        ids=["row", "cache-off"],
    )
    def test_per_row_campaigns_byte_identical(self, per_row_baseline, options):
        result = TestingCampaign(
            **self.CONFIG, decorrelate=False, **options
        ).run()
        assert result.plan_fingerprints == per_row_baseline.plan_fingerprints
        assert result.table5_rows() == per_row_baseline.table5_rows()
        assert result.queries_generated == per_row_baseline.queries_generated

    def test_decorrelation_changes_plans_never_results(
        self, baseline, per_row_baseline
    ):
        # Same queries, same oracle verdicts, same Table V — different plans.
        assert baseline.table5_rows() == per_row_baseline.table5_rows()
        assert baseline.queries_generated == per_row_baseline.queries_generated
        assert baseline.cert_pairs_checked == per_row_baseline.cert_pairs_checked
        assert baseline.plan_fingerprints != per_row_baseline.plan_fingerprints
