"""Tests for the persistent sharded coverage store, including the
cross-process battery: fingerprints persisted by one process must be
byte-identical when reloaded by another, merges must be exact set unions,
warm-started services must skip conversions, and an interrupted campaign
must resume to the same coverage as an uninterrupted one."""

import json
import os
import subprocess
import sys

import pytest

from repro.converters import ConverterHub
from repro.pipeline import (
    CoverageStore,
    CoverageStoreError,
    PlanIngestService,
    PlanSource,
    shard_for,
    source_key_digest,
)

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def run_python(script, *argv):
    """Run *script* in a fresh interpreter with src/ and the repo root
    importable, returning its stdout."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    return subprocess.check_output(
        [sys.executable, "-c", script, REPO_ROOT, *argv], env=env, text=True
    )


#: Preamble making ``tests.conftest`` corpus helpers importable in children.
CHILD_PREAMBLE = "import sys; sys.path.insert(0, sys.argv[1])\n"


def build_corpus():
    """The deterministic sample corpus (shared with subprocess children)."""
    from tests.conftest import build_sample_sources

    return build_sample_sources(40)


class TestStoreBasics:
    def test_add_contains_len(self):
        store = CoverageStore()
        assert store.add("ab" * 16)
        assert not store.add("ab" * 16)  # duplicate: not double-counted
        assert "ab" * 16 in store
        assert "cd" * 16 not in store
        assert len(store) == 1

    def test_metadata_merges_field_wise(self):
        store = CoverageStore()
        store.add("ff" * 16, {"d": "mysql"})
        store.add("ff" * 16, {"d": "tidb", "s": "deadbeef"})
        meta = store.get("ff" * 16)
        assert meta == {"d": "mysql", "s": "deadbeef"}  # existing fields win

    def test_sharding_by_fingerprint_prefix(self):
        store = CoverageStore(shard_count=8)
        fingerprints = [f"{value:04x}" + "0" * 28 for value in range(64)]
        for fingerprint in fingerprints:
            store.add(fingerprint)
        snapshot = store.snapshot()
        assert sum(snapshot.shard_sizes) == len(fingerprints)
        assert all(size > 0 for size in snapshot.shard_sizes)  # spread out
        for fingerprint in fingerprints:
            assert shard_for(fingerprint, 8) == int(fingerprint[:4], 16) % 8

    def test_non_hex_keys_still_route(self):
        assert 0 <= shard_for("round:mysql:1", 16) < 16

    def test_snapshot_per_dbms(self):
        store = CoverageStore()
        store.add("aa" * 16, {"d": "mysql"})
        store.add("bb" * 16, {"d": "mysql"})
        store.add("cc" * 16, {"d": "tidb"})
        snapshot = store.snapshot()
        assert snapshot.per_dbms == {"mysql": 2, "tidb": 1}
        assert snapshot.entries == 3

    def test_source_index(self):
        store = CoverageStore()
        digest = source_key_digest("postgresql", "json", "ab" * 20)
        assert store.lookup_source(digest) is None
        assert store.map_source(digest, "aa" * 16)
        assert not store.map_source(digest, "aa" * 16)
        assert store.lookup_source(digest) == "aa" * 16
        assert store.source_count() == 1

    def test_marks(self):
        store = CoverageStore()
        assert not store.is_marked("round:mysql:1")
        assert store.mark("round:mysql:1")
        assert not store.mark("round:mysql:1")
        assert store.is_marked("round:mysql:1")
        assert store.marks() == {"round:mysql:1"}


class TestMergeSemantics:
    def test_merge_is_exact_union(self):
        left = CoverageStore()
        right = CoverageStore()
        for fingerprint in ("aa" * 16, "bb" * 16):
            left.add(fingerprint)
        for fingerprint in ("bb" * 16, "cc" * 16):
            right.add(fingerprint)
        added = left.merge(right)
        assert added == 1  # only cc was new: no double-count
        assert len(left) == 3
        assert left.merge(right) == 0  # idempotent
        assert len(left) == 3

    def test_merge_carries_sources_and_marks(self):
        left, right = CoverageStore(), CoverageStore()
        right.add("aa" * 16, {"d": "mysql"})
        right.map_source("d" * 32, "aa" * 16)
        right.mark("round:mysql:1")
        left.merge(right)
        assert left.lookup_source("d" * 32) == "aa" * 16
        assert left.is_marked("round:mysql:1")
        assert left.get("aa" * 16) == {"d": "mysql"}

    def test_merge_accepts_iterables_and_mappings(self):
        store = CoverageStore()
        assert store.merge(["aa" * 16, "bb" * 16]) == 2
        assert store.merge({"bb" * 16: {"d": "tidb"}, "cc" * 16: {}}) == 1
        assert len(store) == 3

    def test_merge_across_shard_counts(self):
        # Stores sharded differently still merge exactly: the shard layout
        # is a storage detail, not part of the coverage set's identity.
        coarse = CoverageStore(shard_count=2)
        fine = CoverageStore(shard_count=64)
        for value in range(100):
            fine.add(f"{value:04x}" + "f" * 28)
        assert coarse.merge(fine) == 100
        assert sorted(coarse.fingerprints()) == sorted(fine.fingerprints())


class TestPersistence:
    def test_save_load_round_trip(self, tmp_path):
        store = CoverageStore()
        for value in range(50):
            store.add(f"{value:04x}" + "a" * 28, {"d": "mysql"})
        store.map_source("e" * 32, "0001" + "a" * 28)
        store.mark("round:mysql:1")
        store.save(str(tmp_path / "store"))

        loaded = CoverageStore.open(str(tmp_path / "store"))
        assert sorted(loaded.fingerprints()) == sorted(store.fingerprints())
        assert loaded.lookup_source("e" * 32) == "0001" + "a" * 28
        assert loaded.is_marked("round:mysql:1")
        assert loaded.get("0001" + "a" * 28) == {"d": "mysql"}

    def test_appends_are_durable_without_save(self, tmp_path):
        with CoverageStore(str(tmp_path / "s")) as store:
            store.add("aa" * 16)
            store.flush()
            # A second reader sees flushed appends even before save().
            assert "aa" * 16 in CoverageStore.open(str(tmp_path / "s"))

    def test_shard_count_mismatch_raises(self, tmp_path):
        CoverageStore(str(tmp_path / "s"), shard_count=8).save()
        with pytest.raises(CoverageStoreError):
            CoverageStore(str(tmp_path / "s"), shard_count=16)

    def test_in_memory_save_requires_path(self):
        with pytest.raises(CoverageStoreError):
            CoverageStore().save()

    def test_save_refuses_to_clobber_a_foreign_store(self, tmp_path):
        root = str(tmp_path / "s")
        existing = CoverageStore(root, shard_count=64)
        existing.add("aa" * 16)
        existing.save()
        other = CoverageStore()
        other.add("bb" * 16)
        with pytest.raises(CoverageStoreError):
            other.save(root)  # would destroy the 64-shard store's data
        # The victim is untouched; merge is the supported path.
        survivor = CoverageStore.open(root, shard_count=64)
        assert "aa" * 16 in survivor and len(survivor) == 1
        survivor.merge(other)
        survivor.save()
        assert len(CoverageStore.open(root, shard_count=64)) == 2

    def test_load_tolerates_torn_tail_and_compact_heals(self, tmp_path):
        root = str(tmp_path / "s")
        store = CoverageStore(root)
        fingerprint = "aa" * 16
        store.add(fingerprint)
        store.save()
        segment = os.path.join(root, f"shard-{shard_for(fingerprint, 16):03d}.jsonl")
        with open(segment, "a", encoding="utf-8") as handle:
            handle.write(json.dumps({"t": "p", "f": fingerprint}) + "\n")  # dup
            handle.write('{"t": "p", "f": "tor')  # torn tail (crash mid-write)
        loaded = CoverageStore.open(root)
        assert len(loaded) == 1  # dup collapsed, torn line skipped
        before, after = loaded.compact()
        assert before == 3 and after == 1
        assert len(CoverageStore.open(root)) == 1

    def test_metadata_enrichment_is_durable_without_save(self, tmp_path):
        # Learning metadata for an already-covered fingerprint must survive
        # a reload even when no explicit save() follows the append.
        root = str(tmp_path / "s")
        with CoverageStore(root) as store:
            store.add("aa" * 16)
            store.add("aa" * 16, {"s": "bb" * 16})
            store.flush()
        loaded = CoverageStore.open(root)
        assert loaded.get("aa" * 16) == {"s": "bb" * 16}
        assert loaded.structural_fingerprints() == {"bb" * 16}

    def test_unsaved_store_still_validates_shard_count(self, tmp_path):
        # A store that crashed before its first save() must still refuse a
        # mismatched shard_count instead of silently dropping segments.
        root = str(tmp_path / "s")
        with CoverageStore(root, shard_count=16) as store:
            for value in range(64):
                store.add(f"{value:04x}" + "c" * 28)
            store.flush()
        with pytest.raises(CoverageStoreError):
            CoverageStore.open(root, shard_count=8)
        assert len(CoverageStore.open(root, shard_count=16)) == 64

    def test_save_is_atomic_no_tmp_left_behind(self, tmp_path):
        root = str(tmp_path / "s")
        store = CoverageStore(root)
        store.add("aa" * 16)
        store.save()
        assert not [name for name in os.listdir(root) if name.endswith(".tmp")]
        manifest = json.load(open(os.path.join(root, "MANIFEST.json")))
        assert manifest["entries"] == 1
        assert manifest["shard_count"] == 16


class TestCrossProcess:
    """The acceptance battery: coverage built in one process is exact in
    another."""

    INGEST_CHILD = CHILD_PREAMBLE + (
        "import json\n"
        "from tests.conftest import build_sample_sources\n"
        "from repro.converters import ConverterHub\n"
        "from repro.pipeline import PlanIngestService\n"
        "lo, hi = int(sys.argv[3]), int(sys.argv[4])\n"
        "sources = build_sample_sources(hi)[lo:hi]\n"
        "service = PlanIngestService(hub=ConverterHub(), persist_to=sys.argv[2])\n"
        "report = service.ingest_batch(sources)\n"
        "service.checkpoint()\n"
        "print(json.dumps({\n"
        "    'fingerprints': sorted(service.fingerprints()),\n"
        "    'conversions': report.conversions,\n"
        "    'unique': service.unique_plan_count(),\n"
        "}))\n"
    )

    def test_fingerprints_byte_identical_across_processes(self, tmp_path):
        child = json.loads(
            run_python(self.INGEST_CHILD, str(tmp_path / "store"), "0", "40")
        )
        # Reload the child's store in this process...
        loaded = CoverageStore.open(str(tmp_path / "store"))
        assert sorted(loaded.fingerprints()) == child["fingerprints"]
        # ...and rebuild the same corpus here: every fingerprint must be
        # byte-identical to what the other process computed and persisted.
        service = PlanIngestService(hub=ConverterHub())
        service.ingest_batch(build_corpus())
        assert sorted(service.fingerprints()) == child["fingerprints"]

    def test_merge_between_processes_is_exact_union(self, tmp_path):
        # Two processes each ingest an overlapping half of the corpus into
        # their own store; merging must be a union with no double-count.
        left = json.loads(
            run_python(self.INGEST_CHILD, str(tmp_path / "left"), "0", "25")
        )
        right = json.loads(
            run_python(self.INGEST_CHILD, str(tmp_path / "right"), "15", "40")
        )
        left_store = CoverageStore.open(str(tmp_path / "left"))
        right_store = CoverageStore.open(str(tmp_path / "right"))
        expected_union = sorted(
            set(left["fingerprints"]) | set(right["fingerprints"])
        )
        added = left_store.merge(right_store)
        assert sorted(left_store.fingerprints()) == expected_union
        assert added == len(expected_union) - len(left["fingerprints"])
        assert left_store.merge(right_store) == 0  # exactly once

    def test_warm_start_skips_conversions(self, tmp_path):
        child = json.loads(
            run_python(self.INGEST_CHILD, str(tmp_path / "store"), "0", "40")
        )
        assert child["conversions"] > 0  # the cold run really parsed
        # A fresh process (fresh hub, empty conversion cache) over the same
        # persisted store: the source index resolves every raw text without
        # parsing anything.
        service = PlanIngestService(hub=ConverterHub(), persist_to=str(tmp_path / "store"))
        report = service.ingest_batch(build_corpus())
        assert report.conversions == 0
        assert report.index_hits == 40
        assert report.new_fingerprints == 0
        assert service.unique_plan_count() == child["unique"]

    def test_resumed_campaign_matches_uninterrupted(self, tmp_path):
        # Acceptance: a campaign stopped after one round (its store
        # persisted by process 1) and resumed by process 2 ends with the
        # identical unique_plan_count / coverage set as an uninterrupted
        # run of the same configuration.
        from repro.testing.campaign import TestingCampaign

        config = dict(
            dbms_names=["postgresql", "mysql"],
            queries_per_dbms=25,
            cert_pairs_per_dbms=5,
        )
        uninterrupted = TestingCampaign(**config).run()

        campaign_child = CHILD_PREAMBLE + (
            "import json\n"
            "from repro.testing.campaign import TestingCampaign\n"
            "result = TestingCampaign(dbms_names=['postgresql', 'mysql'],\n"
            "                         queries_per_dbms=25, cert_pairs_per_dbms=5,\n"
            "                         persist_to=sys.argv[2], max_rounds=1).run()\n"
            "print(json.dumps({'completed': result.rounds_completed,\n"
            "                  'unique': result.unique_plans}))\n"
        )
        child = json.loads(run_python(campaign_child, str(tmp_path / "campaign")))
        assert child["completed"] == 1
        assert child["unique"] < uninterrupted.unique_plans  # genuinely partial

        resumed = TestingCampaign(
            persist_to=str(tmp_path / "campaign"), **config
        ).run()
        assert resumed.rounds_skipped == 1
        assert resumed.rounds_completed == 1
        assert resumed.unique_plans == uninterrupted.unique_plans
        assert resumed.plan_fingerprints == uninterrupted.plan_fingerprints
        # The skipped round's persisted results fold back in: the resumed
        # campaign reports the same Table V rows and counters, not just the
        # same coverage.
        assert resumed.queries_generated == uninterrupted.queries_generated
        assert resumed.cert_pairs_checked == uninterrupted.cert_pairs_checked
        assert resumed.table5_rows() == uninterrupted.table5_rows()

    def test_max_rounds_requires_durable_store(self):
        from repro.testing.campaign import TestingCampaign

        with pytest.raises(ValueError):
            TestingCampaign(dbms_names=["postgresql"], max_rounds=1)


class TestServiceStoreIntegration:
    def test_service_records_structural_metadata(self, tiny_corpus):
        service = PlanIngestService(hub=ConverterHub())
        report = service.ingest_batch(tiny_corpus)
        for entry in report.entries:
            meta = service.coverage.get(entry.fingerprint)
            assert meta is not None
            assert meta["d"] == "postgresql"
            assert isinstance(meta["s"], str) and meta["s"]

    def test_unique_plan_count_includes_loaded_coverage(self, tmp_path, tiny_corpus):
        first = PlanIngestService(hub=ConverterHub(), persist_to=str(tmp_path / "s"))
        first.ingest_batch(tiny_corpus)
        unique = first.unique_plan_count()
        first.checkpoint()
        second = PlanIngestService(hub=ConverterHub(), persist_to=str(tmp_path / "s"))
        assert second.unique_plan_count() == unique  # before any ingest
        assert second.plan_for(second.fingerprints()[0]) is None  # index-only

    def test_plan_parsed_behind_an_index_hit_is_retained(self, tmp_path, tiny_corpus):
        # A batch may hold an index-hit entry (no plan object) and a
        # not-yet-indexed source that parses to the same fingerprint; the
        # parsed representative must land in plan_for() regardless of order.
        first = PlanIngestService(hub=ConverterHub(), persist_to=str(tmp_path / "s"))
        first.ingest_batch(tiny_corpus[:1])
        first.checkpoint()
        first.close()
        warm = PlanIngestService(hub=ConverterHub(), persist_to=str(tmp_path / "s"))
        variant = PlanSource(
            tiny_corpus[0].dbms, tiny_corpus[0].text + "\n", "json"
        )  # different source hash, identical parsed plan
        report = warm.ingest_batch([tiny_corpus[0], variant])
        assert report.entries[0].from_index and report.entries[0].plan is None
        fingerprint = report.entries[0].fingerprint
        assert report.entries[1].fingerprint == fingerprint
        assert warm.plan_for(fingerprint) is not None
        assert warm.plan_for(fingerprint).fingerprint() == fingerprint

    def test_explicit_coverage_store_is_shared(self, tiny_corpus):
        store = CoverageStore()
        a = PlanIngestService(hub=ConverterHub(), coverage=store)
        b = PlanIngestService(hub=ConverterHub(), coverage=store)
        a.ingest_batch(tiny_corpus)
        report = b.ingest_batch(tiny_corpus)
        # b's fresh hub can't serve cache hits, but the shared store means
        # nothing is new and (via the source index) nothing converts.
        assert report.new_fingerprints == 0
        assert report.conversions == 0
        assert b.unique_plan_count() == a.unique_plan_count()
