"""Tests for the SQL lexer, parser, and printer."""

import pytest

from repro.errors import LexerError, ParseError
from repro.sqlparser import ast, parse_one, parse_sql, print_statement, tokenize
from repro.sqlparser.printer import print_expression
from repro.sqlparser.tokens import TokenType


class TestLexer:
    def test_keywords_and_identifiers(self):
        tokens = tokenize("SELECT c0 FROM t0")
        kinds = [token.type for token in tokens]
        assert kinds[:4] == [
            TokenType.KEYWORD,
            TokenType.IDENTIFIER,
            TokenType.KEYWORD,
            TokenType.IDENTIFIER,
        ]
        assert tokens[-1].type is TokenType.EOF

    def test_string_literal_with_escape(self):
        tokens = tokenize("SELECT 'it''s'")
        assert tokens[1].value == "it's"

    def test_numbers(self):
        tokens = tokenize("SELECT 1, 2.5, 1e3")
        values = [token.value for token in tokens if token.type is TokenType.NUMBER]
        assert values == ["1", "2.5", "1e3"]

    def test_comments_skipped(self):
        tokens = tokenize("SELECT 1 -- comment\n/* block */ , 2")
        numbers = [token for token in tokens if token.type is TokenType.NUMBER]
        assert len(numbers) == 2

    def test_operators(self):
        tokens = tokenize("a <> b >= c <= d != e")
        operators = [token.value for token in tokens if token.type is TokenType.OPERATOR]
        assert operators == ["<>", ">=", "<=", "!="]

    def test_quoted_identifiers(self):
        tokens = tokenize('SELECT "weird name", `backtick`')
        identifiers = [t.value for t in tokens if t.type is TokenType.IDENTIFIER]
        assert identifiers == ["weird name", "backtick"]

    def test_unterminated_string_raises(self):
        with pytest.raises(LexerError):
            tokenize("SELECT 'oops")

    def test_unexpected_character_raises(self):
        with pytest.raises(LexerError):
            tokenize("SELECT @")


class TestParserStatements:
    def test_create_table(self):
        statement = parse_one("CREATE TABLE t0 (c0 INT PRIMARY KEY, c1 TEXT NOT NULL, c2 FLOAT DEFAULT 0)")
        assert isinstance(statement, ast.CreateTable)
        assert [column.name for column in statement.columns] == ["c0", "c1", "c2"]
        assert statement.columns[0].primary_key
        assert statement.columns[1].not_null

    def test_create_table_table_level_pk(self):
        statement = parse_one("CREATE TABLE t0 (c0 INT, c1 INT, PRIMARY KEY (c0))")
        assert statement.columns[0].primary_key

    def test_create_index(self):
        statement = parse_one("CREATE UNIQUE INDEX i0 ON t0 (c0, c1)")
        assert isinstance(statement, ast.CreateIndex)
        assert statement.unique and statement.columns == ["c0", "c1"]

    def test_drop_table(self):
        statement = parse_one("DROP TABLE IF EXISTS t0")
        assert isinstance(statement, ast.DropTable) and statement.if_exists

    def test_insert_values(self):
        statement = parse_one("INSERT INTO t0 (c0, c1) VALUES (1, 'a'), (2, NULL)")
        assert isinstance(statement, ast.Insert)
        assert len(statement.rows) == 2

    def test_insert_select(self):
        statement = parse_one("INSERT INTO t0 SELECT c0 FROM t1")
        assert statement.select is not None

    def test_update(self):
        statement = parse_one("UPDATE t0 SET c0 = 1, c1 = c1 + 1 WHERE c0 > 5")
        assert isinstance(statement, ast.Update)
        assert len(statement.assignments) == 2
        assert statement.where is not None

    def test_delete(self):
        statement = parse_one("DELETE FROM t0 WHERE c0 IS NULL")
        assert isinstance(statement, ast.Delete)

    def test_explain_options(self):
        statement = parse_one("EXPLAIN (FORMAT JSON, SUMMARY TRUE) SELECT 1")
        assert isinstance(statement, ast.Explain)
        assert statement.format == "json"

    def test_explain_analyze(self):
        statement = parse_one("EXPLAIN ANALYZE SELECT 1")
        assert statement.analyze

    def test_multiple_statements(self):
        statements = parse_sql("SELECT 1; SELECT 2;")
        assert len(statements) == 2

    def test_unsupported_statement(self):
        with pytest.raises(ParseError):
            parse_one("GRANT ALL ON t0 TO alice")


class TestParserSelect:
    def test_simple_select(self):
        statement = parse_one("SELECT c0, c1 AS x FROM t0 WHERE c0 < 5")
        core = statement.body
        assert len(core.items) == 2
        assert core.items[1].alias == "x"

    def test_star_and_qualified_star(self):
        statement = parse_one("SELECT *, t0.* FROM t0")
        assert isinstance(statement.body.items[0].expression, ast.Star)
        assert statement.body.items[1].expression.table == "t0"

    def test_joins(self):
        statement = parse_one(
            "SELECT * FROM a INNER JOIN b ON a.x = b.x LEFT JOIN c ON b.y = c.y CROSS JOIN d"
        )
        join = statement.body.from_clause
        assert isinstance(join, ast.Join)
        assert join.join_type == "CROSS"
        assert join.left.join_type == "LEFT"

    def test_comma_join(self):
        statement = parse_one("SELECT * FROM a, b WHERE a.x = b.x")
        assert isinstance(statement.body.from_clause, ast.Join)

    def test_using_clause(self):
        statement = parse_one("SELECT * FROM a JOIN b USING (x)")
        assert statement.body.from_clause.using_columns == ["x"]

    def test_subquery_in_from(self):
        statement = parse_one("SELECT * FROM (SELECT c0 FROM t0) AS sub WHERE sub.c0 > 1")
        assert isinstance(statement.body.from_clause, ast.SubqueryRef)

    def test_group_by_having(self):
        statement = parse_one(
            "SELECT c0, COUNT(*) FROM t0 GROUP BY c0 HAVING COUNT(*) > 3"
        )
        assert len(statement.body.group_by) == 1
        assert statement.body.having is not None

    def test_order_limit_offset(self):
        statement = parse_one("SELECT c0 FROM t0 ORDER BY c0 DESC, c1 LIMIT 5 OFFSET 2")
        assert statement.order_by[0].descending
        assert isinstance(statement.limit, ast.Literal)
        assert isinstance(statement.offset, ast.Literal)

    def test_set_operations(self):
        statement = parse_one("SELECT c0 FROM a UNION SELECT c0 FROM b UNION ALL SELECT c0 FROM c")
        body = statement.body
        assert isinstance(body, ast.SetOperation)
        assert body.operator == "UNION ALL"
        assert body.left.operator == "UNION"
        assert len(statement.cores()) == 3

    def test_distinct(self):
        statement = parse_one("SELECT DISTINCT c0 FROM t0")
        assert statement.body.distinct

    def test_expression_precedence(self):
        statement = parse_one("SELECT * FROM t WHERE a = 1 OR b = 2 AND c = 3")
        where = statement.body.where
        assert where.operator == "OR"
        assert where.right.operator == "AND"

    def test_in_between_like_isnull(self):
        statement = parse_one(
            "SELECT * FROM t WHERE a IN (1, 2) AND b NOT BETWEEN 1 AND 5 "
            "AND c LIKE 'x%' AND d IS NOT NULL"
        )
        conjuncts = ast.split_conjuncts(statement.body.where)
        assert len(conjuncts) == 4
        assert isinstance(conjuncts[0], ast.InList)
        assert conjuncts[1].negated
        assert isinstance(conjuncts[2], ast.Like)
        assert conjuncts[3].negated

    def test_subquery_expressions(self):
        statement = parse_one(
            "SELECT * FROM t WHERE a IN (SELECT x FROM s) AND EXISTS (SELECT 1 FROM u) "
            "AND b > (SELECT MAX(x) FROM s)"
        )
        conjuncts = ast.split_conjuncts(statement.body.where)
        assert isinstance(conjuncts[0], ast.InSubquery)
        assert isinstance(conjuncts[1], ast.Exists)
        assert isinstance(conjuncts[2].right, ast.ScalarSubquery)

    def test_case_cast_functions(self):
        statement = parse_one(
            "SELECT CASE WHEN a > 1 THEN 'big' ELSE 'small' END, CAST(a AS TEXT), GREATEST(a, b) FROM t"
        )
        items = statement.body.items
        assert isinstance(items[0].expression, ast.Case)
        assert isinstance(items[1].expression, ast.Cast)
        assert isinstance(items[2].expression, ast.FunctionCall)

    def test_aggregate_distinct(self):
        statement = parse_one("SELECT COUNT(DISTINCT c0) FROM t0")
        call = statement.body.items[0].expression
        assert call.distinct

    def test_parse_error_reports_token(self):
        with pytest.raises(ParseError):
            parse_one("SELECT FROM")


class TestAstUtilities:
    def test_split_and_conjoin(self):
        statement = parse_one("SELECT * FROM t WHERE a = 1 AND b = 2 AND c = 3")
        conjuncts = ast.split_conjuncts(statement.body.where)
        assert len(conjuncts) == 3
        rebuilt = ast.conjoin(conjuncts)
        assert len(ast.split_conjuncts(rebuilt)) == 3

    def test_referenced_columns(self):
        statement = parse_one("SELECT * FROM t WHERE t.a = 1 AND b + c > 2")
        columns = {c.column for c in ast.referenced_columns(statement.body.where)}
        assert columns == {"a", "b", "c"}

    def test_contains_aggregate(self):
        statement = parse_one("SELECT SUM(a) + 1 FROM t")
        assert ast.contains_aggregate(statement.body.items[0].expression)

    def test_base_tables(self):
        statement = parse_one("SELECT * FROM a JOIN (SELECT * FROM b) AS s ON a.x = s.x")
        tables = [t.name for t in ast.base_tables(statement.body.from_clause)]
        assert tables == ["a", "b"]


class TestPrinter:
    ROUNDTRIP_QUERIES = [
        "SELECT c0 FROM t0 WHERE (c0 < 5)",
        "SELECT COUNT(*) FROM t0 GROUP BY c1 HAVING (COUNT(*) > 2)",
        "SELECT a.x FROM a INNER JOIN b ON (a.x = b.x) ORDER BY a.x DESC LIMIT 3",
        "SELECT c0 FROM t0 UNION ALL SELECT c0 FROM t1",
        "INSERT INTO t0 (c0) VALUES (1), (2)",
        "UPDATE t0 SET c0 = 2 WHERE (c0 = 1)",
        "DELETE FROM t0 WHERE (c0 IS NULL)",
        "CREATE TABLE t0 (c0 INT PRIMARY KEY, c1 TEXT)",
    ]

    @pytest.mark.parametrize("query", ROUNDTRIP_QUERIES)
    def test_print_then_reparse(self, query):
        first = parse_one(query)
        printed = print_statement(first)
        second = parse_one(printed)
        assert print_statement(second) == printed

    def test_print_expression_nested(self):
        statement = parse_one("SELECT * FROM t WHERE a IN (GREATEST(0.1, 0.2))")
        text = print_expression(statement.body.where)
        assert "GREATEST" in text
