"""Tests for the plan-similarity layer (repro.similarity) and its consumers.

Pins the subsystem's four contracts:

* embeddings are deterministic, content-pure, cached like fingerprints;
* PlanIndex queries are bit-identical with and without numpy and order
  deterministically by ``(distance, fingerprint)`` across shard layouts;
* the sidecar persistence survives torn tails and resumes campaigns;
* the consumers — QPG ``novelty="similarity"`` and report triage — are
  deterministic, and ``novelty="exact"`` campaigns are byte-identical to
  the pre-similarity behaviour whether trigger-plan capture is on or off.
"""

import json
import os

import pytest

from repro.core import (
    OperationCategory,
    PlanBuilder,
    PropertyCategory,
    plan_distance,
    structural_fingerprint,
)
from repro.engine import arrays
from repro.parallel import ShardedCampaign
from repro.similarity import (
    DEFAULT_CLUSTER_THRESHOLD,
    EMBEDDING_DIMENSIONS,
    PlanIndex,
    PlanIndexError,
    cluster_reports,
    cosine_distance,
    embed_plan,
)
from repro.similarity.embedding import _OPERATION_DIMS, _PROPERTY_DIMS
from repro.testing import BugReport, TestingCampaign
from repro.testing.qpg import QPGConfig, QueryPlanGuidance


def build_plan(dbms="postgresql", query="SELECT 1", scans=1):
    builder = (
        PlanBuilder(source_dbms=dbms, query=query)
        .operation(OperationCategory.FOLDER, "Aggregate")
        .cardinality("Estimated Rows", 10)
        .child(OperationCategory.JOIN, "Hash Join")
        .configuration("Join Condition", "a = b")
    )
    for position in range(scans):
        builder = builder.child(
            OperationCategory.PRODUCER, "Full Table Scan"
        ).configuration("name object", f"t{position}").end()
    return (
        builder.end()
        .plan_prop(PropertyCategory.STATUS, "Planning Time", 0.5)
        .build()
    )


@pytest.fixture
def numpy_toggle():
    """Restore the array-kernel toggle after tests that flip it."""
    enabled = arrays.numpy_enabled()
    yield
    if arrays.numpy_available():
        arrays.set_numpy_enabled(enabled)


# ---------------------------------------------------------------- embedding


class TestEmbedding:
    def test_fixed_width_and_integer_valued(self):
        vector = embed_plan(build_plan())
        assert len(vector) == EMBEDDING_DIMENSIONS
        assert all(isinstance(value, float) for value in vector)
        assert all(value == int(value) and value >= 0 for value in vector)

    def test_deterministic_across_equal_plans(self):
        assert embed_plan(build_plan()) == embed_plan(build_plan())

    def test_content_pure_ignores_dbms_and_query(self):
        a = embed_plan(build_plan(dbms="mysql", query="SELECT 1"))
        b = embed_plan(build_plan(dbms="tidb", query="SELECT 2"))
        assert a == b

    def test_distinct_structures_embed_apart(self):
        a = embed_plan(build_plan(scans=1))
        b = embed_plan(build_plan(scans=3))
        assert a != b
        assert cosine_distance(a, b) > 0.0

    def test_layout_category_and_shape_dimensions(self):
        plan = build_plan(scans=2)  # Aggregate -> Hash Join -> 2 scans
        vector = embed_plan(plan)
        counts = plan.count_categories()
        from repro.core import OPERATION_CATEGORY_ORDER, PROPERTY_CATEGORY_ORDER

        for position, category in enumerate(OPERATION_CATEGORY_ORDER):
            assert vector[position] == float(counts[category])
        property_counts = plan.count_property_categories()
        for position, category in enumerate(PROPERTY_CATEGORY_ORDER):
            assert vector[_OPERATION_DIMS + position] == float(
                property_counts[category]
            )
        shape = _OPERATION_DIMS + _PROPERTY_DIMS
        assert vector[shape] == 4.0  # node count
        assert vector[shape + 1] == float(plan.depth())
        assert vector[shape + 2] == 2.0  # leaves
        assert vector[shape + 3] == 2.0  # max fan-out (the join)
        assert vector[shape + 4] == 2.0  # internal nodes

    def test_cached_on_plan_and_invalidated_by_mutation(self):
        plan = build_plan()
        first = embed_plan(plan)
        assert embed_plan(plan) is first  # memoised
        # Mutate the tree and invalidate, as the fingerprint contract
        # requires; the stale cached vector must not survive.
        plan.root.children[0].children.append(
            build_plan().root.children[0].children[0]
        )
        plan.invalidate_fingerprints()
        second = embed_plan(plan)
        assert second is not first
        assert second != first

    def test_survives_serialisation_roundtrip(self):
        from repro.core import UnifiedPlan

        plan = build_plan(scans=2)
        clone = UnifiedPlan.from_dict(plan.to_dict())
        assert embed_plan(clone) == embed_plan(plan)


# ---------------------------------------------------------------- distances


class TestCosineDistance:
    def test_self_distance_is_exactly_zero(self):
        vector = embed_plan(build_plan(scans=3))
        assert cosine_distance(vector, vector) == 0.0

    def test_zero_vector_rules(self):
        zero = (0.0,) * 4
        assert cosine_distance(zero, zero) == 0.0
        assert cosine_distance(zero, (1.0, 0.0, 0.0, 0.0)) == 1.0

    def test_orthogonal_vectors_at_distance_one(self):
        assert cosine_distance((1.0, 0.0), (0.0, 1.0)) == 1.0

    def test_width_mismatch_raises(self):
        with pytest.raises(PlanIndexError):
            cosine_distance((1.0,), (1.0, 2.0))


# ---------------------------------------------------------------- the index


class TestPlanIndex:
    def test_add_contains_get_len(self):
        index = PlanIndex()
        vector = embed_plan(build_plan())
        assert index.add("fp-a", vector) is True
        assert index.add("fp-a", vector) is False  # first write wins
        assert "fp-a" in index
        assert index.get("fp-a") == vector
        assert len(index) == 1

    def test_nearest_distance_of_empty_index_is_maximal(self):
        assert PlanIndex().nearest_distance(embed_plan(build_plan())) == 1.0

    def test_query_ties_break_by_fingerprint(self):
        index = PlanIndex()
        vector = embed_plan(build_plan())
        for fingerprint in ["bbb", "aaa", "ccc"]:
            index.add(fingerprint, vector)
        results = index.query(vector, k=3)
        assert [fingerprint for fingerprint, _ in results] == ["aaa", "bbb", "ccc"]
        assert all(distance == 0.0 for _, distance in results)

    def test_self_query_distance_never_negative(self):
        index = PlanIndex()
        for scans in range(1, 12):
            vector = embed_plan(build_plan(scans=scans))
            index.add(f"fp-{scans}", vector)
        for scans in range(1, 12):
            vector = embed_plan(build_plan(scans=scans))
            fingerprint, distance = index.nearest(vector)
            assert fingerprint == f"fp-{scans}"
            assert distance == 0.0

    def test_dimension_mismatch_raises(self):
        index = PlanIndex()
        index.add("fp", (1.0, 2.0))
        with pytest.raises(PlanIndexError):
            index.add("other", (1.0, 2.0, 3.0))
        with pytest.raises(PlanIndexError):
            index.query((1.0,))

    def test_query_order_independent_of_shard_layout(self):
        vectors = {
            f"fp-{scans:02d}": embed_plan(build_plan(scans=scans))
            for scans in range(1, 15)
        }
        probe = embed_plan(build_plan(scans=4))
        reference = None
        for shard_count in (1, 3, 16):
            index = PlanIndex(shard_count=shard_count)
            for fingerprint, vector in vectors.items():
                index.add(fingerprint, vector)
            results = index.query(probe, k=6)
            if reference is None:
                reference = results
            else:
                assert results == reference

    @pytest.mark.skipif(
        not arrays.numpy_available(), reason="requires numpy to compare paths"
    )
    def test_numpy_and_list_paths_bit_identical(self, numpy_toggle):
        # Above the dense threshold, numpy answers queries; the pure-list
        # fallback must return the *same bits*, not merely close floats.
        index = PlanIndex()
        for scans in range(1, 21):
            index.add(f"fp-{scans:02d}", embed_plan(build_plan(scans=scans)))
        index.add("fp-zero", (0.0,) * EMBEDDING_DIMENSIONS)
        probes = [embed_plan(build_plan(scans=scans)) for scans in range(1, 8)]
        probes.append((0.0,) * EMBEDDING_DIMENSIONS)
        arrays.set_numpy_enabled(True)
        with_numpy = [index.query(probe, k=5) for probe in probes]
        arrays.set_numpy_enabled(False)
        without_numpy = [index.query(probe, k=5) for probe in probes]
        assert with_numpy == without_numpy


# ---------------------------------------------------------------- durability


class TestPlanIndexDurability:
    def _populate(self, index, count=10):
        for scans in range(1, count + 1):
            index.add(f"fp-{scans:02d}", embed_plan(build_plan(scans=scans)))

    def test_roundtrip_through_directory(self, tmp_path):
        root = str(tmp_path / "idx")
        index = PlanIndex(path=root)
        self._populate(index)
        index.close()
        reopened = PlanIndex.open(root)
        assert len(reopened) == 10
        assert reopened.get("fp-03") == embed_plan(build_plan(scans=3))
        reopened.close()

    def test_load_tolerates_torn_tail_and_compact_heals(self, tmp_path):
        root = str(tmp_path / "idx")
        index = PlanIndex(path=root)
        self._populate(index)
        index.close()
        # Simulate a crash mid-append: a torn, unparseable final line.
        segments = [
            name for name in os.listdir(root) if name.endswith(".jsonl")
        ]
        victim = os.path.join(root, sorted(segments)[0])
        with open(victim, "a", encoding="utf-8") as handle:
            handle.write('{"f": "torn-entry", "v": [1.0, 2.')
        survivor = PlanIndex.open(root)
        assert len(survivor) == 10
        assert not survivor.contains("torn-entry")
        before, after = survivor.compact()
        assert before == after + 1  # the torn line is gone
        survivor.close()
        healed = PlanIndex.open(root)
        assert len(healed) == 10
        healed.close()

    def test_save_refuses_to_clobber_foreign_index(self, tmp_path):
        foreign_root = str(tmp_path / "foreign")
        foreign = PlanIndex(path=foreign_root)
        self._populate(foreign, count=3)
        foreign.close()
        other = PlanIndex()
        other.add("fp-x", (1.0,) * 4)
        with pytest.raises(PlanIndexError):
            other.save(foreign_root)

    def test_attach_rejects_out_of_range_stray_segment(self, tmp_path):
        root = str(tmp_path / "stray")
        os.makedirs(root)
        with open(os.path.join(root, "sim-099.jsonl"), "w") as handle:
            handle.write('{"f": "fp", "v": [1.0]}\n')
        with pytest.raises(PlanIndexError):
            PlanIndex(path=root, shard_count=16)

    def test_shard_count_mismatch_raises(self, tmp_path):
        root = str(tmp_path / "idx")
        PlanIndex(path=root, shard_count=16).close()
        with pytest.raises(PlanIndexError):
            PlanIndex(path=root, shard_count=4)

    def test_coexists_with_coverage_store_directory(self, tmp_path):
        # The sidecar contract: same directory, disjoint file names.
        from repro.pipeline.coverage import CoverageStore

        root = str(tmp_path / "store")
        store = CoverageStore.open(root)
        store.add("c0ffee", {"s": "c0ffee"})
        store.save()
        index = PlanIndex(path=root)
        self._populate(index, count=4)
        index.flush()
        index.close()
        store.close()
        store2 = CoverageStore.open(root)
        assert store2.contains("c0ffee")
        store2.close()
        index2 = PlanIndex.open(root)
        assert len(index2) == 4
        index2.close()


# ---------------------------------------------------------------- QPG mode


def _make_qpg(novelty, seed=11):
    from repro.dialects import create_dialect
    from repro.testing.generator import GeneratorConfig, RandomQueryGenerator

    dialect = create_dialect("postgresql")
    generator = RandomQueryGenerator(
        seed=seed, config=GeneratorConfig(max_tables=2)
    )
    return QueryPlanGuidance(
        dialect,
        generator,
        config=QPGConfig(queries_per_round=40, novelty=novelty),
    )


class TestQPGSimilarityMode:
    def test_exact_mode_has_no_index(self):
        qpg = _make_qpg("exact")
        assert qpg.plan_index is None
        statistics = qpg.run()
        assert statistics.novelty_reward_total == 0.0

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            _make_qpg("fuzzy")

    def test_similarity_mode_rewards_and_indexes(self):
        qpg = _make_qpg("similarity")
        statistics = qpg.run()
        assert statistics.novelty_reward_total > 0.0
        assert len(qpg.plan_index) == len(qpg.seen_fingerprints)
        # Every indexed fingerprint was seen, and vice versa.
        assert set(qpg.plan_index) == qpg.seen_fingerprints

    def test_similarity_mode_deterministic_for_fixed_seed(self):
        first = _make_qpg("similarity")
        s1 = first.run()
        second = _make_qpg("similarity")
        s2 = second.run()
        assert s1.novelty_reward_total == s2.novelty_reward_total
        assert s1.unique_plans == s2.unique_plans
        assert s1.mutations_applied == s2.mutations_applied
        assert first.plan_index.to_payload() == second.plan_index.to_payload()

    def test_exact_mode_statistics_unaffected_by_similarity_machinery(self):
        # The stagnation policy differs between modes, so the runs differ —
        # but exact mode must behave as if the similarity layer did not
        # exist: two exact runs agree with each other bit for bit.
        s1 = _make_qpg("exact").run()
        s2 = _make_qpg("exact").run()
        assert vars(s1) == vars(s2)


# ---------------------------------------------------------------- triage


def _report(bug_id, plan=None, dbms="mysql"):
    return BugReport(
        dbms=dbms,
        found_by="QPG",
        bug_id=bug_id,
        status="Confirmed",
        severity="Critical",
        trigger_query="SELECT 1",
        trigger_plan=None if plan is None else plan.to_dict(),
    )


class TestClusterReports:
    def test_identical_plans_cluster_together(self):
        plan = build_plan()
        clusters = cluster_reports(
            [_report("1", plan), _report("2", plan), _report("3", plan)]
        )
        assert len(clusters) == 1
        assert len(clusters[0]) == 3
        assert clusters[0].exemplar in clusters[0].members

    def test_distant_plans_split(self):
        near = build_plan(scans=1)
        far = (
            PlanBuilder(source_dbms="mysql", query="q")
            .operation(OperationCategory.PRODUCER, "Full Table Scan")
            .build()
        )
        clusters = cluster_reports(
            [_report("1", near), _report("2", far)], threshold=0.05
        )
        assert len(clusters) == 2

    def test_planless_reports_are_singletons(self):
        plan = build_plan()
        clusters = cluster_reports(
            [_report("1", plan), _report("2"), _report("3", plan)]
        )
        sizes = sorted(len(cluster) for cluster in clusters)
        assert sizes == [1, 2]

    def test_exemplar_is_edit_distance_medoid(self):
        hub = build_plan(scans=2)  # between scans=1 and scans=3
        a = build_plan(scans=1)
        b = build_plan(scans=3)
        clusters = cluster_reports(
            [_report("a", a), _report("hub", hub), _report("b", b)],
            threshold=1.0,
        )
        assert len(clusters) == 1
        assert clusters[0].exemplar.bug_id == "hub"

    def test_deterministic_and_pure(self):
        reports = [
            _report(str(position), build_plan(scans=1 + position % 3))
            for position in range(6)
        ]
        snapshot = [dict(vars(report)) for report in reports]
        first = cluster_reports(reports)
        second = cluster_reports(reports)
        assert [c.members for c in first] == [c.members for c in second]
        assert [dict(vars(report)) for report in reports] == snapshot

    def test_threshold_zero_merges_only_identical_embeddings(self):
        clusters = cluster_reports(
            [
                _report("1", build_plan(scans=1)),
                _report("2", build_plan(scans=1)),
                _report("3", build_plan(scans=4)),
            ],
            threshold=0.0,
        )
        assert sorted(len(cluster) for cluster in clusters) == [1, 2]


# ---------------------------------------------------------------- campaigns


_SMALL = dict(queries_per_dbms=25, cert_pairs_per_dbms=10, bound_checks_per_dbms=5)


class TestCampaignIntegration:
    def test_exact_mode_inert_with_capture_on_or_off(self):
        on = TestingCampaign(**_SMALL).run()
        off = TestingCampaign(capture_trigger_plans=False, **_SMALL).run()
        assert on.table5_rows() == off.table5_rows()
        assert on.plan_fingerprints == off.plan_fingerprints
        assert on.unique_plans == off.unique_plans
        assert on.queries_generated == off.queries_generated
        assert on.conversions == off.conversions
        assert on.conversion_cache_hits == off.conversion_cache_hits
        assert on.novelty_reward_total == 0.0 and on.index_payload is None
        assert all(report.trigger_plan is not None for report in on.reports)
        assert all(report.trigger_plan is None for report in off.reports)

    def test_similarity_campaign_deterministic(self):
        a = TestingCampaign(novelty="similarity", **_SMALL).run()
        b = TestingCampaign(novelty="similarity", **_SMALL).run()
        assert a.novelty_reward_total == b.novelty_reward_total
        assert a.index_payload == b.index_payload
        assert a.table5_rows() == b.table5_rows()
        assert len(a.index_payload["entries"]) > 0
        for vector in a.index_payload["entries"].values():
            assert len(vector) == EMBEDDING_DIMENSIONS

    def test_sharded_similarity_equals_serial(self):
        serial = TestingCampaign(novelty="similarity", **_SMALL).run()
        sharded = ShardedCampaign(
            novelty="similarity", shards=2, parallel=False, **_SMALL
        ).run()
        assert sharded.table5_rows() == serial.table5_rows()
        assert sharded.plan_fingerprints == serial.plan_fingerprints
        assert sharded.novelty_reward_total == serial.novelty_reward_total
        assert sharded.index_payload == serial.index_payload
        # Cluster assignments are recomputed, never shipped — both sides
        # must agree exactly.
        key = lambda clusters: [
            [(m.dbms, m.bug_id) for m in c.members] for c in clusters
        ]
        assert key(sharded.cluster_reports()) == key(serial.cluster_reports())

    def test_reports_survive_payload_roundtrip_with_clusters_intact(self):
        # Satellite 6: first-wins folding and cluster assignment must
        # survive the JSON/pickle round-payload boundary.
        from repro.testing import fold_reports, report_from_payload

        result = TestingCampaign(novelty="similarity", **_SMALL).run()
        rows = [
            row
            for _, payload in sorted(result.round_payloads)
            for row in payload.get("reports", [])
        ]
        restored = fold_reports(
            [report_from_payload(json.loads(json.dumps(row))) for row in rows]
        )
        # Sort like the campaign does; the folded rows must then match the
        # campaign's reports exactly, captured plans included.
        order = {name: n for n, name in enumerate(["mysql", "postgresql", "tidb"])}
        restored.sort(
            key=lambda r: (order.get(r.dbms, 9), r.found_by != "QPG", r.bug_id)
        )
        assert [dict(vars(r)) for r in restored] == [
            dict(vars(r)) for r in result.reports
        ]
        key = lambda clusters: [
            [(m.dbms, m.bug_id) for m in c.members] for c in clusters
        ]
        assert key(cluster_reports(result.reports)) == key(
            cluster_reports(restored)
        )

    def test_unknown_fields_in_payload_are_dropped(self):
        from repro.testing import report_from_payload

        report = report_from_payload(
            {
                "dbms": "mysql",
                "found_by": "QPG",
                "bug_id": "1",
                "status": "Confirmed",
                "severity": "Critical",
                "from_the_future": {"x": 1},
            }
        )
        assert report.bug_id == "1"
        assert report.trigger_plan is None

    def test_similarity_resume_matches_uninterrupted(self, tmp_path):
        config = dict(novelty="similarity", **_SMALL)
        root = str(tmp_path / "resume")
        interrupted = TestingCampaign(
            persist_to=root, max_rounds=1, **config
        ).run()
        assert interrupted.rounds_completed == 1
        sidecar = PlanIndex.open(root)
        assert len(sidecar) == len(interrupted.index_payload["entries"])
        sidecar.close()
        resumed = TestingCampaign(persist_to=root, **config).run()
        reference = TestingCampaign(
            persist_to=str(tmp_path / "ref"), **config
        ).run()
        assert resumed.table5_rows() == reference.table5_rows()
        assert resumed.plan_fingerprints == reference.plan_fingerprints
        assert resumed.novelty_reward_total == reference.novelty_reward_total
        assert resumed.index_payload == reference.index_payload

    def test_exact_round_labels_unchanged_by_similarity_layer(self):
        # Pre-similarity stores must keep resuming: exact labels are frozen.
        campaign = TestingCampaign(**_SMALL)
        assert campaign._round_label(0, "mysql") == (
            "round:mysql:1:25:10:5"
        )
        similarity = TestingCampaign(novelty="similarity", **_SMALL)
        assert similarity._round_label(0, "mysql").startswith(
            "round:mysql:1:25:10:5:novelty=similarity"
        )

    def test_unknown_novelty_mode_rejected(self):
        with pytest.raises(ValueError):
            TestingCampaign(novelty="fuzzy")


# ---------------------------------------------------------------- distance


class TestPlanDistance:
    def test_zero_for_structurally_identical_plans(self):
        assert plan_distance(build_plan(), build_plan(dbms="mysql")) == 0

    def test_counts_edits(self):
        assert plan_distance(build_plan(scans=1), build_plan(scans=3)) == 2

    def test_child_order_invariant_by_default(self):
        left = (
            PlanBuilder(source_dbms="mysql", query="q")
            .operation(OperationCategory.JOIN, "Hash Join")
            .child(OperationCategory.PRODUCER, "Full Table Scan")
            .end()
            .child(OperationCategory.PRODUCER, "Index Scan")
            .end()
            .build()
        )
        right = (
            PlanBuilder(source_dbms="mysql", query="q")
            .operation(OperationCategory.JOIN, "Hash Join")
            .child(OperationCategory.PRODUCER, "Index Scan")
            .end()
            .child(OperationCategory.PRODUCER, "Full Table Scan")
            .end()
            .build()
        )
        # Structural fingerprints are child-order sensitive; the distance
        # canonicalizes children away by default.
        assert structural_fingerprint(left) != structural_fingerprint(right)
        assert plan_distance(left, right) == 0
        assert plan_distance(left, right, sort_children=False) > 0
