"""Tests for the three applications: testing (A.1), visualization (A.2), benchmarking (A.3)."""

import pytest

from repro.benchmarking import (
    analyse_query11,
    collect_nosql_plans,
    collect_tpch_plans,
    figure4_variances,
    high_variance_queries,
    scan_count_comparison,
    table6_rows,
    table7_rows,
    tpch,
    unified_text,
)
from repro.core import OperationCategory
from repro.dialects import create_dialect
from repro.sqlparser import ast, parse_one
from repro.testing import (
    CardinalityRestrictionTester,
    FaultyDialect,
    KNOWN_BUGS,
    QueryPlanGuidance,
    QPGConfig,
    RandomQueryGenerator,
    TestingCampaign,
    bugs_for,
    check_tlp,
)
from repro.visualize import estimate_effort, render_ascii, render_dot, render_html


# ---------------------------------------------------------------------------
# A.1 Testing
# ---------------------------------------------------------------------------


class TestGenerator:
    def test_schema_statements_parse(self):
        generator = RandomQueryGenerator(seed=3)
        for statement in generator.schema_statements():
            parse_one(statement)

    def test_queries_parse(self):
        generator = RandomQueryGenerator(seed=4)
        generator.schema_statements()
        for _ in range(30):
            parse_one(generator.select_query())

    def test_mutations_parse(self):
        generator = RandomQueryGenerator(seed=5)
        generator.schema_statements()
        for _ in range(20):
            parse_one(generator.mutation_statement())

    def test_restricted_query_is_more_restrictive(self):
        generator = RandomQueryGenerator(seed=6)
        generator.schema_statements()
        query = generator.select_query()
        restricted = generator.restricted_query(query, generator.tables[0])
        assert "WHERE" in restricted.upper()
        assert len(restricted) > len(query)

    def test_determinism(self):
        first = RandomQueryGenerator(seed=9)
        second = RandomQueryGenerator(seed=9)
        first.schema_statements()
        second.schema_statements()
        assert [first.select_query() for _ in range(5)] == [
            second.select_query() for _ in range(5)
        ]


class TestTLP:
    def _dialect(self):
        dialect = create_dialect("postgresql")
        dialect.execute("CREATE TABLE t0 (c0 INT, c1 INT)")
        dialect.execute(
            "INSERT INTO t0 (c0, c1) VALUES "
            + ", ".join(f"({i}, {i % 3})" for i in range(1, 41))
            + ", (NULL, NULL)"
        )
        dialect.analyze_tables()
        return dialect

    def test_correct_dialect_passes(self):
        dialect = self._dialect()
        predicate = parse_one("SELECT * FROM t0 WHERE c0 < 20").body.where
        result = check_tlp(dialect, "t0", predicate)
        assert result.passed, result.message

    def test_faulty_dialect_detected(self):
        dialect = FaultyDialect(
            self._dialect(), logic_bugs=bugs_for("mysql", "logic"), trigger_rate=1
        )
        predicate = parse_one("SELECT * FROM t0 WHERE c0 < 20").body.where
        result = check_tlp(dialect, "t0", predicate)
        assert not result.passed

    def test_partition_queries_cover_three_cases(self):
        predicate = parse_one("SELECT * FROM t0 WHERE c0 < 20").body.where
        queries = check_tlp.__wrapped__ if hasattr(check_tlp, "__wrapped__") else None
        from repro.testing import partition_queries

        first, second, third = partition_queries("t0", predicate)
        assert "NOT" in second and "IS NULL" in third


class TestQPGAndCERT:
    def test_qpg_discovers_plans_and_mutates(self):
        dialect = create_dialect("postgresql")
        generator = RandomQueryGenerator(seed=11)
        qpg = QueryPlanGuidance(
            dialect, generator, config=QPGConfig(queries_per_round=40, stagnation_threshold=5, run_tlp=False)
        )
        statistics = qpg.run()
        assert statistics.queries_generated == 40
        assert statistics.unique_plans >= 3
        assert statistics.mutations_applied >= 1

    def test_qpg_fingerprints_ignore_tidb_identifiers(self):
        dialect = create_dialect("tidb")
        generator = RandomQueryGenerator(seed=12)
        qpg = QueryPlanGuidance(
            dialect, generator, config=QPGConfig(queries_per_round=10, run_tlp=False)
        )
        qpg.run()
        query = "SELECT * FROM t0"
        assert qpg.observe_plan(query) in (True, False)
        # Re-observing the same query must not be "new" despite fresh operator ids.
        assert qpg.observe_plan(query) is False

    def test_cert_clean_dialect_has_no_violations(self):
        dialect = create_dialect("postgresql")
        generator = RandomQueryGenerator(seed=13)
        cert = CardinalityRestrictionTester(dialect, generator)
        statistics = cert.run(pairs=25)
        assert statistics.pairs_checked == 25
        assert statistics.violations == []

    def test_cert_detects_injected_monotonicity_bug(self):
        dialect = FaultyDialect(
            create_dialect("tidb"),
            performance_bugs=bugs_for("tidb", "performance"),
            trigger_rate=1,
        )
        generator = RandomQueryGenerator(seed=14)
        cert = CardinalityRestrictionTester(dialect, generator)
        statistics = cert.run(pairs=30)
        assert statistics.violations
        assert all(v.ratio > 1.0 for v in statistics.violations)


class TestCampaign:
    def test_table5_reproduced(self):
        campaign = TestingCampaign(queries_per_dbms=60, cert_pairs_per_dbms=30)
        result = campaign.run()
        assert len(result.reports) == len(KNOWN_BUGS) == 17
        assert result.by_dbms() == {"mysql": 7, "postgresql": 1, "tidb": 9}
        found_by = {(report.dbms, report.found_by) for report in result.reports}
        assert ("mysql", "QPG") in found_by
        assert ("postgresql", "CERT") in found_by
        assert ("tidb", "CERT") in found_by

    def test_severities_match_paper(self):
        campaign = TestingCampaign(queries_per_dbms=60, cert_pairs_per_dbms=30)
        rows = campaign.run().table5_rows()
        severities = [row["Severity"] for row in rows]
        assert severities.count("Critical") == 3
        assert severities.count("Serious") == 3
        assert severities.count("Major") == 5


# ---------------------------------------------------------------------------
# A.2 Visualization
# ---------------------------------------------------------------------------


class TestVisualization:
    def _plan(self, dbms="postgresql"):
        from repro.converters import converter_for

        dialect = create_dialect(dbms)
        dialect.execute("CREATE TABLE t0 (c0 INT)")
        dialect.execute("INSERT INTO t0 (c0) VALUES (1), (2), (3)")
        dialect.analyze_tables()
        converter = converter_for(dbms)
        output = dialect.explain("SELECT c0, COUNT(*) FROM t0 GROUP BY c0", format=converter.formats[0])
        return converter.convert(output.text, format=converter.formats[0])

    def test_ascii_render(self):
        text = render_ascii(self._plan(), with_properties=True)
        assert "Full Table Scan" in text or "Aggregate" in text

    def test_dot_render(self):
        dot = render_dot(self._plan())
        assert dot.startswith("digraph") and "->" in dot

    def test_html_render(self):
        page = render_html(self._plan(), title="TPC-H Q1")
        assert "<html>" in page and "Full Table Scan" in page

    def test_same_renderer_for_multiple_dbms(self):
        for dbms in ("postgresql", "mysql", "tidb"):
            assert render_dot(self._plan(dbms)).startswith("digraph")

    def test_effort_model_matches_paper(self):
        effort = estimate_effort(dbms_count=5)
        assert effort.dbms_specific_days == pytest.approx(940)
        assert effort.uplan_days == pytest.approx(194, abs=1)
        assert 0.75 <= effort.reduction_fraction <= 0.85

    def test_effort_grows_with_dbms_count(self):
        assert estimate_effort(10).reduction_fraction > estimate_effort(5).reduction_fraction


# ---------------------------------------------------------------------------
# A.3 Benchmarking
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def tpch_plans():
    return collect_tpch_plans(scale=0.2)


class TestTPCH:
    def test_all_22_queries_parse(self):
        for query in tpch.QUERIES.values():
            parse_one(query)

    def test_data_generator_row_counts(self):
        data = tpch.generate_data(scale=0.5)
        assert set(data) == set(tpch.TPCH_TABLES)
        assert len(data["nation"]) == 25
        assert len(data["lineitem"]) > len(data["orders"])

    def test_queries_execute_on_postgresql(self):
        dialect = create_dialect("postgresql")
        tpch.load_into(dialect, scale=0.2)
        for number in (1, 3, 6, 11, 13):
            rows = dialect.execute(tpch.QUERIES[number])
            assert isinstance(rows, list)

    def test_collect_plans_covers_five_dbms(self, tpch_plans):
        assert set(tpch_plans) == {"mongodb", "mysql", "neo4j", "postgresql", "tidb"}
        assert len(tpch_plans["postgresql"].plans) == 22
        assert len(tpch_plans["mongodb"].plans) == 3
        assert len(tpch_plans["neo4j"].plans) == 18

    def test_table6_shape(self, tpch_plans):
        rows = {row["DBMS"]: row for row in table6_rows(tpch_plans)}
        # Relational DBMSs expose more operations than the non-relational ones,
        # TiDB the most (reader/projection wrapping), as in Table VI.
        assert rows["tidb"]["Sum"] > rows["postgresql"]["Sum"] >= rows["mysql"]["Sum"] - 1
        assert rows["mysql"]["Sum"] > rows["mongodb"]["Sum"]
        assert rows["postgresql"]["Sum"] > rows["neo4j"]["Sum"]
        assert rows["mongodb"]["Join"] == 0.0

    def test_figure4_variance(self, tpch_plans):
        variances = figure4_variances(tpch_plans)
        assert len(variances) == 22
        high = high_variance_queries(variances, threshold=2.0)
        assert 2 in high or 5 in high or 9 in high
        assert 11 in high or variances[11] > 0

    def test_table7_nosql(self):
        plans = collect_nosql_plans(scale=0.3)
        rows = {row["DBMS"]: row for row in table7_rows(plans)}
        assert rows["mongodb"]["Join"] == 0.0
        assert rows["neo4j"]["Join"] > 0.0
        # YCSB plans are simpler than TPC-H plans for MongoDB (Table VII).
        assert rows["mongodb"]["Sum"] <= 4.0


class TestQuery11Analysis:
    def test_listing4_analysis(self):
        analysis = analyse_query11(scale=0.2)
        comparison = scan_count_comparison(analysis)
        assert comparison["postgresql"] == 6  # six table scans, as in the paper
        assert analysis.tidb_producer_count >= 3
        assert 0.05 <= analysis.potential_saving_fraction <= 0.6
        assert len(analysis.scan_timings) >= 3

    def test_unified_text_rendering(self):
        analysis = analyse_query11(scale=0.2)
        text = unified_text(analysis.postgresql_plan)
        assert "Producer->Full Table Scan" in text
        assert "partsupp" in text
