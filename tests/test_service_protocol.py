"""Wire-protocol and basic service-surface tests."""

import threading

import pytest

from repro.service import (
    FrameDecoder,
    MAX_MESSAGE_BYTES,
    ProtocolError,
    QueryService,
    ServiceClient,
    ServiceError,
    TenantRegistry,
)
from repro.service.protocol import decode_payload, encode_message


@pytest.fixture(scope="module")
def service():
    with QueryService(max_workers=4) as running:
        yield running


@pytest.fixture()
def client(service):
    with ServiceClient(service.address) as connected:
        yield connected


class TestFraming:
    def test_round_trip(self):
        message = {"op": "execute", "sql": "SELECT 1", "id": 7, "values": [1, 2.5, None, True, "x"]}
        frame = encode_message(message)
        decoder = FrameDecoder()
        assert decoder.feed(frame) == [message]

    def test_incremental_feed(self):
        message = {"op": "ping", "id": 1}
        frame = encode_message(message)
        decoder = FrameDecoder()
        for position in range(len(frame) - 1):
            assert decoder.feed(frame[position:position + 1]) == []
        assert decoder.feed(frame[-1:]) == [message]

    def test_multiple_messages_one_feed(self):
        first = {"id": 1}
        second = {"id": 2}
        decoder = FrameDecoder()
        assert decoder.feed(encode_message(first) + encode_message(second)) == [first, second]

    def test_oversized_length_prefix_rejected(self):
        decoder = FrameDecoder()
        bad = (MAX_MESSAGE_BYTES + 1).to_bytes(4, "big") + b"x"
        with pytest.raises(ProtocolError):
            decoder.feed(bad)

    def test_non_object_payload_rejected(self):
        with pytest.raises(ProtocolError):
            decode_payload(b"[1, 2, 3]")

    def test_exact_float_and_int_round_trip(self):
        message = {"f": 0.1 + 0.2, "i": 2 ** 80, "neg": -1.5e-300}
        (decoded,) = FrameDecoder().feed(encode_message(message))
        assert decoded["f"] == message["f"]
        assert decoded["i"] == message["i"]
        assert decoded["neg"] == message["neg"]

    def test_numpy_scalars_serialize_when_available(self):
        numpy = pytest.importorskip("numpy")
        message = {"i": numpy.int64(7), "f": numpy.float64(1.25)}
        (decoded,) = FrameDecoder().feed(encode_message(message))
        assert decoded == {"i": 7, "f": 1.25}


class TestServiceSurface:
    def test_ping(self, client):
        assert client.ping()

    def test_execute_and_rows(self, client):
        session = client.open_session("postgresql", tenant="proto-exec")
        session.execute("CREATE TABLE t (a INT, b TEXT)")
        session.execute("INSERT INTO t VALUES (1, 'x'), (2, 'y')")
        rows = session.execute("SELECT a, b FROM t ORDER BY a")
        assert rows == [{"a": 1, "b": "x"}, {"a": 2, "b": "y"}]
        session.close()

    def test_explain_passthrough_matches_direct(self, client):
        from repro.dialects import create_dialect

        setup = [
            "CREATE TABLE e (a INT PRIMARY KEY, b INT)",
            "INSERT INTO e VALUES (1, 10), (2, 20)",
        ]
        query = "SELECT * FROM e WHERE a = 1"

        direct = create_dialect("postgresql")
        for statement in setup:
            direct.execute(statement)
        direct.analyze_tables()

        session = client.open_session("postgresql", tenant="proto-explain")
        for statement in setup:
            session.execute(statement)
        session.analyze_tables()

        remote = session.explain(query, format="json")
        local = direct.explain(query, format="json")
        assert remote.text == local.text
        assert remote.dbms == local.dbms
        assert remote.format == local.format
        session.close()

    def test_explain_analyze_reports_bound_violations_field(self, client):
        session = client.open_session("postgresql", tenant="proto-analyze")
        session.execute("CREATE TABLE ba (a INT)")
        session.execute("INSERT INTO ba VALUES (1), (2)")
        output = session.explain("SELECT * FROM ba", analyze=True)
        assert output.bound_violations == ()
        assert "actual" in output.text or output.text
        session.close()

    def test_prepared_statements(self, client):
        session = client.open_session("mysql", tenant="proto-prepared")
        session.execute("CREATE TABLE p (v INT)")
        session.execute("INSERT INTO p VALUES (5)")
        handle = session.prepare("SELECT v FROM p")
        assert session.execute_prepared(handle) == [{"v": 5}]
        session.execute("INSERT INTO p VALUES (6)")
        assert session.execute_prepared(handle) == [{"v": 5}, {"v": 6}]
        session.close()

    def test_prepare_rejects_bad_sql(self, client):
        session = client.open_session("postgresql", tenant="proto-badsql")
        with pytest.raises(ServiceError):
            session.prepare("SELEC nonsense FROM")
        session.close()

    def test_errors_carry_remote_type(self, client):
        session = client.open_session("postgresql", tenant="proto-errors")
        with pytest.raises(ServiceError) as excinfo:
            session.execute("SELECT * FROM does_not_exist")
        assert excinfo.value.remote_type
        assert "does_not_exist" in excinfo.value.remote_message
        session.close()

    def test_unknown_session_rejected(self, client):
        with pytest.raises(ServiceError):
            client.request("execute", session="nope", sql="SELECT 1")

    def test_unknown_op_rejected(self, client):
        with pytest.raises(ServiceError):
            client.request("frobnicate")

    def test_session_addressable_across_connections(self, service, client):
        session = client.open_session("postgresql", tenant="proto-cross")
        session.execute("CREATE TABLE cx (a INT)")
        session.execute("INSERT INTO cx VALUES (42)")
        with ServiceClient(service.address) as other:
            rows = other.request("execute", session=session.id, sql="SELECT a FROM cx")["rows"]
        assert rows == [{"a": 42}]
        session.close()

    def test_estimate_matches_local_planner(self, client):
        from repro.dialects import create_dialect
        from repro.sqlparser.parser import parse_one

        setup = [
            "CREATE TABLE est (a INT, b INT)",
            "INSERT INTO est VALUES (1, 1), (2, 2), (3, 3), (4, 4)",
        ]
        query = "SELECT * FROM est WHERE a > 2"

        direct = create_dialect("postgresql")
        for statement in setup:
            direct.execute(statement)
        direct.analyze_tables()
        local = max(direct.planner.plan_statement(parse_one(query)).estimated_rows, 1.0)

        session = client.open_session("postgresql", tenant="proto-estimate")
        for statement in setup:
            session.execute(statement)
        session.analyze_tables()
        assert session.estimate(query) == local
        session.close()


class TestTenantRegistry:
    def test_explicit_registries_are_independent(self):
        registry_a = TenantRegistry()
        registry_b = TenantRegistry()
        catalog_a = registry_a.catalog("acme")
        catalog_b = registry_b.catalog("acme")
        assert catalog_a is not catalog_b
        assert catalog_a.dialect("postgresql") is not catalog_b.dialect("postgresql")

    def test_sessions_of_one_tenant_share_a_dialect(self):
        registry = TenantRegistry()
        catalog = registry.catalog("acme")
        assert catalog.dialect("postgresql") is catalog.dialect("postgresql")
        assert registry.catalog("acme") is catalog

    def test_concurrent_dialect_creation_yields_one_instance(self):
        registry = TenantRegistry()
        catalog = registry.catalog("racing")
        seen = []
        barrier = threading.Barrier(8)

        def open_dialect():
            barrier.wait()
            seen.append(catalog.dialect("mysql"))

        threads = [threading.Thread(target=open_dialect) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len({id(dialect) for dialect in seen}) == 1
