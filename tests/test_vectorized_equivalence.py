"""The row-oracle equivalence harness for the vectorized executor.

The row executor is the correctness oracle: the vectorized executor must be
observationally identical — same result rows, same row order, same
``EXPLAIN ANALYZE`` runtime row counts, same unified-plan fingerprints, and
(at campaign level) byte-identical coverage sets and Table V reports.  This
module fuzzes that equivalence over the generator corpus, interleaving QPG-
style database mutations so both executors are exercised against evolving
schemas, data, and indexes.
"""

import pytest

from repro.catalog.schema import Column, DataType, TableSchema
from repro.converters import ConverterHub
from repro.core.compare import structural_fingerprint
from repro.dialects import create_dialect
from repro.dialects.prepared import reset_runtime
from repro.engine import Executor, VectorizedExecutor, create_executor
from repro.engine.expressions import (
    BatchContext,
    EvaluationContext,
    compile_expression_batch,
    compile_predicate_batch,
    evaluate,
    evaluate_predicate,
)
from repro.engine.vectorized import RowBatch, batches_from_rows, rows_from_batches
from repro.sqlparser.parser import parse_sql
from repro.storage.table import HeapTable
from repro.testing.campaign import TestingCampaign
from repro.testing.generator import GeneratorConfig, RandomQueryGenerator


def _run(dialect, statement):
    """Execute through the dialect, normalising failures for comparison."""
    try:
        return ("ok", dialect.execute(statement))
    except Exception as exc:
        return ("error", type(exc).__name__)


def _paired_dialects(seed):
    """Two PostgreSQL dialects over identical generated databases."""
    row_dialect = create_dialect("postgresql")
    row_dialect.set_executor("row")
    vec_dialect = create_dialect("postgresql")
    assert vec_dialect.executor_kind == "vectorized"
    generator = RandomQueryGenerator(seed=seed, config=GeneratorConfig(max_tables=2))
    for statement in generator.schema_statements():
        assert _run(row_dialect, statement) == _run(vec_dialect, statement)
    row_dialect.analyze_tables()
    vec_dialect.analyze_tables()
    return row_dialect, vec_dialect, generator


class TestGeneratorCorpusFuzz:
    """Every generated query through both executors, states kept in lockstep."""

    SEEDS = (1, 2, 3, 4, 5, 7)
    QUERIES_PER_SEED = 60
    MUTATE_EVERY = 15

    @pytest.mark.parametrize("seed", SEEDS)
    def test_results_and_plans_identical(self, seed):
        row_dialect, vec_dialect, generator = _paired_dialects(seed)
        hub = ConverterHub()
        compared = 0
        for position in range(self.QUERIES_PER_SEED):
            query = generator.select_query()
            row_result = _run(row_dialect, query)
            vec_result = _run(vec_dialect, query)
            # Identical rows in identical order — or the same rejection.
            assert row_result == vec_result, query
            if row_result[0] == "ok":
                compared += 1
                if position % 5 == 0:
                    self._compare_analyze(row_dialect, vec_dialect, query)
                    self._compare_fingerprints(row_dialect, vec_dialect, hub, query)
            if position and position % self.MUTATE_EVERY == 0:
                mutation = generator.mutation_statement()
                assert _run(row_dialect, mutation) == _run(vec_dialect, mutation)
                row_dialect.analyze_tables()
                vec_dialect.analyze_tables()
        # The corpus must actually exercise the engine, not only rejects.
        assert compared >= self.QUERIES_PER_SEED // 3

    def _compare_analyze(self, row_dialect, vec_dialect, query):
        """EXPLAIN ANALYZE runtime row counts must match node for node."""
        statement = parse_sql(query)[0]
        row_plan = row_dialect.planner.plan_statement(statement)
        vec_plan = vec_dialect.planner.plan_statement(statement)
        row_rows = row_dialect.executor.execute(reset_runtime(row_plan), analyze=True)
        vec_rows = vec_dialect.executor.execute(reset_runtime(vec_plan), analyze=True)
        assert row_rows == vec_rows, query
        row_nodes = list(row_plan.walk())
        vec_nodes = list(vec_plan.walk())
        assert len(row_nodes) == len(vec_nodes), query
        for row_node, vec_node in zip(row_nodes, vec_nodes):
            assert row_node.kind is vec_node.kind
            assert row_node.runtime.executed == vec_node.runtime.executed, query
            assert row_node.runtime.actual_rows == vec_node.runtime.actual_rows, (
                query,
                row_node.kind,
            )
            assert row_node.runtime.loops == vec_node.runtime.loops, (
                query,
                row_node.kind,
            )

    def _compare_fingerprints(self, row_dialect, vec_dialect, hub, query):
        """Serialized plans — and their unified fingerprints — must agree."""
        row_output = row_dialect.explain(query, format="json")
        vec_output = vec_dialect.explain(query, format="json")
        assert row_output.text == vec_output.text, query
        row_plan = hub.convert("postgresql", row_output.text, "json", use_cache=False)
        vec_plan = hub.convert("postgresql", vec_output.text, "json", use_cache=False)
        assert row_plan.fingerprint() == vec_plan.fingerprint()
        assert structural_fingerprint(row_plan) == structural_fingerprint(vec_plan)


class TestCampaignEquivalence:
    """Row-path and cache-off campaigns stay byte-identical to the default."""

    CONFIG = dict(
        dbms_names=["postgresql", "mysql"],
        queries_per_dbms=25,
        cert_pairs_per_dbms=8,
        seed=3,
    )

    @pytest.fixture(scope="class")
    def baseline(self):
        return TestingCampaign(**self.CONFIG).run()

    @pytest.mark.parametrize(
        "options",
        [
            {"executor": "row"},
            {"executor": "row", "prepared_cache": False},
            {"prepared_cache": False},
        ],
        ids=["row", "row-cache-off", "vectorized-cache-off"],
    )
    def test_coverage_and_reports_identical(self, baseline, options):
        result = TestingCampaign(**self.CONFIG, **options).run()
        assert result.plan_fingerprints == baseline.plan_fingerprints
        assert result.unique_plans == baseline.unique_plans
        assert result.table5_rows() == baseline.table5_rows()
        assert result.queries_generated == baseline.queries_generated
        assert result.cert_pairs_checked == baseline.cert_pairs_checked


class TestBatchExpressionSemantics:
    """Batch-compiled expressions mirror ``evaluate`` element for element."""

    ROWS = [
        {"t.a": 1, "t.b": 10, "t.c": None},
        {"t.a": 2, "t.b": None, "t.c": 5},
        {"t.a": None, "t.b": 3, "t.c": 0},
        {"t.a": -4, "t.b": 0, "t.c": 7},
    ]

    EXPRESSIONS = [
        "t.a = 2",
        "t.a <> t.b",
        "t.a < t.b",
        "t.b >= 3",
        "t.a + t.c",
        "t.a * 2 - t.b",
        "t.b / t.c",
        "t.a % 2",
        "-t.a",
        "NOT t.a = 1",
        "t.a IS NULL",
        "t.b IS NOT NULL",
        "t.a BETWEEN 0 AND 2",
        "t.a NOT BETWEEN t.b AND t.c",
        "t.a IN (1, 2, NULL)",
        "t.a NOT IN (2, 3)",
        "t.a = 1 AND t.b = 10",
        "t.a = 1 OR t.c IS NULL",
        "ABS(t.a)",
        "COALESCE(t.b, t.c, 99)",
        "GREATEST(t.a, t.b, t.c)",
        "CASE WHEN t.a > 0 THEN 1 ELSE 0 END",
        "CAST(t.a AS TEXT)",
    ]

    def _parse_expression(self, text):
        statement = parse_sql(f"SELECT 1 FROM t WHERE {text}")[0]
        return statement.cores()[0].where

    def _batch(self):
        keys = list(self.ROWS[0])
        columns = {key: [row[key] for row in self.ROWS] for key in keys}
        return BatchContext(columns, len(self.ROWS))

    @pytest.mark.parametrize("text", EXPRESSIONS)
    def test_expression_matches_evaluate(self, text):
        expression = self._parse_expression(text)
        batch_values = compile_expression_batch(expression)(self._batch())
        row_values = [
            evaluate(expression, EvaluationContext(row)) for row in self.ROWS
        ]
        assert batch_values == row_values

    @pytest.mark.parametrize("text", EXPRESSIONS)
    def test_selection_vector_matches_predicate(self, text):
        expression = self._parse_expression(text)
        selection = compile_predicate_batch(expression)(self._batch())
        expected = [
            position
            for position, row in enumerate(self.ROWS)
            if evaluate_predicate(expression, EvaluationContext(row))
        ]
        assert selection == expected

    def test_empty_predicate_selects_everything(self):
        assert compile_predicate_batch(None)(self._batch()) == [0, 1, 2, 3]


class TestRowBatchRoundTrip:
    def test_uniform_rows_round_trip(self):
        rows = [{"a": 1, "b": 2}, {"a": 3, "b": 4}, {"a": None, "b": 6}]
        batches = batches_from_rows(rows, batch_size=2)
        assert [batch.length for batch in batches] == [2, 1]
        assert rows_from_batches(batches) == rows

    def test_heterogeneous_rows_split_into_uniform_batches(self):
        rows = [{"a": 1}, {"a": 2}, {"b": 3}, {"a": 4, "b": 5}, {"a": 6, "b": 7}]
        batches = batches_from_rows(rows)
        assert [batch.schema() for batch in batches] == [
            ("a",),
            ("b",),
            ("a", "b"),
        ]
        assert rows_from_batches(batches) == rows

    def test_to_rows_returns_fresh_dicts(self):
        batch = RowBatch({"a": [1, 2]}, 2)
        first = batch.to_rows()
        first[0]["a"] = 99
        assert batch.to_rows()[0]["a"] == 1


class TestColumnarSnapshots:
    def _table(self):
        return HeapTable(
            TableSchema(
                name="t",
                columns=[
                    Column(name="a", data_type=DataType.INTEGER),
                    Column(name="b", data_type=DataType.INTEGER, default=7),
                ],
            )
        )

    def test_snapshot_matches_rows_and_is_cached(self):
        table = self._table()
        table.insert_many([{"a": 1, "b": 2}, {"a": 3}])
        snapshot = table.column_batch(version=5)
        assert snapshot.columns == {"a": [1, 3], "b": [2, 7]}
        assert snapshot.row_ids == [1, 2]
        assert table.column_batch(version=5) is snapshot

    def test_version_bump_invalidates(self):
        table = self._table()
        table.insert({"a": 1})
        old = table.column_batch(version=1)
        assert table.column_batch(version=2) is not old

    def test_direct_mutation_invalidates_even_without_bump(self):
        table = self._table()
        row_id = table.insert({"a": 1})
        table.column_batch(version=1)
        table.update(row_id, {"a": 10})
        assert table.column_batch(version=1).columns["a"] == [10]
        table.delete(row_id)
        assert table.column_batch(version=1).length == 0

    def test_insert_many_assigns_sequential_ids_and_validates_upfront(self):
        table = self._table()
        assert table.insert_many([{"a": 1}, {"a": 2}]) == [1, 2]
        with pytest.raises(Exception):
            table.insert_many([{"a": 3}, {"nope": 4}])
        # The batch path validates before touching the heap.
        assert table.row_count == 2


class TestEdgeCaseParity:
    """Hand-picked divergence candidates the generator corpus cannot reach."""

    def _pair(self):
        row_dialect = create_dialect("postgresql")
        row_dialect.set_executor("row")
        vec_dialect = create_dialect("postgresql")
        for statement in (
            "CREATE TABLE t (a INT, b INT)",
            "INSERT INTO t (a, b) VALUES (1, 10), (2, 20), (3, 30), (4, NULL)",
        ):
            row_dialect.execute(statement)
            vec_dialect.execute(statement)
        return row_dialect, vec_dialect

    @pytest.mark.parametrize(
        "query",
        [
            # Negative limits mean "no limit" (SQLite semantics, a PR-5
            # fix); both executors must agree.
            "SELECT a FROM t ORDER BY a LIMIT -1",
            "SELECT a FROM t ORDER BY a LIMIT -10",
            "SELECT a FROM t ORDER BY a DESC LIMIT 0",
            "SELECT a FROM t LIMIT 2 OFFSET 3",
            "SELECT b, a FROM t ORDER BY b DESC",
            "SELECT a FROM t WHERE b IS NULL OR b > 15",
        ],
    )
    def test_query_parity(self, query):
        row_dialect, vec_dialect = self._pair()
        assert _run(row_dialect, query) == _run(vec_dialect, query)


class TestExecutorFactory:
    def test_create_executor_by_name(self):
        dialect = create_dialect("postgresql")
        assert isinstance(create_executor("row", dialect.database), Executor)
        assert isinstance(
            create_executor("vectorized", dialect.database), VectorizedExecutor
        )
        with pytest.raises(ValueError):
            create_executor("columnar-ish", dialect.database)

    def test_set_executor_switches_and_is_idempotent(self):
        dialect = create_dialect("postgresql")
        vectorized = dialect.executor
        dialect.set_executor("vectorized")
        assert dialect.executor is vectorized
        dialect.set_executor("row")
        assert type(dialect.executor) is Executor
        assert dialect.executor_kind == "row"
