"""The row-oracle equivalence harness for the vectorized executor.

The row executor is the correctness oracle: the vectorized executor must be
observationally identical — same result rows, same row order, same
``EXPLAIN ANALYZE`` runtime row counts, same unified-plan fingerprints, and
(at campaign level) byte-identical coverage sets and Table V reports.  This
module fuzzes that equivalence over the generator corpus, interleaving QPG-
style database mutations so the executors are exercised against evolving
schemas, data, and indexes.

Since PR 6 the vectorized executor has two column representations — plain
lists and NumPy-backed :class:`~repro.engine.arrays.ArrayColumn` — so the
fuzz matrix is (row, list-vectorized, numpy-vectorized) × (prepared cache
on, off); the numpy axis drops out when numpy is not importable.
"""

import pytest

from repro.catalog.schema import Column, DataType, TableSchema
from repro.converters import ConverterHub
from repro.core.compare import structural_fingerprint
from repro.dialects import create_dialect
from repro.dialects.prepared import reset_runtime
from repro.engine import Executor, VectorizedExecutor, arrays, create_executor
from repro.engine.expressions import (
    BatchContext,
    EvaluationContext,
    compile_expression_batch,
    compile_predicate_batch,
    evaluate,
    evaluate_predicate,
)
from repro.engine.vectorized import RowBatch, batches_from_rows, rows_from_batches
from repro.sqlparser.parser import parse_sql
from repro.storage.table import HeapTable
from repro.testing.campaign import TestingCampaign
from repro.testing.generator import GeneratorConfig, RandomQueryGenerator


def _run(dialect, statement):
    """Execute through the dialect, normalising failures for comparison."""
    try:
        return ("ok", dialect.execute(statement))
    except Exception as exc:
        return ("error", type(exc).__name__)


@pytest.fixture(autouse=True)
def _restore_kernel_state():
    """Tests toggle the numpy kernels; always restore the ambient state."""
    saved = arrays.numpy_enabled()
    yield
    arrays.set_numpy_enabled(saved)


def _kernel_modes():
    """The vectorized column representations available in this job."""
    modes = [("list", False)]
    if arrays.numpy_available():
        modes.append(("numpy", True))
    return modes


def _fuzz_dialects(seed, prepared_cache=True):
    """A row-oracle dialect plus one vectorized dialect per kernel mode,
    all over identical generated databases."""

    def build(kind):
        dialect = create_dialect("postgresql")
        dialect.set_executor(kind)
        if not prepared_cache:
            dialect.prepared.enabled = False
        return dialect

    row_dialect = build("row")
    vec_dialects = [
        (label, build("vectorized"), use_numpy)
        for label, use_numpy in _kernel_modes()
    ]
    generator = RandomQueryGenerator(seed=seed, config=GeneratorConfig(max_tables=2))
    for statement in generator.schema_statements():
        expected = _run(row_dialect, statement)
        for label, dialect, use_numpy in vec_dialects:
            arrays.set_numpy_enabled(use_numpy)
            assert _run(dialect, statement) == expected, (label, statement)
    row_dialect.analyze_tables()
    for _, dialect, _ in vec_dialects:
        dialect.analyze_tables()
    return row_dialect, vec_dialects, generator


class TestGeneratorCorpusFuzz:
    """Every generated query through every engine, states kept in lockstep."""

    SEEDS = (1, 2, 3, 4, 5, 7)
    QUERIES_PER_SEED = 60
    MUTATE_EVERY = 15

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize(
        "prepared_cache", (True, False), ids=["cache-on", "cache-off"]
    )
    def test_results_and_plans_identical(self, seed, prepared_cache):
        row_dialect, vec_dialects, generator = _fuzz_dialects(seed, prepared_cache)
        hub = ConverterHub()
        compared = 0
        for position in range(self.QUERIES_PER_SEED):
            query = generator.select_query()
            row_result = _run(row_dialect, query)
            for label, vec_dialect, use_numpy in vec_dialects:
                arrays.set_numpy_enabled(use_numpy)
                # Identical rows in identical order — or the same rejection.
                assert _run(vec_dialect, query) == row_result, (label, query)
                if row_result[0] == "ok" and position % 5 == 0:
                    self._compare_analyze(row_dialect, vec_dialect, query)
                    self._compare_fingerprints(row_dialect, vec_dialect, hub, query)
            if row_result[0] == "ok":
                compared += 1
            if position and position % self.MUTATE_EVERY == 0:
                mutation = generator.mutation_statement()
                expected = _run(row_dialect, mutation)
                row_dialect.analyze_tables()
                for label, vec_dialect, use_numpy in vec_dialects:
                    arrays.set_numpy_enabled(use_numpy)
                    assert _run(vec_dialect, mutation) == expected, (label, mutation)
                    vec_dialect.analyze_tables()
        # The corpus must actually exercise the engine, not only rejects.
        assert compared >= self.QUERIES_PER_SEED // 3

    def _compare_analyze(self, row_dialect, vec_dialect, query):
        """EXPLAIN ANALYZE runtime row counts must match node for node."""
        statement = parse_sql(query)[0]
        row_plan = row_dialect.planner.plan_statement(statement)
        vec_plan = vec_dialect.planner.plan_statement(statement)
        row_rows = row_dialect.executor.execute(reset_runtime(row_plan), analyze=True)
        vec_rows = vec_dialect.executor.execute(reset_runtime(vec_plan), analyze=True)
        assert row_rows == vec_rows, query
        row_nodes = list(row_plan.walk())
        vec_nodes = list(vec_plan.walk())
        assert len(row_nodes) == len(vec_nodes), query
        for row_node, vec_node in zip(row_nodes, vec_nodes):
            assert row_node.kind is vec_node.kind
            assert row_node.runtime.executed == vec_node.runtime.executed, query
            assert row_node.runtime.actual_rows == vec_node.runtime.actual_rows, (
                query,
                row_node.kind,
            )
            assert row_node.runtime.loops == vec_node.runtime.loops, (
                query,
                row_node.kind,
            )

    def _compare_fingerprints(self, row_dialect, vec_dialect, hub, query):
        """Serialized plans — and their unified fingerprints — must agree."""
        row_output = row_dialect.explain(query, format="json")
        vec_output = vec_dialect.explain(query, format="json")
        assert row_output.text == vec_output.text, query
        row_plan = hub.convert("postgresql", row_output.text, "json", use_cache=False)
        vec_plan = hub.convert("postgresql", vec_output.text, "json", use_cache=False)
        assert row_plan.fingerprint() == vec_plan.fingerprint()
        assert structural_fingerprint(row_plan) == structural_fingerprint(vec_plan)


class TestCampaignEquivalence:
    """Row-path and cache-off campaigns stay byte-identical to the default."""

    CONFIG = dict(
        dbms_names=["postgresql", "mysql"],
        queries_per_dbms=25,
        cert_pairs_per_dbms=8,
        seed=3,
    )

    @pytest.fixture(scope="class")
    def baseline(self):
        return TestingCampaign(**self.CONFIG).run()

    @pytest.mark.parametrize(
        "options",
        [
            {"executor": "row"},
            {"executor": "row", "prepared_cache": False},
            {"prepared_cache": False},
        ],
        ids=["row", "row-cache-off", "vectorized-cache-off"],
    )
    def test_coverage_and_reports_identical(self, baseline, options):
        result = TestingCampaign(**self.CONFIG, **options).run()
        assert result.plan_fingerprints == baseline.plan_fingerprints
        assert result.unique_plans == baseline.unique_plans
        assert result.table5_rows() == baseline.table5_rows()
        assert result.queries_generated == baseline.queries_generated
        assert result.cert_pairs_checked == baseline.cert_pairs_checked


class TestBatchExpressionSemantics:
    """Batch-compiled expressions mirror ``evaluate`` element for element."""

    ROWS = [
        {"t.a": 1, "t.b": 10, "t.c": None},
        {"t.a": 2, "t.b": None, "t.c": 5},
        {"t.a": None, "t.b": 3, "t.c": 0},
        {"t.a": -4, "t.b": 0, "t.c": 7},
    ]

    EXPRESSIONS = [
        "t.a = 2",
        "t.a <> t.b",
        "t.a < t.b",
        "t.b >= 3",
        "t.a + t.c",
        "t.a * 2 - t.b",
        "t.b / t.c",
        "t.a % 2",
        "-t.a",
        "NOT t.a = 1",
        "t.a IS NULL",
        "t.b IS NOT NULL",
        "t.a BETWEEN 0 AND 2",
        "t.a NOT BETWEEN t.b AND t.c",
        "t.a IN (1, 2, NULL)",
        "t.a NOT IN (2, 3)",
        "t.a = 1 AND t.b = 10",
        "t.a = 1 OR t.c IS NULL",
        "ABS(t.a)",
        "COALESCE(t.b, t.c, 99)",
        "GREATEST(t.a, t.b, t.c)",
        "CASE WHEN t.a > 0 THEN 1 ELSE 0 END",
        "CAST(t.a AS TEXT)",
    ]

    def _parse_expression(self, text):
        statement = parse_sql(f"SELECT 1 FROM t WHERE {text}")[0]
        return statement.cores()[0].where

    def _batch(self):
        keys = list(self.ROWS[0])
        columns = {key: [row[key] for row in self.ROWS] for key in keys}
        return BatchContext(columns, len(self.ROWS))

    @pytest.mark.parametrize("text", EXPRESSIONS)
    def test_expression_matches_evaluate(self, text):
        expression = self._parse_expression(text)
        batch_values = compile_expression_batch(expression)(self._batch())
        row_values = [
            evaluate(expression, EvaluationContext(row)) for row in self.ROWS
        ]
        assert batch_values == row_values

    @pytest.mark.parametrize("text", EXPRESSIONS)
    def test_selection_vector_matches_predicate(self, text):
        expression = self._parse_expression(text)
        selection = compile_predicate_batch(expression)(self._batch())
        expected = [
            position
            for position, row in enumerate(self.ROWS)
            if evaluate_predicate(expression, EvaluationContext(row))
        ]
        assert selection == expected

    def test_empty_predicate_selects_everything(self):
        assert compile_predicate_batch(None)(self._batch()) == [0, 1, 2, 3]


class TestRowBatchRoundTrip:
    def test_uniform_rows_round_trip(self):
        rows = [{"a": 1, "b": 2}, {"a": 3, "b": 4}, {"a": None, "b": 6}]
        batches = batches_from_rows(rows, batch_size=2)
        assert [batch.length for batch in batches] == [2, 1]
        assert rows_from_batches(batches) == rows

    def test_heterogeneous_rows_split_into_uniform_batches(self):
        rows = [{"a": 1}, {"a": 2}, {"b": 3}, {"a": 4, "b": 5}, {"a": 6, "b": 7}]
        batches = batches_from_rows(rows)
        assert [batch.schema() for batch in batches] == [
            ("a",),
            ("b",),
            ("a", "b"),
        ]
        assert rows_from_batches(batches) == rows

    def test_to_rows_returns_fresh_dicts(self):
        batch = RowBatch({"a": [1, 2]}, 2)
        first = batch.to_rows()
        first[0]["a"] = 99
        assert batch.to_rows()[0]["a"] == 1


class TestColumnarSnapshots:
    def _table(self):
        return HeapTable(
            TableSchema(
                name="t",
                columns=[
                    Column(name="a", data_type=DataType.INTEGER),
                    Column(name="b", data_type=DataType.INTEGER, default=7),
                ],
            )
        )

    def test_snapshot_matches_rows_and_is_cached(self):
        table = self._table()
        table.insert_many([{"a": 1, "b": 2}, {"a": 3}])
        snapshot = table.column_batch(version=5)
        assert snapshot.columns == {"a": [1, 3], "b": [2, 7]}
        assert snapshot.row_ids == [1, 2]
        assert table.column_batch(version=5) is snapshot

    def test_version_bump_invalidates(self):
        table = self._table()
        table.insert({"a": 1})
        old = table.column_batch(version=1)
        assert table.column_batch(version=2) is not old

    def test_direct_mutation_invalidates_even_without_bump(self):
        table = self._table()
        row_id = table.insert({"a": 1})
        table.column_batch(version=1)
        table.update(row_id, {"a": 10})
        assert table.column_batch(version=1).columns["a"] == [10]
        table.delete(row_id)
        assert table.column_batch(version=1).length == 0

    def test_insert_many_assigns_sequential_ids_and_validates_upfront(self):
        table = self._table()
        assert table.insert_many([{"a": 1}, {"a": 2}]) == [1, 2]
        with pytest.raises(Exception):
            table.insert_many([{"a": 3}, {"nope": 4}])
        # The batch path validates before touching the heap.
        assert table.row_count == 2


class TestEdgeCaseParity:
    """Hand-picked divergence candidates the generator corpus cannot reach."""

    def _pair(self):
        row_dialect = create_dialect("postgresql")
        row_dialect.set_executor("row")
        vec_dialect = create_dialect("postgresql")
        for statement in (
            "CREATE TABLE t (a INT, b INT)",
            "INSERT INTO t (a, b) VALUES (1, 10), (2, 20), (3, 30), (4, NULL)",
        ):
            row_dialect.execute(statement)
            vec_dialect.execute(statement)
        return row_dialect, vec_dialect

    @pytest.mark.parametrize(
        "query",
        [
            # Negative limits mean "no limit" (SQLite semantics, a PR-5
            # fix); both executors must agree.
            "SELECT a FROM t ORDER BY a LIMIT -1",
            "SELECT a FROM t ORDER BY a LIMIT -10",
            "SELECT a FROM t ORDER BY a DESC LIMIT 0",
            "SELECT a FROM t LIMIT 2 OFFSET 3",
            "SELECT b, a FROM t ORDER BY b DESC",
            "SELECT a FROM t WHERE b IS NULL OR b > 15",
        ],
    )
    def test_query_parity(self, query):
        row_dialect, vec_dialect = self._pair()
        assert _run(row_dialect, query) == _run(vec_dialect, query)


class TestArrayPathParity:
    """Numeric-trap parity on tables large enough for the array fast path.

    Tables here exceed both ``ROW_PATH_THRESHOLD`` (statement routing) and
    ``ARRAY_MIN_ROWS`` (snapshot upgrade), so with numpy enabled these
    queries genuinely run on :class:`ArrayColumn` kernels — the traps the
    ISSUE calls out (NULL comparisons, NaN values, mixed-type columns,
    integers beyond 2**53) must be decided by the fallback rule, never by
    silent numpy coercion.
    """

    ROWS = 3 * arrays.ARRAY_MIN_ROWS

    def _engines(self, fill):
        """A row dialect and per-kernel-mode vectorized dialects, loaded
        with *fill(i)* rows via the storage API (bypassing literal parsing
        so NaN / huge ints / mixed types reach the columns verbatim)."""
        dialects = []
        for kind in ["row"] + ["vectorized"] * len(_kernel_modes()):
            dialect = create_dialect("postgresql")
            dialect.set_executor(kind)
            dialect.execute("CREATE TABLE t (a INT, b INT, c REAL)")
            dialect.database.insert_rows(
                "t", [fill(i) for i in range(self.ROWS)]
            )
            dialect.analyze_tables()
            dialects.append(dialect)
        row_dialect = dialects[0]
        modes = [
            (label, dialect, use_numpy)
            for (label, use_numpy), dialect in zip(_kernel_modes(), dialects[1:])
        ]
        return row_dialect, modes

    @staticmethod
    def _normalise(outcome):
        """Make NaN comparable: ``nan != nan`` would fail dict equality even
        when both engines produced it in the same cell."""
        status, payload = outcome
        if status != "ok":
            return outcome
        return (
            status,
            [
                {
                    key: "NaN"
                    if isinstance(value, float) and value != value
                    else value
                    for key, value in row.items()
                }
                for row in payload
            ],
        )

    def _assert_parity(self, fill, queries):
        row_dialect, modes = self._engines(fill)
        for query in queries:
            expected = self._normalise(_run(row_dialect, query))
            for label, dialect, use_numpy in modes:
                arrays.set_numpy_enabled(use_numpy)
                assert self._normalise(_run(dialect, query)) == expected, (
                    label,
                    query,
                )

    def test_null_in_comparisons(self):
        def fill(i):
            return {
                "a": None if i % 5 == 0 else i,
                "b": None if i % 7 == 0 else (i * 3) % 40,
                "c": None if i % 3 == 0 else i / 4.0,
            }

        self._assert_parity(
            fill,
            [
                "SELECT a FROM t WHERE a > 10 AND b < 30",
                "SELECT a, b FROM t WHERE a = b OR c IS NULL",
                "SELECT a FROM t WHERE NOT (a BETWEEN 5 AND 100)",
                "SELECT COUNT(*), COUNT(a), SUM(b), AVG(a), MIN(c), MAX(c) FROM t",
                "SELECT b, COUNT(a) FROM t GROUP BY b ORDER BY b",
                "SELECT a, c FROM t ORDER BY c DESC, a LIMIT 20",
                "SELECT a + b, a * 2, b % 7, a / c FROM t",
            ],
        )

    def test_nan_values_stay_values(self):
        def fill(i):
            return {"a": i, "b": i % 9, "c": float("nan") if i % 11 == 0 else i / 2.0}

        self._assert_parity(
            fill,
            [
                # NaN compares False to everything — rows with NaN vanish.
                "SELECT a FROM t WHERE c > 10",
                "SELECT a FROM t WHERE c = c",
                # NaN is truthy (Python bool(nan) is True), not NULL.
                "SELECT COUNT(c) FROM t",
                "SELECT a FROM t WHERE c IS NOT NULL AND a < 10",
                # Sorts and MIN/MAX bail to the oracle path on NaN.
                "SELECT a FROM t ORDER BY c, a LIMIT 15",
                "SELECT b, MIN(c), MAX(c) FROM t GROUP BY b ORDER BY b",
            ],
        )

    def test_mixed_type_columns_stay_on_oracle_path(self):
        def fill(i):
            return {
                "a": ("x%d" % i) if i % 4 == 0 else i,  # int/str mix
                "b": i + 0.5 if i % 2 else i,  # int/float mix
                "c": i / 8.0,
            }

        self._assert_parity(
            fill,
            [
                "SELECT a FROM t WHERE b > 20",
                "SELECT a, b FROM t WHERE a = 8 OR a = 'x4'",
                "SELECT b FROM t ORDER BY a LIMIT 10",
                "SELECT COUNT(a), MIN(b), MAX(b) FROM t",
            ],
        )

    def test_integers_beyond_2_53_stay_exact(self):
        huge = 2 ** 53
        def fill(i):
            return {"a": huge + i, "b": i, "c": None}

        self._assert_parity(
            fill,
            [
                # 2**53 + 1 and 2**53 + 2 round to the same float64; exact
                # equality classes must survive.
                "SELECT COUNT(DISTINCT a) FROM t",
                "SELECT b FROM t WHERE a = 9007199254740993",
                "SELECT a FROM t ORDER BY a DESC LIMIT 5",
                "SELECT MIN(a), MAX(a) FROM t",
                # Arithmetic that crosses the cap re-materializes exactly.
                "SELECT a + b FROM t WHERE b < 10",
                "SELECT a - 9007199254740992 FROM t ORDER BY b LIMIT 8",
            ],
        )

    def test_arithmetic_overflow_rematerializes_exactly(self):
        big = 2 ** 52
        def fill(i):
            return {"a": big + i, "b": 2 + (i % 3), "c": None}

        self._assert_parity(
            fill,
            [
                "SELECT a + a FROM t ORDER BY b LIMIT 10",
                "SELECT SUM(a) FROM t",
                "SELECT b, SUM(a) FROM t GROUP BY b ORDER BY b",
            ],
        )


class TestExecutorFactory:
    def test_create_executor_by_name(self):
        dialect = create_dialect("postgresql")
        assert isinstance(create_executor("row", dialect.database), Executor)
        assert isinstance(
            create_executor("vectorized", dialect.database), VectorizedExecutor
        )
        with pytest.raises(ValueError):
            create_executor("columnar-ish", dialect.database)

    def test_set_executor_switches_and_is_idempotent(self):
        dialect = create_dialect("postgresql")
        vectorized = dialect.executor
        dialect.set_executor("vectorized")
        assert dialect.executor is vectorized
        dialect.set_executor("row")
        assert type(dialect.executor) is Executor
        assert dialect.executor_kind == "row"
