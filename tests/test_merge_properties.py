"""Algebraic property tests for :meth:`CoverageStore.merge`.

The sharded campaign's whole correctness argument rests on the merge being
an **exact set union**: then the parent can fold shard stores together in
any order, re-merge after a crash, and merge across different shard
layouts, always landing on the same coverage set.  The pairwise tests in
tests/test_coverage_store.py pin individual behaviours; these fuzz the
algebra itself with hypothesis-generated fingerprint sets:

* commutativity — ``A ∪ B == B ∪ A``
* associativity — ``(A ∪ B) ∪ C == A ∪ (B ∪ C)``
* idempotence — ``A ∪ A == A`` (and re-merging adds zero)
* shard-layout independence — all of the above across mismatched
  ``shard_count`` values, including payload-based merges

Metadata is only field-wise union (existing fields win), so value-level
outcomes are order-dependent by design; the properties assert the
order-independent parts: fingerprint sets, source mappings, marks, and
metadata *key* sets.
"""

from hypothesis import given, settings, strategies as st

from repro.pipeline.coverage import CoverageStore

#: Hex-ish fingerprints: realistic shard routing (leading hex digits) plus
#: the occasional non-hex key exercising the hash fallback.
_FINGERPRINTS = st.one_of(
    st.text(alphabet="0123456789abcdef", min_size=4, max_size=40),
    st.text(alphabet="ghxyz-", min_size=1, max_size=12),
)

_META = st.one_of(
    st.none(),
    st.fixed_dictionaries(
        {},
        optional={
            "s": st.text(alphabet="0123456789abcdef", min_size=4, max_size=12),
            "d": st.sampled_from(["mysql", "postgresql", "tidb"]),
        },
    ),
)

_ENTRIES = st.dictionaries(_FINGERPRINTS, _META, max_size=25)

_MARKS = st.lists(
    st.text(alphabet="abcdefgh:0123456789", min_size=1, max_size=20),
    max_size=5,
    unique=True,
)

_SHARDS = st.sampled_from([1, 2, 3, 5, 16])


def _build(entries, marks, shard_count):
    store = CoverageStore(shard_count=shard_count)
    for fingerprint, meta in entries.items():
        store.add(fingerprint, meta)
        store.map_source("src-" + fingerprint, fingerprint)
    for label in marks:
        store.mark(label)
    return store


def _observable(store):
    """The order-independent observable state of a store."""
    return (
        frozenset(store.fingerprints()),
        frozenset(
            (digest, store.lookup_source(digest))
            for fingerprint in store.fingerprints()
            for digest in ["src-" + fingerprint]
            if store.lookup_source(digest) is not None
        ),
        frozenset(store.marks()),
        frozenset(
            (fingerprint, frozenset(store.get(fingerprint) or ()))
            for fingerprint in store.fingerprints()
        ),
    )


@settings(max_examples=40, deadline=None)
@given(a=_ENTRIES, b=_ENTRIES, marks_a=_MARKS, marks_b=_MARKS, sa=_SHARDS, sb=_SHARDS, st_=_SHARDS)
def test_merge_commutes(a, b, marks_a, marks_b, sa, sb, st_):
    left = _build(a, marks_a, st_)
    left.merge(_build(b, marks_b, sb))
    right = _build(b, marks_b, st_)
    right.merge(_build(a, marks_a, sa))
    assert _observable(left) == _observable(right)


@settings(max_examples=40, deadline=None)
@given(a=_ENTRIES, b=_ENTRIES, c=_ENTRIES, sa=_SHARDS, sb=_SHARDS, sc=_SHARDS)
def test_merge_associates(a, b, c, sa, sb, sc):
    # (A ∪ B) ∪ C
    left = _build(a, [], sa)
    left.merge(_build(b, [], sb))
    left.merge(_build(c, [], sc))
    # A ∪ (B ∪ C)
    inner = _build(b, [], sb)
    inner.merge(_build(c, [], sc))
    right = _build(a, [], sa)
    right.merge(inner)
    assert _observable(left) == _observable(right)


@settings(max_examples=40, deadline=None)
@given(entries=_ENTRIES, marks=_MARKS, sa=_SHARDS, sb=_SHARDS)
def test_merge_idempotent(entries, marks, sa, sb):
    store = _build(entries, marks, sa)
    before = _observable(store)
    twin = _build(entries, marks, sb)
    first = store.merge(twin)
    assert first == 0  # nothing in the twin is new
    assert _observable(store) == before
    # Self-merge via payload is equally a no-op.
    assert store.merge_payload(store.to_payload()) == 0
    assert _observable(store) == before


@settings(max_examples=40, deadline=None)
@given(a=_ENTRIES, b=_ENTRIES, sa=_SHARDS, sb=_SHARDS, st_=_SHARDS)
def test_merge_counts_exact_union(a, b, sa, sb, st_):
    # The return value is |B \ A| — the sharded campaign's "newly covered"
    # accounting — independent of every store's shard layout.
    target = _build(a, [], st_)
    added = target.merge(_build(b, [], sb))
    assert added == len(set(b) - set(a))
    assert set(target.fingerprints()) == set(a) | set(b)


@settings(max_examples=40, deadline=None)
@given(a=_ENTRIES, b=_ENTRIES, marks=_MARKS, sa=_SHARDS, sb=_SHARDS, st_=_SHARDS)
def test_payload_merge_equals_store_merge(a, b, marks, sa, sb, st_):
    # merge(store) and merge_payload(store.to_payload()) are the same
    # union — the payload is the picklable cross-process form of a store.
    via_store = _build(a, marks, st_)
    other = _build(b, marks, sb)
    count_store = via_store.merge(other)
    via_payload = _build(a, marks, st_)
    count_payload = via_payload.merge_payload(other.to_payload())
    assert count_store == count_payload
    assert _observable(via_store) == _observable(via_payload)


@settings(max_examples=25, deadline=None)
@given(
    parts=st.lists(_ENTRIES, min_size=1, max_size=5),
    shards=st.lists(_SHARDS, min_size=5, max_size=5),
    st_=_SHARDS,
)
def test_any_merge_order_reaches_the_same_union(parts, shards, st_):
    # The sharded parent may receive shard payloads in any completion
    # order; every order must land on the same merged store.
    import itertools

    expected = None
    orders = list(itertools.permutations(range(len(parts))))[:6]
    for order in orders:
        target = CoverageStore(shard_count=st_)
        for position in order:
            target.merge_payload(
                _build(parts[position], [], shards[position]).to_payload()
            )
        state = _observable(target)
        if expected is None:
            expected = state
        else:
            assert state == expected
