"""Parallel runs must be byte-identical to serial runs.

Two layers of parallelism, one determinism contract:

* **Campaign level** — :class:`repro.parallel.ShardedCampaign` partitions
  the round index space across worker processes and merges shard stores +
  Table V reports.  The merged coverage set, ``unique_plans``, Table V
  rows, and query/pair counters must equal the serial
  :class:`~repro.testing.campaign.TestingCampaign`'s exactly — across
  shard counts, prepared-cache settings, numpy on/off, pool vs in-process
  fallback, and under worker crash + resume.
* **Operator level** — ``executor="parallel"``
  (:class:`~repro.engine.morsel.ParallelExecutor`) fans morsels across
  exchange workers; the serial vectorized engine is its oracle (see also
  tests/test_morsel_exchange.py for the exchange machinery itself).

The full (shards × cache × numpy) matrix and the kill-a-worker case are
marked ``slow`` — run them with ``--runslow`` — so tier-1 stays fast; the
unmarked tests still cover every mechanism once.
"""

import json
import multiprocessing
import os
import time

import pytest

from repro.engine import arrays
from repro.parallel import ShardedCampaign, shard_round_indexes
from repro.parallel.campaign import _run_shard
from repro.pipeline.coverage import CoverageStore
from repro.testing.campaign import TestingCampaign

#: Small but non-trivial: 4 DBMS rounds so a 4-shard split is total, with
#: enough queries that every round contributes coverage and bug reports.
CONFIG = dict(
    dbms_names=["postgresql", "mysql", "tidb", "sqlite"],
    seed=3,
    queries_per_dbms=18,
    cert_pairs_per_dbms=6,
)


def _serial(**overrides):
    settings = dict(CONFIG)
    settings.update(overrides)
    return TestingCampaign(**settings).run()


def _assert_identical(serial, merged):
    """The byte-identity contract between a serial and a merged result."""
    assert merged.plan_fingerprints == serial.plan_fingerprints
    assert merged.unique_plans == serial.unique_plans
    assert merged.table5_rows() == serial.table5_rows()
    assert merged.queries_generated == serial.queries_generated
    assert merged.cert_pairs_checked == serial.cert_pairs_checked


@pytest.fixture
def restore_numpy():
    """Restore the array-kernel toggle after a test flips it."""
    before = arrays.numpy_enabled()
    yield
    arrays.set_numpy_enabled(before)


class TestShardPartitioning:
    def test_round_robin_covers_every_index_once(self):
        for total in range(0, 9):
            for shards in range(1, 7):
                partitions = shard_round_indexes(total, shards)
                flattened = sorted(
                    index for partition in partitions for index in partition
                )
                assert flattened == list(range(total))
                for partition in partitions:
                    assert partition == sorted(partition)
                    assert partition  # empty shards are dropped

    def test_shard_stride_matches_serial_seeds(self):
        # Shard k runs indexes k, k+shards, ... — the serial positions, so
        # the per-round seeds (seed + index) are untouched by sharding.
        assert shard_round_indexes(5, 2) == [[0, 2, 4], [1, 3]]
        assert shard_round_indexes(4, 4) == [[0], [1], [2], [3]]

    def test_invalid_shard_count_rejected(self):
        with pytest.raises(ValueError):
            shard_round_indexes(3, 0)
        with pytest.raises(ValueError):
            ShardedCampaign(shards=0)


class TestShardedEquivalence:
    """One pass through every mechanism (the slow matrix widens these)."""

    def test_two_shards_process_pool_identical(self):
        serial = _serial()
        merged = ShardedCampaign(**CONFIG, shards=2).run()
        _assert_identical(serial, merged)

    def test_four_shards_identical(self):
        serial = _serial()
        merged = ShardedCampaign(**CONFIG, shards=4).run()
        _assert_identical(serial, merged)
        # Four workers, four rounds: every shard completed exactly one.
        assert merged.rounds_completed == len(CONFIG["dbms_names"])

    def test_in_process_fallback_identical(self):
        # parallel=False is both a user knob and the automatic fallback
        # when the environment cannot fork a pool; the partition + merge
        # path is the same, so the result must not change.
        serial = _serial()
        merged = ShardedCampaign(**CONFIG, shards=3, parallel=False).run()
        _assert_identical(serial, merged)

    def test_more_shards_than_rounds_identical(self):
        serial = _serial()
        merged = ShardedCampaign(**CONFIG, shards=16, parallel=False).run()
        _assert_identical(serial, merged)

    def test_single_shard_degenerates_to_serial(self):
        serial = _serial()
        merged = ShardedCampaign(**CONFIG, shards=1, parallel=False).run()
        _assert_identical(serial, merged)
        assert merged.rounds_completed == serial.rounds_completed

    def test_merged_payload_matches_shard_union(self):
        merged = ShardedCampaign(**CONFIG, shards=2, parallel=False).run()
        assert merged.store_payload is not None
        store = CoverageStore()
        store.merge_payload(merged.store_payload)
        assert store.structural_fingerprints() == merged.plan_fingerprints

    def test_durable_shards_resume_after_interruption(self, tmp_path):
        # First pass: every shard stops after one completed round
        # (max_rounds is per shard), leaving durable marks behind.
        root = str(tmp_path / "sharded")
        partial = ShardedCampaign(
            **CONFIG, shards=2, persist_to=root, max_rounds=1, parallel=False
        ).run()
        assert partial.rounds_completed == 2  # one per shard
        # Resume with the full budget: the marked rounds are skipped, the
        # rest execute, and the merged result equals the serial run.
        merged = ShardedCampaign(
            **CONFIG, shards=2, persist_to=root, parallel=False
        ).run()
        assert merged.rounds_skipped == 2
        _assert_identical(_serial(), merged)

    def test_merged_store_persists_and_reopens(self, tmp_path):
        root = str(tmp_path / "sharded")
        campaign = ShardedCampaign(**CONFIG, shards=2, persist_to=root)
        merged = campaign.run()
        reopened = CoverageStore.open(campaign.merged_dir())
        try:
            assert reopened.structural_fingerprints() == merged.plan_fingerprints
            assert len(reopened) > 0
        finally:
            reopened.close()
        # Re-running over the same durable tree is a pure resume: every
        # round is skipped, the merged result is unchanged.
        again = ShardedCampaign(**CONFIG, shards=2, persist_to=root).run()
        assert again.rounds_completed == 0
        assert again.rounds_skipped == len(CONFIG["dbms_names"])
        _assert_identical(merged, again)


class TestParallelExecutorCampaign:
    def test_campaign_with_parallel_executor_identical(self):
        # The morsel-driven engine drops into the campaign via the same
        # executor= toggle as row/vectorized; coverage and Table V are
        # executor-independent.
        serial = _serial()
        morsel = _serial(executor="parallel")
        _assert_identical(serial, morsel)

    def test_sharded_campaign_with_parallel_executor(self):
        # Both levels of parallelism composed: process-sharded rounds, each
        # worker running the morsel-driven engine.
        serial = _serial()
        merged = ShardedCampaign(**CONFIG, shards=2, executor="parallel").run()
        _assert_identical(serial, merged)


@pytest.mark.slow
class TestShardedEquivalenceMatrix:
    """The full (shard count × cache × numpy) grid from the determinism
    contract.  Heavy — this runs 12 sharded campaigns plus serial
    baselines — hence the ``slow`` marker."""

    @pytest.mark.parametrize("use_numpy", [False, True])
    @pytest.mark.parametrize("prepared_cache", [True, False])
    @pytest.mark.parametrize("shards", [1, 2, 4])
    def test_matrix(self, shards, prepared_cache, use_numpy, restore_numpy):
        if use_numpy and not arrays.numpy_available():
            pytest.skip("numpy not installed")
        arrays.set_numpy_enabled(use_numpy)
        serial = _serial(prepared_cache=prepared_cache)
        merged = ShardedCampaign(
            **CONFIG, shards=shards, prepared_cache=prepared_cache
        ).run()
        _assert_identical(serial, merged)


def _poll_for_round_file(directory, timeout=90.0):
    """Wait until a shard worker persists its first completed round."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if os.path.isdir(directory) and any(
            name.startswith("round-") and name.endswith(".json")
            for name in os.listdir(directory)
        ):
            return True
        time.sleep(0.02)
    return False


@pytest.mark.slow
class TestWorkerCrashResume:
    def test_kill_one_worker_and_resume(self, tmp_path):
        """SIGKILL a shard worker mid-campaign; a re-run must resume from
        its durable round marks and still merge serial-identical."""
        root = str(tmp_path / "sharded")
        campaign = ShardedCampaign(
            **dict(CONFIG, queries_per_dbms=40), shards=2, persist_to=root
        )
        victim_config = campaign._shard_configs()[0]
        context = multiprocessing.get_context()
        worker = context.Process(target=_run_shard, args=(victim_config,))
        worker.start()
        try:
            # Kill as soon as the worker checkpoints its first round, so
            # (with 2 rounds in this shard) the crash lands mid-campaign.
            saw_round = _poll_for_round_file(campaign.shard_dir(0))
            worker.kill()
        finally:
            worker.join()
        assert saw_round, "worker never completed a round before the kill"
        assert worker.exitcode != 0  # it really was killed, not finished

        store = CoverageStore.open(campaign.shard_dir(0))
        try:
            marks_after_kill = len(store.marks())
            assert marks_after_kill >= 1
        finally:
            store.close()

        merged = ShardedCampaign(
            **dict(CONFIG, queries_per_dbms=40), shards=2, persist_to=root
        ).run()
        # The killed worker's completed rounds were restored, not re-run.
        assert merged.rounds_skipped >= marks_after_kill
        serial = _serial(queries_per_dbms=40)
        _assert_identical(serial, merged)

    def test_round_payload_files_survive_for_restore(self, tmp_path):
        # The restore path feeds from the per-round JSON payloads; pin
        # their shape so a future format change cannot silently break
        # crash recovery.
        root = str(tmp_path / "sharded")
        campaign = ShardedCampaign(
            **CONFIG, shards=2, persist_to=root, parallel=False
        )
        campaign.run()
        for shard in (0, 1):
            directory = campaign.shard_dir(shard)
            payload_files = [
                name
                for name in os.listdir(directory)
                if name.startswith("round-") and name.endswith(".json")
            ]
            assert payload_files
            for name in payload_files:
                with open(os.path.join(directory, name)) as handle:
                    payload = json.load(handle)
                assert set(payload) == {
                    "reports",
                    "queries_generated",
                    "cert_pairs_checked",
                }
