"""Shared fixtures for the test suite.

The corpus-building helpers that used to be duplicated per test file
(``test_pipeline.py`` and ``test_converters.py`` each grew their own
``SETUP`` + dialect factory + source builder) live here once:

* ``hub`` — a fresh, private :class:`ConverterHub` (no shared cache state),
* ``pg_dialect`` / ``pg_raws`` / ``pg_raw`` — a seeded PostgreSQL dialect
  and a deterministic set of raw ``EXPLAIN (FORMAT JSON)`` plan texts,
* ``sample_sources`` — a factory producing ingestion corpora of any size by
  cycling the raw plans (few unique texts, many duplicates — the shape the
  dedup invariants are stated over),
* ``tiny_corpus`` — a small ready-made corpus for quick tests,
* ``relational_dialect`` — a factory for the richer multi-table schema the
  converter integration tests explain against,
* ``dialect_example_plans`` — one converted example :class:`UnifiedPlan`
  per registered DBMS (relational and NoSQL), used by the round-trip
  format matrix.  The plans are shared across tests: treat them as frozen.
"""

import json

import pytest

from repro.converters import ConverterHub, converter_for
from repro.dialects import create_dialect
from repro.pipeline import PlanSource
from repro.storage.timeseries_store import Point

#: Schema/data for the pipeline-level corpus (one table is enough).
PIPELINE_SETUP = [
    "CREATE TABLE t0 (c0 INT, c1 INT)",
    "INSERT INTO t0 (c0, c1) VALUES "
    + ", ".join(f"({i}, {i % 5})" for i in range(1, 101)),
]

#: The distinct query shapes the sample corpus cycles through.
PIPELINE_QUERIES = [
    "SELECT c0 FROM t0 WHERE c1 < 3 ORDER BY c0",
] + [f"SELECT c0 FROM t0 WHERE c1 = {value} ORDER BY c0" for value in range(4)]

#: Richer schema/data for the converter integration tests.
RELATIONAL_SETUP = [
    "CREATE TABLE t0 (c0 INT, c1 INT)",
    "CREATE TABLE t1 (c0 INT)",
    "CREATE TABLE t2 (c0 INT PRIMARY KEY)",
    "INSERT INTO t0 (c0, c1) VALUES "
    + ", ".join(f"({i}, {i % 7})" for i in range(1, 201)),
    "INSERT INTO t1 (c0) VALUES " + ", ".join(f"({i})" for i in range(1, 41)),
    "INSERT INTO t2 (c0) VALUES " + ", ".join(f"({i})" for i in range(1, 101)),
]

#: The multi-feature query the converter tests explain (join, group, union).
RELATIONAL_QUERY = (
    "SELECT t1.c0 FROM t0 INNER JOIN t1 ON t0.c0 = t1.c0 WHERE t0.c0 < 100 "
    "GROUP BY t1.c0 UNION SELECT c0 FROM t2 WHERE c0 < 10"
)


def build_pg_dialect():
    """A PostgreSQL dialect seeded with the pipeline schema (module-level so
    subprocess-based tests can rebuild the identical corpus)."""
    dialect = create_dialect("postgresql")
    for statement in PIPELINE_SETUP:
        dialect.execute(statement)
    dialect.analyze_tables()
    return dialect


def build_sample_sources(count=16, dbms="postgresql", raws=None):
    """The canonical sample corpus: *count* sources cycling the sample raw
    plans.  Module-level so subprocess children build the byte-identical
    corpus; the ``sample_sources`` fixture wraps it with cached raws."""
    if raws is None:
        dialect = build_pg_dialect()
        raws = [
            dialect.explain(query, format="json").text
            for query in PIPELINE_QUERIES
        ]
    return [
        PlanSource(dbms, raws[index % len(raws)], "json")
        for index in range(count)
    ]


def build_relational_dialect(name):
    """A relational dialect seeded with the converter-test schema."""
    dialect = create_dialect(name)
    for statement in RELATIONAL_SETUP:
        dialect.execute(statement)
    dialect.analyze_tables()
    return dialect


def build_dialect_example_plan(name):
    """One converted example plan for *name*, covering every DBMS kind."""
    if name == "mongodb":
        dialect = create_dialect("mongodb")
        dialect.insert_many("users", [{"_id": i, "age": i} for i in range(20)])
        dialect.create_index("users", "age")
        document = dialect.explain_find(
            "users", {"age": {"$lt": 10}}, sort=[("age", 1)], limit=5
        )
        return converter_for("mongodb").convert(json.dumps(document), format="json")
    if name == "neo4j":
        dialect = create_dialect("neo4j")
        for i in range(5):
            node_a = dialect.store.create_node(["Item"], {"qid": f"Q{i}"})
            node_b = dialect.store.create_node(["Item"], {"qid": f"R{i}"})
            dialect.store.create_relationship(node_a.node_id, "P31", node_b.node_id)
        output = dialect.explain(
            "MATCH (s:Item)-[r:P31]->(o:Item) RETURN s.qid, count(o.qid)",
            format="json",
        )
        return converter_for("neo4j").convert(output.text, format="json")
    if name == "influxdb":
        dialect = create_dialect("influxdb")
        dialect.write_points(
            "m", [Point(timestamp=i, fields={"v": 1.0}) for i in range(10)]
        )
        output = dialect.explain("SELECT v FROM m")
        return converter_for("influxdb").convert(output.text)
    converter = converter_for(name)
    dialect = build_relational_dialect(name)
    format_name = converter.formats[0]
    serialized = dialect.explain(RELATIONAL_QUERY, format=format_name).text
    return converter.convert(serialized, format=format_name)


@pytest.fixture
def hub():
    """A fresh converter hub with a private (empty) conversion cache."""
    return ConverterHub()


@pytest.fixture
def pg_dialect():
    return build_pg_dialect()


@pytest.fixture(scope="session")
def pg_raws():
    """Deterministic raw JSON plan texts for the sample query shapes."""
    dialect = build_pg_dialect()
    return [
        dialect.explain(query, format="json").text for query in PIPELINE_QUERIES
    ]


@pytest.fixture
def pg_raw(pg_raws):
    """One raw JSON plan text (the sorted-filter query)."""
    return pg_raws[0]


@pytest.fixture
def sample_sources(pg_raws):
    """Factory: a corpus of *count* sources cycling the sample raw plans."""

    def factory(count=16, dbms="postgresql"):
        return build_sample_sources(count, dbms, raws=pg_raws)

    return factory


@pytest.fixture
def tiny_corpus(sample_sources):
    """A small ready-made corpus (12 sources over 5 unique raw texts)."""
    return sample_sources(12)


@pytest.fixture
def relational_dialect():
    """Factory: a relational dialect seeded with the converter-test schema."""
    return build_relational_dialect


@pytest.fixture
def relational_query():
    """The multi-feature query the converter tests explain."""
    return RELATIONAL_QUERY


@pytest.fixture(scope="session")
def dialect_example_plans():
    """One example UnifiedPlan per registered DBMS.  Treat as frozen."""
    from repro.converters import available_converters

    return {name: build_dialect_example_plan(name) for name in available_converters()}
