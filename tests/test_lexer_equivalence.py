"""Equivalence of the regex scanner with the historical hand-rolled lexer.

PR 3 replaced the character-loop lexer with a single compiled-regex scanner.
The scanner must be drop-in token-compatible, so the original implementation
is kept here as a test fixture (``legacy_tokenize``) and a property-style
test tokenizes the full generator/test corpus through both paths, asserting
identical token streams.

The *intentional* divergences — excluded from the equivalence property and
covered by dedicated regression tests instead — are the deliberate bug
fixes:

* doubled-quote escaping inside quoted identifiers (``"a""b"``,
  ``` `a``b` ```), which the legacy lexer mis-lexed as two adjacent
  identifiers (``sql.find`` stopped at the first closing quote) — PR 3;
* hex literals (``0x10``), which the legacy lexer silently split into
  NUMBER ``0`` plus identifier ``x10`` (a bogus-but-"successful" query);
  the scanner raises a clear :class:`LexerError` instead — PR 5.
"""

from typing import List

import pytest

from repro.errors import LexerError
from repro.sqlparser.lexer import tokenize
from repro.sqlparser.tokens import (
    KEYWORDS,
    MULTI_CHAR_OPERATORS,
    PUNCTUATION,
    SINGLE_CHAR_OPERATORS,
    Token,
    TokenType,
)
from repro.testing.generator import GeneratorConfig, RandomQueryGenerator

# The shared fixture corpora (mirrors tests/conftest.py, which cannot be
# imported by name here — a sibling benchmarks/conftest.py shadows it when
# the whole repo is collected).
PIPELINE_SETUP = [
    "CREATE TABLE t0 (c0 INT, c1 INT)",
    "INSERT INTO t0 (c0, c1) VALUES "
    + ", ".join(f"({i}, {i % 5})" for i in range(1, 101)),
]
PIPELINE_QUERIES = [
    "SELECT c0 FROM t0 WHERE c1 < 3 ORDER BY c0",
] + [f"SELECT c0 FROM t0 WHERE c1 = {value} ORDER BY c0" for value in range(4)]
RELATIONAL_SETUP = [
    "CREATE TABLE t0 (c0 INT, c1 INT)",
    "CREATE TABLE t1 (c0 INT)",
    "CREATE TABLE t2 (c0 INT PRIMARY KEY)",
    "INSERT INTO t0 (c0, c1) VALUES "
    + ", ".join(f"({i}, {i % 7})" for i in range(1, 201)),
    "INSERT INTO t1 (c0) VALUES " + ", ".join(f"({i})" for i in range(1, 41)),
    "INSERT INTO t2 (c0) VALUES " + ", ".join(f"({i})" for i in range(1, 101)),
]
RELATIONAL_QUERY = (
    "SELECT t1.c0 FROM t0 INNER JOIN t1 ON t0.c0 = t1.c0 WHERE t0.c0 < 100 "
    "GROUP BY t1.c0 UNION SELECT c0 FROM t2 WHERE c0 < 10"
)


def legacy_tokenize(sql: str) -> List[Token]:
    """The pre-PR-3 hand-written lexer, verbatim (fixture, not production)."""
    tokens: List[Token] = []
    index = 0
    length = len(sql)

    while index < length:
        char = sql[index]

        if char.isspace():
            index += 1
            continue

        if sql.startswith("--", index):
            newline = sql.find("\n", index)
            index = length if newline == -1 else newline + 1
            continue
        if sql.startswith("/*", index):
            closing = sql.find("*/", index + 2)
            if closing == -1:
                raise LexerError("unterminated block comment", index)
            index = closing + 2
            continue

        if char == "'":
            end = index + 1
            chars: List[str] = []
            while end < length:
                if sql[end] == "'" and end + 1 < length and sql[end + 1] == "'":
                    chars.append("'")
                    end += 2
                    continue
                if sql[end] == "'":
                    break
                chars.append(sql[end])
                end += 1
            if end >= length:
                raise LexerError("unterminated string literal", index)
            tokens.append(Token(TokenType.STRING, "".join(chars), index))
            index = end + 1
            continue

        if char in ('"', "`"):
            closing_char = char
            end = sql.find(closing_char, index + 1)
            if end == -1:
                raise LexerError("unterminated quoted identifier", index)
            tokens.append(Token(TokenType.IDENTIFIER, sql[index + 1 : end], index))
            index = end + 1
            continue

        if char.isdigit() or (
            char == "." and index + 1 < length and sql[index + 1].isdigit()
        ):
            end = index
            seen_dot = False
            seen_exponent = False
            while end < length:
                current = sql[end]
                if current.isdigit():
                    end += 1
                elif current == "." and not seen_dot and not seen_exponent:
                    seen_dot = True
                    end += 1
                elif current in "eE" and not seen_exponent and end > index:
                    seen_exponent = True
                    end += 1
                    if end < length and sql[end] in "+-":
                        end += 1
                else:
                    break
            tokens.append(Token(TokenType.NUMBER, sql[index:end], index))
            index = end
            continue

        if char == "?":
            tokens.append(Token(TokenType.PARAMETER, "?", index))
            index += 1
            continue
        if char == "$" and index + 1 < length and sql[index + 1].isdigit():
            end = index + 1
            while end < length and sql[end].isdigit():
                end += 1
            tokens.append(Token(TokenType.PARAMETER, sql[index:end], index))
            index = end
            continue

        if char.isalpha() or char == "_":
            end = index + 1
            while end < length and (sql[end].isalnum() or sql[end] == "_"):
                end += 1
            word = sql[index:end]
            upper = word.upper()
            if upper in KEYWORDS:
                tokens.append(Token(TokenType.KEYWORD, upper, index))
            else:
                tokens.append(Token(TokenType.IDENTIFIER, word, index))
            index = end
            continue

        matched_operator = False
        for operator in MULTI_CHAR_OPERATORS:
            if sql.startswith(operator, index):
                tokens.append(Token(TokenType.OPERATOR, operator, index))
                index += len(operator)
                matched_operator = True
                break
        if matched_operator:
            continue
        if char in SINGLE_CHAR_OPERATORS:
            tokens.append(Token(TokenType.OPERATOR, char, index))
            index += 1
            continue

        if char in PUNCTUATION:
            tokens.append(Token(TokenType.PUNCTUATION, char, index))
            index += 1
            continue

        raise LexerError(f"unexpected character {char!r}", index)

    tokens.append(Token(TokenType.EOF, "", length))
    return tokens


def corpus() -> List[str]:
    """The full generator/test corpus the equivalence property runs over."""
    statements: List[str] = []
    statements.extend(PIPELINE_SETUP)
    statements.extend(PIPELINE_QUERIES)
    statements.extend(RELATIONAL_SETUP)
    statements.append(RELATIONAL_QUERY)
    for seed in range(1, 6):
        generator = RandomQueryGenerator(
            seed=seed, config=GeneratorConfig(max_tables=3)
        )
        statements.extend(generator.schema_statements())
        for _ in range(80):
            statements.append(generator.select_query())
        for _ in range(15):
            statements.append(generator.mutation_statement())
    statements.extend(
        [
            "",
            "   ",
            "SELECT 1",
            "SELECT -1.5e-3, .25, 2., 1e9, 5e, ?, $1, $23",
            "SELECT 'it''s', 'a''''b', '' FROM t",
            'SELECT "Mixed Case" FROM `weird name` WHERE a <> b AND a != b',
            "SELECT a||b, a%b, a*b/c+d-e FROM t -- trailing comment",
            "SELECT /* block\ncomment */ 1 -- line\n, 2",
            "select COUNT(*) , x FROM t WHERE x >= 1 AND x <= 9 OR NOT y",
            "EXPLAIN (FORMAT JSON) SELECT * FROM t0;",
            "INSERT INTO t0 (c0) VALUES (1), (2);UPDATE t0 SET c0 = 0;",
            "_leading_underscore AS x",
            "1.2.3",
            "5..7",
        ]
    )
    return statements


def test_corpus_token_streams_identical():
    texts = corpus()
    assert len(texts) > 400
    checked = 0
    for text in texts:
        assert tokenize(text) == legacy_tokenize(text), f"divergence on {text!r}"
        checked += 1
    assert checked == len(texts)


@pytest.mark.parametrize(
    "text",
    [
        "SELECT 'unterminated",
        "SELECT 'trailing escape''",
        'SELECT "unterminated',
        "SELECT `unterminated",
        "SELECT 1 /* unterminated",
        "SELECT @",
        "SELECT !",
        "SELECT |",
        "SELECT $x",
    ],
)
def test_error_inputs_fail_in_both_lexers(text):
    with pytest.raises(LexerError):
        legacy_tokenize(text)
    with pytest.raises(LexerError):
        tokenize(text)


class TestHexLiteralRejection:
    """The PR-5 satellite fix: ``0x…`` is a clear error, never a silent split."""

    @pytest.mark.parametrize("text", ["SELECT 0x10", "0xDEADBEEF", "SELECT 0X0"])
    def test_scanner_raises_clear_error(self, text):
        with pytest.raises(LexerError) as excinfo:
            tokenize(text)
        assert "hexadecimal" in str(excinfo.value)

    def test_legacy_lexer_had_the_bug(self):
        # The legacy loop produced NUMBER 0 + identifier x10 — a silently
        # wrong token stream the parser then "successfully" misread.
        legacy = legacy_tokenize("0x10")
        assert [(t.type, t.value) for t in legacy[:-1]] == [
            (TokenType.NUMBER, "0"),
            (TokenType.IDENTIFIER, "x10"),
        ]

    def test_plain_numbers_and_words_unaffected(self):
        assert tokenize("0 x10") == legacy_tokenize("0 x10")
        assert tokenize("SELECT 10, 0.5, 0e1") == legacy_tokenize("SELECT 10, 0.5, 0e1")

    def test_corpus_contains_no_hex_literals(self):
        # Guards the equivalence property above: if hex ever enters the
        # corpus it must move to this deliberate-exception list.
        assert not any("0x" in text or "0X" in text for text in corpus())


class TestQuotedIdentifierEscaping:
    """The satellite fix: doubled quotes inside quoted identifiers."""

    def test_double_quoted_identifier_with_escaped_quote(self):
        tokens = tokenize('SELECT "a""b" FROM t')
        identifier = tokens[1]
        assert identifier.type is TokenType.IDENTIFIER
        assert identifier.value == 'a"b'

    def test_backtick_identifier_with_escaped_backtick(self):
        tokens = tokenize("SELECT `a``b` FROM t")
        identifier = tokens[1]
        assert identifier.type is TokenType.IDENTIFIER
        assert identifier.value == "a`b"

    def test_legacy_lexer_had_the_bug(self):
        # The legacy loop stopped at the first closing quote and produced
        # two identifiers; the scanner produces one (the whole point).
        legacy = legacy_tokenize('"a""b"')
        assert [t.value for t in legacy[:-1]] == ["a", "b"]
        fixed = tokenize('"a""b"')
        assert [t.value for t in fixed[:-1]] == ['a"b']

    def test_only_escaped_quote(self):
        assert tokenize('""""')[0].value == '"'
        assert tokenize("````")[0].value == "`"

    def test_empty_quoted_identifier(self):
        assert tokenize('""')[0].value == ""

    def test_adjacent_quoted_identifiers_still_merge_as_escape(self):
        # Per SQL, "a""b" IS one identifier; truly separate identifiers
        # need whitespace, which keeps them separate here.
        tokens = tokenize('"a" "b"')
        assert [t.value for t in tokens[:-1]] == ["a", "b"]
