"""Equivalence guarantees for the service path and its snapshot machinery.

Three layers: the MVCC primitives (``DatabaseView`` pinning, catalog
payload round trip), the process read-dispatch path, and the headline
check — a testing campaign routed through a loopback service is
byte-identical to a direct in-process run.
"""

import itertools
import json

import pytest

from repro.catalog.database import Database
from repro.catalog.schema import Column, DataType, TableSchema
from repro.dialects import create_dialect
from repro.service import QueryService, ServiceClient, ServiceDialect
from repro.testing.campaign import TestingCampaign


def _build_database(rows=96):
    database = Database("equiv")
    database.create_table(
        TableSchema(
            name="items",
            columns=[
                Column(name="id", data_type=DataType.INTEGER, primary_key=True),
                Column(name="score", data_type=DataType.INTEGER),
                Column(name="label", data_type=DataType.TEXT),
            ],
        )
    )
    database.insert_rows(
        "items",
        [{"id": i, "score": i % 10, "label": f"item-{i}"} for i in range(rows)],
    )
    database.create_index("idx_items_score", "items", ["score"])
    database.analyze()
    return database


class TestDatabaseViewPinning:
    def test_pinned_view_serves_pre_mutation_data(self):
        dialect = create_dialect("postgresql", executor="vectorized")
        dialect.execute("CREATE TABLE pin (a INT, b INT)")
        dialect.execute(
            "INSERT INTO pin VALUES "
            + ", ".join(f"({i}, {i * 2})" for i in range(96))
        )
        database = dialect.database
        view = database.pin_view()
        pinned_version = view.version

        dialect.execute("INSERT INTO pin VALUES (1000, 2000)")
        assert database.version > pinned_version

        query = "SELECT COUNT(*) AS n FROM pin"
        dialect.executor.snapshot_view = view
        try:
            old = dialect.execute(query)
        finally:
            dialect.executor.snapshot_view = None
        new = dialect.execute(query)
        assert old == [{"n": 96}]
        assert new == [{"n": 97}]

    def test_view_is_immutable_snapshot_of_all_tables(self):
        database = _build_database()
        view = database.pin_view()
        assert "items" in view
        assert "ITEMS" in view  # case-insensitive like the catalog
        assert view.table_names() == ["items"]
        snapshot = view.get("items")
        assert snapshot.version == view.version
        assert snapshot.length == 96
        # Mutating the database does not touch the pinned snapshot.
        database.insert_rows("items", [{"id": 500, "score": 1, "label": "late"}])
        assert view.get("items") is snapshot
        assert snapshot.length == 96

    def test_pin_view_returns_same_snapshots_as_column_batch(self):
        database = _build_database()
        version = database.version
        view = database.pin_view()
        assert view.get("items") is database.table("items").column_batch(version)


class TestCatalogPayloadRoundTrip:
    def test_payload_round_trips_byte_identically(self):
        database = _build_database()
        payload = database.to_payload()
        rebuilt = Database.from_payload(payload)
        assert json.dumps(rebuilt.to_payload(), sort_keys=True) == json.dumps(
            payload, sort_keys=True
        )

    def test_rebuilt_catalog_answers_queries_identically(self):
        original = create_dialect("mysql")
        original.execute("CREATE TABLE r (k INT PRIMARY KEY, v TEXT)")
        original.execute("INSERT INTO r VALUES (1, 'one'), (2, 'two'), (3, 'three')")
        original.analyze_tables()

        rebuilt = create_dialect("mysql")
        restored = Database.from_payload(original.database.to_payload())
        rebuilt.database = restored
        rebuilt.planner.database = restored
        rebuilt.executor.database = restored

        query = "SELECT k, v FROM r WHERE k > 1 ORDER BY k"
        assert rebuilt.execute(query) == original.execute(query)
        assert restored.version == original.database.version


class TestProcessDispatch:
    def test_process_reads_match_thread_reads_and_see_writes(self):
        statements = [
            "CREATE TABLE pd (a INT PRIMARY KEY, b INT)",
            "INSERT INTO pd VALUES " + ", ".join(f"({i}, {i % 7})" for i in range(80)),
        ]
        query = "SELECT b, COUNT(*) AS n FROM pd GROUP BY b ORDER BY b"

        with QueryService(max_workers=4) as threaded:
            with ServiceClient(threaded.address) as client:
                session = client.open_session("postgresql", tenant="pd")
                for statement in statements:
                    session.execute(statement)
                via_threads = session.execute(query)

        with QueryService(
            max_workers=4, read_dispatch="process", process_workers=2
        ) as forked:
            with ServiceClient(forked.address) as client:
                session = client.open_session("postgresql", tenant="pd")
                for statement in statements:
                    session.execute(statement)
                via_process = session.execute(query)
                # A write invalidates the replica; the next read must
                # resync rather than serve the stale catalog version.
                session.execute("INSERT INTO pd VALUES (1000, 0)")
                after_write = session.execute(query)

        assert via_process == via_threads
        assert after_write != via_process
        assert sum(row["n"] for row in after_write) == 81


class TestCampaignThroughService:
    @pytest.mark.parametrize("settings", [
        dict(seed=11, queries_per_dbms=8, cert_pairs_per_dbms=3, bound_checks_per_dbms=2),
    ])
    def test_loopback_campaign_is_byte_identical(self, settings):
        direct = TestingCampaign(**settings).run()

        with QueryService(max_workers=4) as service:
            clients = []
            counter = itertools.count()

            def factory(dbms_name, options):
                client = ServiceClient(service.address)
                clients.append(client)
                # One tenant per dialect creation mirrors the campaign's
                # fresh-database-per-round semantics.
                session = client.open_session(
                    dbms_name, tenant=f"round-{next(counter)}", options=options
                )
                return ServiceDialect(session)

            served = TestingCampaign(**settings, dialect_factory=factory).run()
            for client in clients:
                client.close()

        assert served.plan_fingerprints == direct.plan_fingerprints
        assert served.unique_plans == direct.unique_plans
        assert served.queries_generated == direct.queries_generated
        assert served.cert_pairs_checked == direct.cert_pairs_checked
        assert served.bound_queries_checked == direct.bound_queries_checked
        assert json.dumps(served.table5_rows(), sort_keys=True) == json.dumps(
            direct.table5_rows(), sort_keys=True
        )

    @pytest.mark.slow
    def test_loopback_campaign_full_size_grid(self):
        settings = dict(
            seed=7,
            queries_per_dbms=30,
            cert_pairs_per_dbms=12,
            bound_checks_per_dbms=6,
        )
        direct = TestingCampaign(**settings).run()
        with QueryService(max_workers=4) as service:
            clients = []
            counter = itertools.count()

            def factory(dbms_name, options):
                client = ServiceClient(service.address)
                clients.append(client)
                session = client.open_session(
                    dbms_name, tenant=f"round-{next(counter)}", options=options
                )
                return ServiceDialect(session)

            served = TestingCampaign(**settings, dialect_factory=factory).run()
            for client in clients:
                client.close()
        assert served.plan_fingerprints == direct.plan_fingerprints
        assert json.dumps(served.table5_rows(), sort_keys=True) == json.dumps(
            direct.table5_rows(), sort_keys=True
        )
