"""The morsel exchange operator and the parallel executor's oracle parity.

The exchange (:class:`repro.engine.morsel.MorselExchange`) must behave
exactly like a serial left-to-right loop — same results, same order, same
first error — no matter how its workers interleave; the parallel executor
built on it must be indistinguishable from the serial vectorized engine
(which is itself pinned to the row oracle).  Also covers the picklable
snapshot slices the parallel layers ship across process boundaries.
"""

import pickle
import threading
import time

import pytest

from repro.catalog.schema import Column, TableSchema
from repro.dialects import create_dialect
from repro.engine import arrays, create_executor
from repro.engine.morsel import (
    MorselExchange,
    ParallelExecutor,
    default_morsel_workers,
    morsel_ranges,
)
from repro.engine.vectorized import RowBatch, VectorizedExecutor
from repro.storage.table import TableSnapshot
from repro.testing.generator import GeneratorConfig, RandomQueryGenerator


class TestMorselRanges:
    def test_contiguous_and_complete(self):
        for total in (0, 1, 5, 1024, 1025, 5000):
            for size in (1, 7, 1024):
                ranges = morsel_ranges(total, size)
                covered = [i for start, stop in ranges for i in range(start, stop)]
                assert covered == list(range(total))

    def test_default_workers_floor(self):
        # Even single-core hosts get a 2-wide exchange so the machinery is
        # exercised everywhere the determinism tests run.
        assert default_morsel_workers() >= 2


class TestMorselExchange:
    def test_results_in_sequence_order(self):
        exchange = MorselExchange(workers=4)
        items = list(range(50))
        # Perturb scheduling: later morsels finish earlier.
        def stage(item):
            time.sleep((50 - item) * 0.0002)
            return item * item
        assert exchange.map(items, stage) == [i * i for i in items]

    def test_matches_serial_map(self):
        exchange = MorselExchange(workers=3)
        items = ["a", "bb", "ccc", ""] * 7
        assert exchange.map(items, len) == [len(item) for item in items]

    def test_empty_and_single_item(self):
        exchange = MorselExchange(workers=2)
        assert exchange.map([], lambda x: x) == []
        assert exchange.map([41], lambda x: x + 1) == [42]

    def test_every_worker_runs(self):
        # The stage-complete sentinels mean each worker drains its share;
        # with enough morsels every thread participates.
        exchange = MorselExchange(workers=4)
        seen = set()
        lock = threading.Lock()
        def stage(item):
            with lock:
                seen.add(threading.current_thread().name)
            time.sleep(0.002)
            return item
        exchange.map(list(range(64)), stage)
        assert len(seen) > 1

    def test_lowest_sequence_error_wins(self):
        # A serial loop raises the *first* failing morsel's error; the
        # exchange must pick the same one no matter which worker hit an
        # error first in wall-clock time.
        exchange = MorselExchange(workers=4)
        def stage(item):
            if item % 10 == 3:
                # Make the later failure finish first.
                time.sleep(0.0 if item > 20 else 0.01)
                raise ValueError(f"morsel {item}")
            return item
        with pytest.raises(ValueError, match="morsel 3"):
            exchange.map(list(range(40)), stage)

    def test_errors_do_not_wedge_the_queue(self):
        # Workers keep draining after a failure, so the exchange always
        # terminates and stays reusable.
        exchange = MorselExchange(workers=2)
        def bad(item):
            raise RuntimeError("boom")
        for _ in range(3):
            with pytest.raises(RuntimeError):
                exchange.map(list(range(10)), bad)
        assert exchange.map([1, 2, 3], lambda x: -x) == [-1, -2, -3]

    def test_invalid_worker_count(self):
        with pytest.raises(ValueError):
            MorselExchange(workers=0)


def _build_dialect(executor, rows=4000):
    dialect = create_dialect("postgresql")
    dialect.set_executor(executor)
    dialect.execute("CREATE TABLE big (a INT, b INT, c REAL)")
    dialect.database.insert_rows(
        "big",
        [
            {
                "a": i % 97,
                "b": (i * 7) % 13 if i % 11 else None,
                "c": float(i) * 0.5,
            }
            for i in range(rows)
        ],
    )
    dialect.execute("CREATE TABLE dim (k INT, v INT)")
    dialect.database.insert_rows(
        "dim", [{"k": i % 53 if i % 9 else None, "v": i} for i in range(3000)]
    )
    dialect.analyze_tables()
    return dialect


def _run(dialect, statement):
    try:
        return ("ok", dialect.execute(statement))
    except Exception as error:  # noqa: BLE001 - classified, not swallowed
        return ("error", type(error).__name__)


class TestParallelExecutorParity:
    """executor="parallel" vs the serial vectorized oracle."""

    QUERIES = [
        "SELECT a, c FROM big WHERE a > 50 AND b IS NOT NULL",
        "SELECT a, b FROM big WHERE b < 5 OR c > 1500.0",
        "SELECT big.a, dim.v FROM big JOIN dim ON big.a = dim.k WHERE big.c > 100.0",
        "SELECT big.a, dim.v FROM big LEFT JOIN dim ON big.b = dim.k "
        "ORDER BY big.a, dim.v LIMIT 500",
        "SELECT a, COUNT(*) FROM big WHERE b < 10 GROUP BY a ORDER BY a",
        "SELECT DISTINCT b FROM big WHERE a BETWEEN 10 AND 60 ORDER BY b",
    ]

    def test_big_table_workloads_identical(self):
        vectorized = _build_dialect("vectorized")
        parallel = _build_dialect("parallel")
        for query in self.QUERIES:
            assert _run(parallel, query) == _run(vectorized, query), query

    def test_explain_analyze_counts_identical(self):
        import re

        vectorized = _build_dialect("vectorized")
        parallel = _build_dialect("parallel")
        strip = lambda text: re.sub(r"[0-9]+\.[0-9]+", "T", text)
        for query in self.QUERIES:
            expected = strip(vectorized.explain(query, analyze=True).text)
            actual = strip(parallel.explain(query, analyze=True).text)
            assert actual == expected, query

    def test_generator_corpus_fuzz(self):
        generators = [
            RandomQueryGenerator(seed=29, config=GeneratorConfig(max_tables=2))
            for _ in range(2)
        ]
        dialects = []
        for generator, executor in zip(generators, ("vectorized", "parallel")):
            dialect = create_dialect("postgresql")
            dialect.set_executor(executor)
            for statement in generator.schema_statements():
                dialect.execute(statement)
            dialects.append(dialect)
        vectorized, parallel = dialects
        for step in range(150):
            queries = [generator.select_query() for generator in generators]
            assert queries[0] == queries[1]
            assert _run(parallel, queries[1]) == _run(vectorized, queries[0])
            if step % 10 == 9:
                mutations = [g.mutation_statement() for g in generators]
                assert mutations[0] == mutations[1]
                _run(vectorized, mutations[0])
                _run(parallel, mutations[1])

    def test_hash_build_identical_to_serial(self):
        # The parallel build merges per-morsel partial tables in morsel
        # order; the result must be the serial single-pass dict exactly —
        # same keys, same ascending bucket lists.
        from repro.catalog.database import Database

        database = Database()
        serial = VectorizedExecutor(database)
        morsel = ParallelExecutor(database, morsel_min_rows=64)
        length = 5000
        keys = [[(i * 13) % 101 if i % 7 else None for i in range(length)]]
        batch = RowBatch({"t.k": keys[0]}, length)
        expected = serial._hash_build(batch, keys)
        actual = morsel._hash_build(batch, keys)
        assert actual == expected
        for bucket in actual.values():
            assert bucket == sorted(bucket)

    def test_morsel_gate_keeps_small_inputs_serial(self):
        # Below morsel_min_rows the exchange must not engage (fan-out costs
        # more than tiny stages); results are identical either way, so pin
        # the gate itself.
        from repro.catalog.database import Database

        database = Database()
        executor = ParallelExecutor(database)
        assert not executor._exchange_worthwhile([])
        tiny = RowBatch({"x": [1, 2]}, 2)
        assert not executor._exchange_worthwhile([tiny])
        assert not executor._exchange_worthwhile([tiny, tiny])

    def test_create_executor_registry(self):
        from repro.catalog.database import Database

        executor = create_executor("parallel", Database())
        assert isinstance(executor, ParallelExecutor)
        assert isinstance(executor, VectorizedExecutor)  # drop-in subclass


class TestPicklableSnapshots:
    """Snapshot slices cross process boundaries for the parallel layers."""

    def _snapshot(self, rows=300):
        schema = TableSchema("t", [Column("a"), Column("b")])
        from repro.storage.table import HeapTable

        table = HeapTable(schema)
        for i in range(rows):
            table.insert({"a": i if i % 5 else None, "b": float(i)})
        return table.column_batch(version=1)

    def test_slice_is_zero_copy_view(self):
        snapshot = self._snapshot()
        part = snapshot.slice(10, 20)
        assert part.length == 10
        assert part.version == snapshot.version
        assert part.row_ids == snapshot.row_ids[10:20]
        assert list(part.columns["b"]) == list(snapshot.columns["b"][10:20])
        if arrays.numpy_enabled():
            column = snapshot.columns["b"]
            assert isinstance(column, arrays.ArrayColumn)
            # The slice shares the parent's buffer (a view, not a copy).
            assert part.columns["b"].values.base is not None

    def test_slices_cover_snapshot(self):
        snapshot = self._snapshot()
        parts = [
            snapshot.slice(start, stop)
            for start, stop in morsel_ranges(snapshot.length, 64)
        ]
        rebuilt = [value for part in parts for value in list(part.columns["a"])]
        assert rebuilt == list(snapshot.columns["a"])

    def test_snapshot_pickle_round_trip(self):
        snapshot = self._snapshot()
        snapshot.position_of(snapshot.row_ids[0])  # populate derived state
        clone = pickle.loads(pickle.dumps(snapshot))
        assert clone.version == snapshot.version
        assert clone.row_ids == snapshot.row_ids
        assert clone._positions is None  # derived state is not serialized
        for name in snapshot.columns:
            assert list(clone.columns[name]) == list(snapshot.columns[name])
        # position_of still works on the far side (rebuilt lazily).
        assert clone.position_of(clone.row_ids[5]) == 5

    def test_slice_pickle_round_trip(self):
        snapshot = self._snapshot()
        part = snapshot.slice(100, 200)
        clone = pickle.loads(pickle.dumps(part))
        assert clone.length == 100
        for name in part.columns:
            assert list(clone.columns[name]) == list(part.columns[name])

    def test_array_column_pickle_drops_list_cache(self):
        # numpy_available() alone is not enough: REPRO_DISABLE_NUMPY=1
        # keeps numpy importable but make_column returns plain lists.
        if not arrays.numpy_enabled():
            pytest.skip("array kernels not active")
        column = arrays.make_column([1, 2, None, 4] * 100)
        assert isinstance(column, arrays.ArrayColumn)
        column.tolist()  # populate the cache
        clone = pickle.loads(pickle.dumps(column))
        assert clone._list is None
        assert clone.tolist() == column.tolist()
