"""Unit tests for the unified plan data model (repro.core.model / categories)."""

import pytest

from repro.core import (
    OPERATION_CATEGORY_ORDER,
    PROPERTY_CATEGORY_ORDER,
    Operation,
    OperationCategory,
    PlanBuilder,
    PlanNode,
    Property,
    PropertyCategory,
    UnifiedPlan,
    node,
)
from repro.core.model import is_valid_keyword, is_valid_value, merge_property_lists
from repro.errors import PlanValidationError


def build_sample_plan() -> UnifiedPlan:
    return (
        PlanBuilder(source_dbms="postgresql", query="SELECT 1")
        .operation(OperationCategory.FOLDER, "Aggregate")
        .cardinality("Estimated Rows", 10)
        .child(OperationCategory.JOIN, "Hash Join")
        .configuration("Join Condition", "a = b")
        .child(OperationCategory.PRODUCER, "Full Table Scan")
        .configuration("name object", "t0")
        .end()
        .sibling(OperationCategory.PRODUCER, "Index Scan")
        .configuration("index name", "i0")
        .end()
        .end()
        .plan_prop(PropertyCategory.STATUS, "Planning Time", 0.5)
        .build()
    )


class TestCategories:
    def test_seven_operation_categories(self):
        assert len(OperationCategory) == 7
        assert len(OPERATION_CATEGORY_ORDER) == 7

    def test_four_property_categories(self):
        assert len(PropertyCategory) == 4
        assert len(PROPERTY_CATEGORY_ORDER) == 4

    def test_from_name_case_insensitive(self):
        assert OperationCategory.from_name("producer") is OperationCategory.PRODUCER
        assert PropertyCategory.from_name("COST") is PropertyCategory.COST

    def test_from_name_unknown_raises(self):
        with pytest.raises(ValueError):
            OperationCategory.from_name("NotACategory")
        with pytest.raises(ValueError):
            PropertyCategory.from_name("NotACategory")

    def test_algebra_correspondence(self):
        assert OperationCategory.PRODUCER.algebra == "σ"
        assert OperationCategory.EXECUTOR.algebra == ""


class TestOperationAndProperty:
    def test_operation_str(self):
        operation = Operation(OperationCategory.PRODUCER, "Full Table Scan")
        assert str(operation) == "Producer->Full Table Scan"

    def test_operation_rejects_bad_identifier(self):
        with pytest.raises(PlanValidationError):
            Operation(OperationCategory.PRODUCER, "1bad")
        with pytest.raises(PlanValidationError):
            Operation(OperationCategory.PRODUCER, "")

    def test_operation_rejects_bad_category(self):
        with pytest.raises(PlanValidationError):
            Operation("Producer", "Full Table Scan")

    def test_property_value_domain(self):
        Property(PropertyCategory.COST, "Total Cost", 1.5)
        Property(PropertyCategory.STATUS, "Flag", True)
        Property(PropertyCategory.STATUS, "Nothing", None)
        with pytest.raises(PlanValidationError):
            Property(PropertyCategory.COST, "Total Cost", [1, 2])

    def test_operation_roundtrip_dict(self):
        operation = Operation(OperationCategory.JOIN, "Hash Join")
        assert Operation.from_dict(operation.to_dict()) == operation

    def test_property_roundtrip_dict(self):
        prop = Property(PropertyCategory.CARDINALITY, "Estimated Rows", 42)
        assert Property.from_dict(prop.to_dict()) == prop

    def test_is_valid_keyword(self):
        assert is_valid_keyword("Full Table Scan")
        assert is_valid_keyword("abc_123")
        assert not is_valid_keyword("9lives")
        assert not is_valid_keyword("")
        assert not is_valid_keyword("has-dash")

    def test_is_valid_keyword_rejects_irregular_spacing(self):
        # Regression: "Scan  " used to pass, making visually identical
        # identifiers denote different operations.
        assert not is_valid_keyword("Scan  ")
        assert not is_valid_keyword("Scan ")
        assert not is_valid_keyword("Full  Table Scan")
        assert not is_valid_keyword(" Scan")
        assert is_valid_keyword("Scan")

    def test_operation_rejects_irregular_spacing(self):
        from repro.core import Operation, OperationCategory
        from repro.errors import PlanValidationError

        with pytest.raises(PlanValidationError):
            Operation(OperationCategory.PRODUCER, "Scan  ")
        with pytest.raises(PlanValidationError):
            Operation(OperationCategory.PRODUCER, "Full  Table Scan")

    def test_is_valid_value(self):
        assert is_valid_value(None)
        assert is_valid_value("text")
        assert is_valid_value(3)
        assert not is_valid_value(object())


class TestPlanNode:
    def test_walk_preorder(self):
        plan = build_sample_plan()
        names = [n.operation.identifier for n in plan.root.walk()]
        assert names == ["Aggregate", "Hash Join", "Full Table Scan", "Index Scan"]

    def test_walk_postorder(self):
        plan = build_sample_plan()
        names = [n.operation.identifier for n in plan.root.walk_postorder()]
        assert names[-1] == "Aggregate"
        assert set(names) == {"Aggregate", "Hash Join", "Full Table Scan", "Index Scan"}

    def test_size_and_depth(self):
        plan = build_sample_plan()
        assert plan.root.size() == 4
        assert plan.root.depth() == 3

    def test_property_value_lookup(self):
        plan = build_sample_plan()
        scan = plan.root.find_operations("Full Table Scan")[0]
        assert scan.property_value("name object") == "t0"
        assert scan.property_value("missing", default="x") == "x"

    def test_count_categories(self):
        plan = build_sample_plan()
        counts = plan.root.count_categories()
        assert counts[OperationCategory.PRODUCER] == 2
        assert counts[OperationCategory.JOIN] == 1
        assert counts[OperationCategory.FOLDER] == 1

    def test_copy_is_deep(self):
        plan = build_sample_plan()
        clone = plan.root.copy()
        clone.children[0].children[0].properties.clear()
        assert plan.root.children[0].children[0].properties

    def test_node_helper(self):
        created = node(OperationCategory.PRODUCER, "Full Table Scan")
        assert created.operation.category is OperationCategory.PRODUCER


class TestUnifiedPlan:
    def test_node_count_and_depth(self):
        plan = build_sample_plan()
        assert plan.node_count() == 4
        assert plan.depth() == 3

    def test_empty_plan(self):
        plan = UnifiedPlan()
        assert plan.node_count() == 0
        assert plan.depth() == 0
        assert plan.nodes() == []
        assert plan.count_categories()[OperationCategory.PRODUCER] == 0

    def test_all_properties_includes_plan_and_node(self):
        plan = build_sample_plan()
        identifiers = {prop.identifier for prop in plan.all_properties()}
        assert "Planning Time" in identifiers
        assert "name object" in identifiers

    def test_plan_property_value(self):
        plan = build_sample_plan()
        assert plan.plan_property_value("Planning Time") == 0.5
        assert plan.plan_property_value("missing") is None

    def test_operations_in_category(self):
        plan = build_sample_plan()
        producers = plan.operations_in(OperationCategory.PRODUCER)
        assert len(producers) == 2

    def test_leaf_nodes(self):
        plan = build_sample_plan()
        assert len(plan.leaf_nodes()) == 2

    def test_dict_roundtrip(self):
        plan = build_sample_plan()
        restored = UnifiedPlan.from_dict(plan.to_dict())
        assert restored.to_dict() == plan.to_dict()

    def test_count_property_categories(self):
        plan = build_sample_plan()
        counts = plan.count_property_categories()
        assert counts[PropertyCategory.CONFIGURATION] == 3
        assert counts[PropertyCategory.STATUS] == 1
        assert counts[PropertyCategory.CARDINALITY] == 1

    def test_merge_property_lists_keeps_first(self):
        first = [Property(PropertyCategory.COST, "Total Cost", 1)]
        second = [Property(PropertyCategory.COST, "Total Cost", 2),
                  Property(PropertyCategory.COST, "Startup Cost", 0)]
        merged = merge_property_lists(first, second)
        values = {prop.identifier: prop.value for prop in merged}
        assert values == {"Total Cost": 1, "Startup Cost": 0}


class TestPlanBuilder:
    def test_two_roots_rejected(self):
        builder = PlanBuilder().operation(OperationCategory.PRODUCER, "Full Table Scan")
        with pytest.raises(PlanValidationError):
            builder.operation(OperationCategory.PRODUCER, "Index Scan")

    def test_child_without_root_rejected(self):
        with pytest.raises(PlanValidationError):
            PlanBuilder().child(OperationCategory.PRODUCER, "Full Table Scan")

    def test_sibling_requires_parent(self):
        builder = PlanBuilder().operation(OperationCategory.PRODUCER, "Full Table Scan")
        with pytest.raises(PlanValidationError):
            builder.sibling(OperationCategory.PRODUCER, "Index Scan")

    def test_prop_before_root_goes_to_plan(self):
        plan = PlanBuilder().prop(PropertyCategory.STATUS, "Planning Time", 1).build()
        assert plan.properties[0].identifier == "Planning Time"

    def test_shorthands(self):
        plan = (
            PlanBuilder()
            .operation(OperationCategory.PRODUCER, "Full Table Scan")
            .cardinality("Estimated Rows", 5)
            .cost("Total Cost", 1.0)
            .configuration("Filter", "a < 1")
            .status("Actual Rows", 4)
            .build()
        )
        assert len(plan.root.properties) == 4
