"""Regression tests for the PR-5 planner/lexer correctness fixes.

Four bugs, each exercised through both executors (``row`` and
``vectorized``) and with the prepared-query cache on and off:

* ``ORDER BY 1`` silently sorted by the constant literal ``1`` (i.e. not at
  all) instead of the first output column;
* ``GROUP BY 1`` failed with a misleading ``unknown column`` error naming
  whatever the select list projected, and a genuinely unknown grouping
  column surfaced the wrong name (or no error at all on empty inputs);
* the lexer silently split hex literals: ``SELECT 0x10`` lexed as NUMBER
  ``0`` plus identifier ``x10`` and "succeeded" with a bogus column;
* ``LIMIT -1`` returned zero rows, but SQLite semantics (the dialect under
  test) treat a negative limit as "no limit".
"""

import pytest

from repro.dialects import create_dialect
from repro.errors import LexerError, PlanningError


@pytest.fixture(params=["row", "vectorized"])
def executor(request):
    return request.param


@pytest.fixture(params=[True, False], ids=["cache", "no-cache"])
def prepared_cache(request):
    return request.param


@pytest.fixture
def dialect(executor, prepared_cache):
    dialect = create_dialect("postgresql", prepared_cache=prepared_cache)
    dialect.set_executor(executor)
    dialect.execute("CREATE TABLE t (a INT, b INT)")
    dialect.execute(
        "INSERT INTO t (a, b) VALUES (3, 1), (1, 3), (2, 2), (4, NULL)"
    )
    return dialect


def _column(rows, name):
    return [row[name] for row in rows]


class TestOrderByOrdinal:
    def test_order_by_1_sorts_by_first_output_column(self, dialect):
        rows = dialect.execute("SELECT a FROM t ORDER BY 1")
        assert _column(rows, "a") == [1, 2, 3, 4]

    def test_order_by_2_desc(self, dialect):
        rows = dialect.execute("SELECT a, b FROM t ORDER BY 2 DESC")
        # NULLs sort last on descending order, like the named-column path.
        assert _column(rows, "a") == [1, 2, 3, 4]

    def test_ordinal_with_alias(self, dialect):
        rows = dialect.execute("SELECT a AS renamed FROM t ORDER BY 1")
        assert _column(rows, "renamed") == [1, 2, 3, 4]

    def test_ordinal_over_expression_item(self, dialect):
        rows = dialect.execute("SELECT a + b FROM t ORDER BY 1")
        # NULLs sort first ascending, matching the named-key sort path.
        assert _column(rows, "(a + b)") == [None, 4, 4, 4]

    def test_ordinal_through_star(self, dialect):
        rows = dialect.execute("SELECT * FROM t ORDER BY 2")
        assert _column(rows, "t.b") == [None, 1, 2, 3]

    def test_ordinal_with_limit_top_n(self, dialect):
        rows = dialect.execute("SELECT a FROM t ORDER BY 1 DESC LIMIT 2")
        assert _column(rows, "a") == [4, 3]

    def test_ordinal_on_set_operation(self, dialect):
        rows = dialect.execute(
            "SELECT a FROM t UNION ALL SELECT b FROM t ORDER BY 1"
        )
        values = [next(iter(row.values())) for row in rows]
        assert values == [None, 1, 1, 2, 2, 3, 3, 4]

    def test_out_of_range_ordinal_raises(self, dialect):
        with pytest.raises(PlanningError):
            dialect.execute("SELECT a FROM t ORDER BY 5")

    def test_mixed_ordinal_and_named_keys(self, dialect):
        rows = dialect.execute("SELECT a, b FROM t ORDER BY b DESC, 1")
        assert _column(rows, "a") == [1, 2, 3, 4]


class TestGroupByOrdinal:
    def test_group_by_1(self, dialect):
        rows = dialect.execute("SELECT b FROM t GROUP BY 1")
        assert sorted(value for value in _column(rows, "b") if value is not None) == [
            1,
            2,
            3,
        ]
        assert len(rows) == 4

    def test_group_by_ordinal_with_aggregate(self, dialect):
        rows = dialect.execute("SELECT b, COUNT(*) FROM t GROUP BY 1")
        assert len(rows) == 4
        assert all(row["COUNT(*)"] == 1 for row in rows)

    def test_group_by_ordinal_expression(self, dialect):
        dialect.execute("INSERT INTO t (a, b) VALUES (1, 7)")
        rows = dialect.execute("SELECT a % 2, COUNT(*) FROM t GROUP BY 1")
        assert len(rows) == 2

    def test_group_by_out_of_range_raises(self, dialect):
        with pytest.raises(PlanningError):
            dialect.execute("SELECT a FROM t GROUP BY 3")

    def test_unknown_group_column_error_names_that_column(self, dialect):
        with pytest.raises(PlanningError) as excinfo:
            dialect.execute("SELECT a FROM t GROUP BY zzz")
        assert "zzz" in str(excinfo.value)
        assert "'a'" not in str(excinfo.value)

    def test_unknown_qualified_group_column(self, dialect):
        with pytest.raises(PlanningError) as excinfo:
            dialect.execute("SELECT a FROM t GROUP BY t.nope")
        assert "nope" in str(excinfo.value)

    def test_unknown_group_column_fails_even_on_empty_table(self, dialect):
        dialect.execute("CREATE TABLE empty_t (c INT)")
        with pytest.raises(PlanningError):
            dialect.execute("SELECT c FROM empty_t GROUP BY missing")


class TestHexLiteralLexing:
    @pytest.mark.parametrize("text", ["SELECT 0x10", "SELECT 0X1F", "SELECT 0x"])
    def test_hex_literal_is_a_clear_lexer_error(self, dialect, text):
        with pytest.raises(LexerError) as excinfo:
            dialect.execute(text)
        assert "hexadecimal" in str(excinfo.value)

    def test_decimals_and_exponents_unaffected(self, dialect):
        rows = dialect.execute("SELECT 0.5, 10, 1e2")
        assert list(rows[0].values()) == [0.5, 10, 100.0]

    def test_identifier_starting_with_x_unaffected(self, dialect):
        dialect.execute("CREATE TABLE hexish (x10 INT)")
        dialect.execute("INSERT INTO hexish (x10) VALUES (1)")
        assert dialect.execute("SELECT x10 FROM hexish")[0]["x10"] == 1


class TestNegativeLimit:
    def test_limit_minus_one_means_no_limit(self, dialect):
        rows = dialect.execute("SELECT a FROM t LIMIT -1")
        assert len(rows) == 4

    def test_limit_minus_one_with_order_by(self, dialect):
        # The TOP-N path (ORDER BY + LIMIT) must agree with the plain path.
        rows = dialect.execute("SELECT a FROM t ORDER BY a LIMIT -1")
        assert _column(rows, "a") == [1, 2, 3, 4]

    def test_large_negative_limit(self, dialect):
        assert len(dialect.execute("SELECT a FROM t LIMIT -10")) == 4
        assert len(dialect.execute("SELECT a FROM t ORDER BY a LIMIT -10")) == 4

    def test_limit_zero_still_empty(self, dialect):
        assert dialect.execute("SELECT a FROM t LIMIT 0") == []
        assert dialect.execute("SELECT a FROM t ORDER BY a LIMIT 0") == []

    def test_negative_limit_with_offset(self, dialect):
        rows = dialect.execute("SELECT a FROM t LIMIT -1 OFFSET 1")
        assert len(rows) == 3

    def test_sqlite_dialect_matches_its_own_semantics(self, executor):
        # SQLite is the dialect whose documented behaviour the engine
        # follows; its planner has no TOP-N so this exercises plain LIMIT.
        dialect = create_dialect("sqlite")
        dialect.set_executor(executor)
        dialect.execute("CREATE TABLE t (a INT)")
        dialect.execute("INSERT INTO t (a) VALUES (1), (2), (3)")
        assert len(dialect.execute("SELECT a FROM t LIMIT -1")) == 3
        assert len(dialect.execute("SELECT a FROM t ORDER BY a LIMIT -1")) == 3
