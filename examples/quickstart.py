"""Quickstart: obtain a DBMS-specific plan, convert it to UPlan, and use it.

Run with:  python examples/quickstart.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro.converters import converter_for
from repro.core import OperationCategory, formats, structural_fingerprint
from repro.dialects import create_dialect
from repro.visualize import render_ascii


def main() -> None:
    # 1. Spin up a simulated PostgreSQL, create a small schema, and load rows.
    postgresql = create_dialect("postgresql")
    postgresql.execute("CREATE TABLE t0 (c0 INT, c1 INT)")
    postgresql.execute("CREATE TABLE t1 (c0 INT PRIMARY KEY)")
    postgresql.execute(
        "INSERT INTO t0 (c0, c1) VALUES " + ", ".join(f"({i}, {i % 10})" for i in range(1, 501))
    )
    postgresql.execute("INSERT INTO t1 (c0) VALUES " + ", ".join(f"({i})" for i in range(1, 101)))
    postgresql.analyze_tables()

    query = (
        "SELECT t1.c0, COUNT(*) FROM t0 JOIN t1 ON t0.c0 = t1.c0 "
        "WHERE t0.c1 < 5 GROUP BY t1.c0 ORDER BY t1.c0 LIMIT 10"
    )

    # 2. Ask the DBMS for its native serialized plan (what EXPLAIN returns).
    raw = postgresql.explain(query, format="text")
    print("=" * 30, "raw PostgreSQL plan", "=" * 30)
    print(raw.text)

    # 3. Convert it into the unified query plan representation.
    plan = converter_for("postgresql").convert(raw.text, format="text")
    print("\n" + "=" * 30, "unified plan (text form)", "=" * 30)
    print(formats.serialize(plan, "text"))

    # 4. Use the unified plan: category histogram, fingerprint, visualization.
    print("\nOperations per category:")
    for category, count in plan.count_categories().items():
        if count:
            print(f"  {category.value:11s} {count}")
    print("Producer operations:", len(plan.operations_in(OperationCategory.PRODUCER)))
    print("Structural fingerprint:", structural_fingerprint(plan)[:16], "…")
    print("\n" + render_ascii(plan))

    # 5. The same plan serialized as JSON (exchangeable with other tools).
    print("\nJSON document size:", len(formats.serialize(plan, "json")), "bytes")


if __name__ == "__main__":
    main()
