"""Regenerate every committed artifact under ``examples/output/``.

The checked-in HTML/DOT renderings (Figure 3's visualization outputs) are
produced by deterministic, seeded pipelines, so regeneration must be a
no-op on an unchanged tree.  CI runs this script and fails on any diff,
which keeps the artifacts honest: they can never drift from the code that
claims to produce them.

Run with:  python examples/regenerate.py [output_dir]
"""

import os
import sys

_HERE = os.path.dirname(os.path.abspath(__file__))
sys.path.insert(0, os.path.join(os.path.dirname(_HERE), "src"))
sys.path.insert(0, _HERE)

import visualize_plans  # noqa: E402  (sibling example module)


def main() -> None:
    output_dir = sys.argv[1] if len(sys.argv) > 1 else os.path.join(_HERE, "output")
    sys.argv = [sys.argv[0], output_dir]
    visualize_plans.main()
    print(f"\nregenerated artifacts in {output_dir}")


if __name__ == "__main__":
    main()
