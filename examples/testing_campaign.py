"""DBMS testing with UPlan (application A.1): QPG + CERT campaign (Table V).

Runs the bounded testing campaign against the fault-injected simulations of
MySQL, PostgreSQL, and TiDB and prints the Table V bug report.

Run with:  python examples/testing_campaign.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro.testing import TestingCampaign


def main() -> None:
    campaign = TestingCampaign(queries_per_dbms=120, cert_pairs_per_dbms=60)
    print("Running QPG and CERT (DBMS-agnostic, on UPlan) against MySQL, PostgreSQL, TiDB …")
    result = campaign.run()

    print(f"\nQueries generated:        {result.queries_generated}")
    print(f"Structurally unique plans: {result.unique_plans}")
    print(f"CERT pairs checked:        {result.cert_pairs_checked}")
    print(f"Unique bugs found:         {len(result.reports)}")
    print(f"Bugs per DBMS:             {result.by_dbms()}")

    print("\nTable V — previously unknown and unique bugs:")
    header = f"  {'DBMS':12s} {'Found by':8s} {'Bug ID':8s} {'Status':10s} {'Severity':12s}"
    print(header)
    print("  " + "-" * (len(header) - 2))
    for row in result.table5_rows():
        print(
            f"  {row['DBMS']:12s} {row['Found by']:8s} {row['Bug ID']:8s} "
            f"{row['Status']:10s} {row['Severity']:12s}"
        )


if __name__ == "__main__":
    main()
