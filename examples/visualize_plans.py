"""One visualization tool for every DBMS (application A.2, Figure 3).

Renders TPC-H query 1 plans from PostgreSQL, MongoDB, and MySQL with the same
renderer and writes self-contained HTML files plus Graphviz DOT files.

Run with:  python examples/visualize_plans.py [output_dir]
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro.benchmarking import collect_tpch_plans
from repro.visualize import estimate_effort, render_ascii, render_dot, render_html


def main() -> None:
    output_dir = sys.argv[1] if len(sys.argv) > 1 else os.path.join(os.path.dirname(__file__), "output")
    os.makedirs(output_dir, exist_ok=True)

    print("Planning TPC-H query 1 on PostgreSQL, MongoDB, and MySQL …")
    plans = collect_tpch_plans(dbms_names=("postgresql", "mongodb", "mysql"), scale=0.4, queries=[1])

    for dbms, workload in plans.items():
        plan = workload.plans[1]
        print(f"\n=== {dbms} — TPC-H Q1 (unified) ===")
        print(render_ascii(plan))
        html_path = os.path.join(output_dir, f"tpch_q1_{dbms}.html")
        dot_path = os.path.join(output_dir, f"tpch_q1_{dbms}.dot")
        with open(html_path, "w", encoding="utf-8") as handle:
            handle.write(render_html(plan, title=f"TPC-H Q1 on {dbms}"))
        with open(dot_path, "w", encoding="utf-8") as handle:
            handle.write(render_dot(plan))
        print(f"wrote {html_path} and {dot_path}")

    effort = estimate_effort(dbms_count=5)
    print(
        f"\nAdaptation effort model: {effort.dbms_specific_days:.0f} days for five "
        f"DBMS-specific tools vs {effort.uplan_days:.0f} days with UPlan "
        f"(a {effort.reduction_fraction:.0%} reduction)."
    )


if __name__ == "__main__":
    main()
