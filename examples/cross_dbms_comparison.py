"""Cross-DBMS benchmarking (application A.3): Tables VI/VII and Figure 4.

Runs the TPC-H workload on the five JSON-capable simulated DBMSs, converts
every plan to UPlan, and prints the average operation counts per category, the
Producer-count variance per query, and the query 11 analysis of Listing 4.

Run with:  python examples/cross_dbms_comparison.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro.benchmarking import (
    analyse_query11,
    collect_nosql_plans,
    collect_tpch_plans,
    figure4_variances,
    high_variance_queries,
    scan_count_comparison,
    table6_rows,
    table7_rows,
)


def print_table(title, rows):
    print("\n" + title)
    if not rows:
        return
    headers = list(rows[0].keys())
    widths = [max(len(str(h)), max(len(str(r[h])) for r in rows)) for h in headers]
    print("  " + " | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    print("  " + "-+-".join("-" * w for w in widths))
    for row in rows:
        print("  " + " | ".join(str(row[h]).ljust(w) for h, w in zip(headers, widths)))


def main() -> None:
    print("Collecting TPC-H plans on MongoDB, MySQL, Neo4j, PostgreSQL, TiDB …")
    plans = collect_tpch_plans(scale=0.5)
    print_table("Table VI — average operations per category (TPC-H)", table6_rows(plans))

    print_table(
        "Table VII — YCSB (MongoDB) and WDBench (Neo4j)",
        table7_rows(collect_nosql_plans(scale=0.5)),
    )

    variances = figure4_variances(plans)
    print("\nFigure 4 — variance of Producer operations per TPC-H query:")
    for query_number in sorted(variances):
        bar = "#" * int(round(variances[query_number]))
        print(f"  Q{query_number:2d} {variances[query_number]:6.2f} {bar}")
    print("High-variance queries (> 2.0):", high_variance_queries(variances, 2.0))

    print("\nListing 4 — TPC-H query 11 analysis (PostgreSQL vs TiDB):")
    analysis = analyse_query11(scale=0.5)
    print("  Producer operations:", scan_count_comparison(analysis))
    for scan in analysis.scan_timings:
        print(f"  {scan.operation:14s} on {scan.table:10s} {scan.milliseconds:7.3f} ms")
    print(f"  Potential saving from removing redundant scans: "
          f"{analysis.potential_saving_fraction:.0%} of execution time")


if __name__ == "__main__":
    main()
